//! Chaos differential suite for the seeded fault plane.
//!
//! The core property: for a *random* fault schedule (any seed, any
//! transient/spike/permanent rates) and any {shards × io_workers ×
//! channel capacity × journal} configuration, every job that completes
//! under injection produces results **bit-identical** to the fault-free
//! run — faults may delay, reroute, or quarantine work, but never
//! corrupt it.  Jobs that do not complete are *quarantined* with a
//! typed [`FaultError`], never hung and never panicked (CI's
//! per-binary `timeout 60` is the hang detector).  The same seed
//! replays the same chaos bit-for-bit, retries and all, and an inert
//! plane is indistinguishable from no plane at all.
//!
//! The mix is integer-valued programs only (BFS, SSSP, WCC,
//! reachability): exact min/or accumulators, so surviving results must
//! match exactly — no tolerance.  CI runs this binary with default
//! threading and with `--test-threads=1`.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use cgraph::algos::{trace_arrivals, Bfs, Reachability, Sssp, Wcc};
use cgraph::core::{
    Engine, EngineConfig, FaultBoundary, FaultConfig, FaultPlane, FaultStats, RetryPolicy,
    ServeConfig, ServeLoop,
};
use cgraph::graph::snapshot::{ShardedSnapshotStore, SnapshotStore};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Partitioner};
use cgraph::memsim::HierarchyConfig;
use cgraph::trace::{generate_trace, JobSpan, TraceConfig};
use cgraph_bench::ingest_stream_spread;

/// One shared evolving store per shard count: a sharded chain with
/// enough deltas that jobs arriving at different timestamps bind
/// different snapshot versions, spreading fetches across lanes (the
/// breaker granularity).
fn store_with_shards(shards: usize) -> Arc<SnapshotStore> {
    let el = generate::rmat(8, 4, generate::RmatParams::default(), 2026);
    let n = el.num_vertices();
    let ps = VertexCutPartitioner::new(12).partition(&el);
    let mut store = SnapshotStore::with_shards(ps, shards);
    for (i, delta) in ingest_stream_spread(n, 12, 32, 4).iter().enumerate() {
        store
            .apply((i as u64 + 1) * 10, delta)
            .expect("evolving delta applies");
    }
    Arc::new(store)
}

/// The shard counts the differential sweeps; index is the proptest dim.
const SHARD_CHOICES: [usize; 3] = [1, 2, 4];

fn shared_store(idx: usize) -> &'static Arc<SnapshotStore> {
    static STORES: OnceLock<Vec<Arc<SnapshotStore>>> = OnceLock::new();
    &STORES.get_or_init(|| {
        SHARD_CHOICES
            .iter()
            .map(|&s| store_with_shards(s))
            .collect()
    })[idx]
}

/// Tight enough that loads rotate through the cache (spill pricing and
/// reroute pricing both matter).
fn tight_hierarchy(store: &Arc<SnapshotStore>) -> HierarchyConfig {
    let view = store.base_view();
    let total: u64 = (0..view.num_partitions() as u32)
        .map(|pid| view.partition(pid).structure_bytes())
        .sum();
    HierarchyConfig { cache_bytes: (total / 4).max(1), memory_bytes: total * 4 }
}

/// Per-job outcome of one chaos run: either the exact results or the
/// typed quarantine.
#[derive(Debug, PartialEq)]
enum Outcome {
    Bfs(Vec<u32>),
    Sssp(Vec<f32>),
    Wcc(Vec<u32>),
    Reach(Vec<bool>),
    Quarantined(FaultBoundary),
}

/// Runs the four-job mix on `store` under `faults`, returning one
/// outcome per job.  `faults: None` is the clean control.
fn run_mix(
    store: &Arc<SnapshotStore>,
    io_workers: usize,
    capacity: usize,
    faults: Option<Arc<FaultPlane>>,
) -> Vec<Outcome> {
    let mut engine = Engine::new(
        Arc::clone(store),
        EngineConfig {
            workers: 2,
            wavefront: 4,
            io_workers,
            channel_capacity: capacity,
            hierarchy: tight_hierarchy(store),
            faults,
            ..EngineConfig::default()
        },
    );
    let bfs = engine.submit_at(Bfs::new(0), 0);
    let sssp = engine.submit_at(Sssp::new(1), 40);
    let wcc = engine.submit_at(Wcc, 80);
    let reach = engine.submit_at(Reachability::new(0), 110);
    let report = engine.run();
    assert!(
        report.completed,
        "a chaos run must drain (quarantine, never hang)"
    );
    let outcome = |job, ok: fn(&Engine, u32) -> Outcome| match engine.job_fault(job) {
        Some(err) => {
            assert!(
                err.attempts >= 1,
                "a quarantine burned at least one attempt"
            );
            Outcome::Quarantined(err.boundary)
        }
        None => {
            assert!(engine.job_done(job), "drained job is done or quarantined");
            ok(&engine, job)
        }
    };
    vec![
        outcome(bfs, |e, j| Outcome::Bfs(e.results::<Bfs>(j).unwrap())),
        outcome(sssp, |e, j| Outcome::Sssp(e.results::<Sssp>(j).unwrap())),
        outcome(wcc, |e, j| Outcome::Wcc(e.results::<Wcc>(j).unwrap())),
        outcome(reach, |e, j| {
            Outcome::Reach(e.results::<Reachability>(j).unwrap())
        }),
    ]
}

/// The fault-free baseline per shard choice, computed once.
fn baseline(idx: usize) -> &'static Vec<Outcome> {
    static BASE: OnceLock<Vec<Vec<Outcome>>> = OnceLock::new();
    &BASE.get_or_init(|| {
        (0..SHARD_CHOICES.len())
            .map(|i| run_mix(shared_store(i), 0, 2, None))
            .collect()
    })[idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any fault schedule, any executor shape: completed jobs match the
    /// fault-free run bit-for-bit; everything else is typed quarantine.
    #[test]
    fn completed_jobs_match_fault_free_bit_for_bit(
        seed in 0u64..u64::MAX,
        fetch_rate in 0.0f64..0.25,
        spike_rate in 0.0f64..0.25,
        permanent_rate in 0.0f64..0.05,
        shard_idx in 0usize..SHARD_CHOICES.len(),
        io_workers in (0usize..4).prop_map(|i| [0usize, 1, 2, 4][i]),
        capacity in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
    ) {
        let store = shared_store(shard_idx);
        let plane = FaultPlane::new(FaultConfig {
            seed,
            fetch_rate,
            spike_rate,
            permanent_rate,
            spike_seconds: 1e-3,
            ..FaultConfig::default()
        });
        let chaos = run_mix(store, io_workers, capacity, Some(Arc::clone(&plane)));
        let clean = baseline(shard_idx);
        for (got, want) in chaos.iter().zip(clean) {
            match got {
                Outcome::Quarantined(boundary) => {
                    // Fetch admission is the only fallible boundary.
                    prop_assert_eq!(*boundary, FaultBoundary::ShardFetch);
                }
                survived => prop_assert_eq!(survived, want,
                    "surviving job diverged from the fault-free run"),
            }
        }
    }

    /// The schedule is the seed: the same chaos replays bit-for-bit —
    /// outcomes, retry counts, trips, modeled delay, everything.
    #[test]
    fn same_seed_replays_identically(
        seed in 0u64..u64::MAX,
        fetch_rate in 0.0f64..0.4,
        io_workers in (0usize..2).prop_map(|i| [0usize, 2][i]),
    ) {
        let store = shared_store(1);
        let cfg = FaultConfig {
            seed,
            fetch_rate,
            spike_rate: fetch_rate / 2.0,
            spike_seconds: 1e-3,
            ..FaultConfig::default()
        };
        let run = || {
            let plane = FaultPlane::new(cfg);
            let out = run_mix(store, io_workers, 2, Some(Arc::clone(&plane)));
            (out, plane.stats())
        };
        let (a, a_stats): (Vec<Outcome>, FaultStats) = run();
        let (b, b_stats) = run();
        prop_assert_eq!(a, b, "same seed must replay the same outcomes");
        prop_assert_eq!(a_stats, b_stats, "same seed must replay the same damage");
    }
}

/// A near-certain transient rate with a one-attempt retry budget:
/// everything quarantines fast, typed, and the run still drains —
/// the no-hang half of the degradation contract.
#[test]
fn aggressive_faults_quarantine_typed_without_hang() {
    let store = shared_store(2);
    let plane = FaultPlane::new(FaultConfig {
        seed: 7,
        fetch_rate: 0.98,
        retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        // Breakers off: every fetch draws, nothing reroutes to safety.
        breaker: cgraph::core::BreakerConfig { trip_after: 0, ..Default::default() },
        ..FaultConfig::default()
    });
    let outcomes = run_mix(store, 2, 1, Some(Arc::clone(&plane)));
    let quarantined = outcomes
        .iter()
        .filter(|o| matches!(o, Outcome::Quarantined(_)))
        .count();
    assert!(
        quarantined > 0,
        "a 98% fault rate with one attempt must quarantine something"
    );
    let stats = plane.stats();
    assert!(stats.exhausted > 0, "exhaustions must be counted");
    assert_eq!(
        stats.breaker_trips, 0,
        "trip_after = 0 must disable the breakers"
    );
}

/// An inert plane — `disabled()` on the engine *and* attached to the
/// store as an injector — is bit-identical to no plane at all: results,
/// loads, metrics, modeled-seconds bits.
#[test]
fn disabled_plane_is_bit_identical_to_no_plane() {
    let store = shared_store(1);
    let digest = |faults: Option<Arc<FaultPlane>>| {
        let mut engine = Engine::new(
            Arc::clone(store),
            EngineConfig {
                workers: 2,
                wavefront: 4,
                io_workers: 2,
                hierarchy: tight_hierarchy(store),
                faults,
                ..EngineConfig::default()
            },
        );
        let bfs = engine.submit_at(Bfs::new(0), 0);
        let wcc = engine.submit_at(Wcc, 80);
        let report = engine.run();
        assert!(report.completed);
        (
            engine.results::<Bfs>(bfs).unwrap(),
            engine.results::<Wcc>(wcc).unwrap(),
            report.loads,
            report.metrics,
            report.modeled_seconds.to_bits(),
        )
    };
    let plane = FaultPlane::disabled();
    assert_eq!(digest(Some(plane)), digest(None));
    // An all-zero config through `new` is equally inert.
    let zero = FaultPlane::new(FaultConfig::default());
    assert!(
        !zero.is_enabled(),
        "an undrawable config makes an inert plane"
    );
    assert_eq!(digest(Some(zero)), digest(None));
}

/// Store-side faults are fail-open: a durable store wired to a plane
/// with a high store rate keeps every view bit-identical — the plane
/// only *counts* the would-be faults (the WAL/rehydrate boundaries
/// absorb them).
#[test]
fn store_faults_are_fail_open_and_counted() {
    let el = generate::rmat(7, 4, generate::RmatParams::default(), 99);
    let n = el.num_vertices();
    let build = |faults: Option<Arc<FaultPlane>>| {
        let dir = std::env::temp_dir().join(format!(
            "cgraph-chaos-store-{}-{}",
            std::process::id(),
            faults.is_some()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ps = VertexCutPartitioner::new(8).partition(&el);
        let mut store = ShardedSnapshotStore::with_shards(ps, 2)
            .persist_to(&dir)
            .expect("store persists");
        if let Some(plane) = faults {
            store.set_faults(plane);
        }
        for (i, delta) in ingest_stream_spread(n, 8, 16, 2).iter().enumerate() {
            store
                .apply((i as u64 + 1) * 10, delta)
                .expect("store faults never fail an apply");
        }
        let store = Arc::new(store);
        let view = store.view_at(u64::MAX);
        let edges: Vec<Vec<(u32, u32)>> = (0..view.num_partitions() as u32)
            .map(|p| {
                let mut e: Vec<(u32, u32)> = view
                    .partition(p)
                    .edges_global()
                    .iter()
                    .map(|e| (e.src, e.dst))
                    .collect();
                e.sort_unstable();
                e
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        edges
    };
    let plane =
        FaultPlane::new(FaultConfig { seed: 11, store_rate: 0.5, ..FaultConfig::default() });
    let faulted = build(Some(Arc::clone(&plane)));
    let clean = build(None);
    assert_eq!(faulted, clean, "store faults must never change a view");
    assert!(
        plane.stats().injected > 0,
        "a 50% store rate over this stream must count injections"
    );
}

/// Serving under chaos: a journaled loop and a plain loop over the same
/// trace and fault schedule produce the identical degraded report, and
/// every offer is accounted for (completed, quarantined, or shed —
/// never lost).
#[test]
fn journaled_and_plain_serving_agree_under_chaos() {
    let store = shared_store(2);
    let trace: Vec<JobSpan> = generate_trace(&TraceConfig {
        hours: 3,
        base_rate: 2.0,
        peak_rate: 6.0,
        mean_duration: 1.0,
        seed: 0xBEEF,
    });
    let serve = |journal: bool| {
        let plane = FaultPlane::new(FaultConfig {
            seed: 0xD00D,
            fetch_rate: 0.2,
            spike_rate: 0.1,
            spike_seconds: 1e-3,
            ..FaultConfig::default()
        });
        let engine = Engine::new(
            Arc::clone(store),
            EngineConfig {
                workers: 2,
                wavefront: 4,
                hierarchy: tight_hierarchy(store),
                faults: Some(plane),
                ..EngineConfig::default()
            },
        );
        let config = ServeConfig {
            admission_window: 0.01,
            time_scale: 1.0,
            max_backlog: 64,
            brownout_backlog: 32,
            ..ServeConfig::default()
        };
        let mut sl = if journal {
            let path = std::env::temp_dir()
                .join(format!("cgraph-chaos-journal-{}.wal", std::process::id()));
            let _ = std::fs::remove_file(&path);
            let sl = ServeLoop::with_journal(engine, config, &path).expect("journal opens");
            let _ = std::fs::remove_file(&path);
            sl
        } else {
            ServeLoop::new(engine, config)
        };
        sl.offer_all(trace_arrivals(&trace, 0.02, 64));
        sl.serve()
    };
    let plain = serve(false);
    let journaled = serve(true);
    assert_eq!(
        plain, journaled,
        "journaling must not perturb a chaos serve"
    );
    let completed = plain
        .per_job()
        .iter()
        .filter(|r| r.outcome == cgraph::core::JobOutcome::Completed)
        .count() as u64;
    assert_eq!(
        completed + plain.quarantined + plain.rejected,
        trace.len() as u64,
        "every offer completes, quarantines, or sheds — none lost"
    );
}

/// ISSUE 10 satellite: a half-open probe that faults *again* re-opens
/// the breaker (trips keep counting past recoveries), and rerouted
/// pricing stays lane-correct — reroute re-fetch charges only ever land
/// on lanes that actually carried the job's traffic, deterministically.
#[test]
fn refaulting_probe_reopens_and_reroute_pricing_stays_lane_correct() {
    let store = shared_store(2); // 4 shards = 4 breaker lanes
    let run = || {
        // Hair-trigger breaker over a moderate transient rate with a
        // budget that usually-but-not-always survives: lanes trip on
        // retried-but-successful ops (keeping their jobs alive), cool
        // down for one rerouted op, and probe into the same hostile
        // schedule — so some probes fault again and re-open.
        let plane = FaultPlane::new(FaultConfig {
            seed: 41,
            fetch_rate: 0.35,
            retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
            breaker: cgraph::core::BreakerConfig { trip_after: 1, cooldown_ops: 1 },
            ..FaultConfig::default()
        });
        let mut engine = Engine::new(
            Arc::clone(store),
            EngineConfig {
                workers: 2,
                wavefront: 4,
                io_workers: 2,
                hierarchy: tight_hierarchy(store),
                faults: Some(Arc::clone(&plane)),
                ..EngineConfig::default()
            },
        );
        let bfs = engine.submit_at(Bfs::new(0), 0);
        let sssp = engine.submit_at(Sssp::new(1), 40);
        let wcc = engine.submit_at(Wcc, 80);
        let reach = engine.submit_at(Reachability::new(0), 110);
        assert!(engine.run().completed, "chaos must drain, never hang");
        (plane.stats(), engine, [bfs, sssp, wcc, reach])
    };
    let (stats, engine, jobs) = run();

    // The probe-fails-again path: more trips than recoveries means at
    // least one trip happened on a lane that was not freshly closed —
    // i.e. a half-open probe faulted and re-opened, or a lane re-tripped
    // after recovering — while reroutes prove cooldown traffic flowed.
    assert!(stats.breaker_trips >= 2, "stats: {stats:?}");
    assert!(
        stats.breaker_trips > stats.breaker_recoveries,
        "some probe must fault again (trips {} vs recoveries {})",
        stats.breaker_trips,
        stats.breaker_recoveries
    );
    assert!(stats.rerouted > 0, "open lanes must have rerouted ops");

    // Lane-correct pricing: reroute/retry re-fetch charges are indexed
    // by lane, and a lane that carried no fetch traffic at all may
    // never be charged for a reroute.
    let retry_bytes = engine.retry_fetch_bytes();
    assert!(
        retry_bytes.iter().sum::<u64>() > 0,
        "rerouted fetches must be priced"
    );
    let mut lane_traffic = vec![0u64; retry_bytes.len()];
    for &job in &jobs {
        for (lane, &bytes) in engine.job_fetch_by_lane(job).iter().enumerate() {
            lane_traffic[lane] += bytes;
        }
    }
    for (lane, &charged) in retry_bytes.iter().enumerate() {
        assert!(
            charged == 0 || lane_traffic[lane] > 0,
            "lane {lane} priced a reroute without carrying traffic"
        );
    }

    // Deterministic replay: the same seed prices the same lanes with
    // the same bytes — reroute charges never wander across lanes.
    let (stats2, engine2, _) = run();
    assert_eq!(stats, stats2, "same seed, same damage");
    assert_eq!(
        retry_bytes,
        engine2.retry_fetch_bytes(),
        "lane pricing must replay bit-for-bit"
    );
}
