//! Wavefront-scheduling semantics: `Scheduler::plan` at width 1 is the
//! legacy `pick` (property-tested for both schedulers), plans are sane at
//! any width, algorithm results are identical across widths, and the
//! pipelined executor models fewer seconds than the single-slot schedule
//! on the engine-comparison configuration.

use std::sync::Arc;

use proptest::prelude::*;

use cgraph::algos::{Bfs, PageRank, Sssp, Wcc};
use cgraph::core::exec::{flowshop_makespan, pipeline_makespan};
use cgraph::core::{
    Engine, EngineConfig, JobEngine, OrderScheduler, PriorityScheduler, Scheduler, SlotInfo,
};
use cgraph::graph::generate::Dataset;
use cgraph::graph::snapshot::SnapshotStore;
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, PartitionSet, Partitioner};
use cgraph::memsim::HierarchyConfig;
use cgraph_bench::{
    hierarchy_for, out_of_core_hierarchy, paper_mix, partitions_for, run_wavefront,
    run_wavefront_cfg, Scale,
};

/// Arbitrary non-empty slot sets, degrees/changes quantized to avoid
/// meaningless float-tie flakiness.  Shards follow the engine's
/// round-robin placement over four lanes.
fn arb_slots() -> impl Strategy<Value = Vec<SlotInfo>> {
    proptest::collection::vec((0u32..64, 0u32..4, 1usize..6, 0u64..500, 0u64..500), 1..24).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(pid, version, num_jobs, deg, chg)| SlotInfo {
                    pid,
                    version,
                    shard: pid as usize % 4,
                    num_jobs,
                    avg_degree: deg as f64 / 10.0,
                    avg_change: chg as f64 / 100.0,
                })
                .collect()
        },
    )
}

/// Arbitrary wave stage times: per-slot (fetch, install, trigger, lane),
/// quantized to dodge float-tie noise.
fn arb_stages() -> impl Strategy<Value = Vec<(f64, f64, f64, usize)>> {
    proptest::collection::vec((0u64..400, 0u64..100, 0u64..300, 0usize..4), 0..16).prop_map(|raw| {
        raw.into_iter()
            .map(|(f, m, t, lane)| (f as f64 / 20.0, m as f64 / 50.0, t as f64 / 25.0, lane))
            .collect()
    })
}

fn unzip_stages(stages: &[(f64, f64, f64, usize)]) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<usize>) {
    let fetch = stages.iter().map(|s| s.0).collect();
    let install = stages.iter().map(|s| s.1).collect();
    let trigger = stages.iter().map(|s| s.2).collect();
    let lanes = stages.iter().map(|s| s.3).collect();
    (fetch, install, trigger, lanes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Three-stage makespan never exceeds the linear (no-overlap) sum of
    /// all stage times, and never beats any serialized resource: the
    /// busiest fetch lane, the install channel, or the trigger chain.
    #[test]
    fn pipeline_bounded_by_linear_and_stage_floors(
        stages in arb_stages(),
        depth in 0usize..6,
    ) {
        let (fetch, install, trigger, lanes) = unzip_stages(&stages);
        let c = pipeline_makespan(&fetch, &install, &trigger, &lanes, depth);
        let linear: f64 = fetch.iter().sum::<f64>()
            + install.iter().sum::<f64>()
            + trigger.iter().sum::<f64>();
        prop_assert!(c <= linear + 1e-9, "makespan {c} beat the linear sum {linear}");
        let mut lane_sums = [0.0f64; 4];
        for s in &stages {
            lane_sums[s.3] += s.0;
        }
        let floor = lane_sums
            .iter()
            .cloned()
            .fold(install.iter().sum::<f64>().max(trigger.iter().sum()), f64::max);
        prop_assert!(c >= floor - 1e-9, "makespan {c} below stage floor {floor}");
    }

    /// With a zero-depth window the three-stage pipeline degenerates to
    /// the fused two-stage flow shop — the PR 1 model — at any lane
    /// layout; a single-lane store can then only improve with depth.
    #[test]
    fn pipeline_depth_zero_is_the_two_stage_model(
        stages in arb_stages(),
        depth in 1usize..6,
    ) {
        let (fetch, install, trigger, lanes) = unzip_stages(&stages);
        let fused: Vec<f64> = fetch.iter().zip(&install).map(|(f, m)| f + m).collect();
        let two_stage = flowshop_makespan(&fused, &trigger);
        let at_zero = pipeline_makespan(&fetch, &install, &trigger, &lanes, 0);
        prop_assert!(
            (at_zero - two_stage).abs() <= 1e-9 * two_stage.max(1.0),
            "depth 0: {at_zero} vs two-stage {two_stage}"
        );
        // Single lane (shards = 1): deeper windows still help by
        // overlapping fetch with install, but never hurt.
        let one_lane = vec![0usize; fetch.len()];
        let deep = pipeline_makespan(&fetch, &install, &trigger, &one_lane, depth);
        prop_assert!(deep <= two_stage + 1e-9, "depth {depth}: {deep} > {two_stage}");
    }

    /// The default `plan` at width 1 is exactly the legacy single-slot
    /// `pick` for the priority scheduler, at any θ.
    #[test]
    fn priority_plan_width_one_equals_pick(slots in arb_slots(), theta in 0u64..100) {
        let mut s = PriorityScheduler::new(theta as f64 / 100.0);
        let plan = s.plan(&slots, 1);
        prop_assert_eq!(plan, vec![s.pick(&slots)]);
    }

    /// Same equivalence for the fixed-order ablation scheduler.
    #[test]
    fn order_plan_width_one_equals_pick(slots in arb_slots()) {
        let mut s = OrderScheduler;
        let plan = s.plan(&slots, 1);
        prop_assert_eq!(plan, vec![s.pick(&slots)]);
    }

    /// Plans of any width are non-empty, duplicate-free, in range, and
    /// sized `min(width, slots)`; the first choice is always `pick`.
    #[test]
    fn plans_are_wellformed(slots in arb_slots(), width in 1usize..20, theta in 0u64..100) {
        let mut s = PriorityScheduler::new(theta as f64 / 100.0);
        let plan = s.plan(&slots, width);
        prop_assert_eq!(plan.len(), width.min(slots.len()));
        prop_assert!(plan.iter().all(|&i| i < slots.len()));
        let mut dedup = plan.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), plan.len(), "duplicate slots planned");
        prop_assert_eq!(plan[0], s.pick(&slots), "first wave slot must be the pick");
    }
}

fn partitions() -> PartitionSet {
    let el = generate::rmat(10, 6, generate::RmatParams::default(), 77);
    VertexCutPartitioner::new(16).partition(&el)
}

fn tight(ps: &PartitionSet) -> HierarchyConfig {
    let total: u64 = ps.partitions().iter().map(|p| p.structure_bytes()).sum();
    HierarchyConfig { cache_bytes: (total / 6).max(1), memory_bytes: total * 4 }
}

fn mix_results_cfg(
    ps: PartitionSet,
    width: usize,
    shards: usize,
    depth: usize,
) -> (Vec<f64>, Vec<f32>, Vec<u32>, Vec<u32>) {
    let mut e = Engine::from_partitions(
        ps.clone(),
        EngineConfig {
            wavefront: width,
            shards,
            prefetch_depth: depth,
            hierarchy: tight(&ps),
            ..EngineConfig::default()
        },
    );
    let pr = e.submit(PageRank::default());
    let ss = e.submit(Sssp::new(0));
    let bf = e.submit(Bfs::new(0));
    let wc = e.submit(Wcc);
    assert!(
        e.run().completed,
        "width {width} shards {shards} depth {depth} must converge"
    );
    (
        e.results::<PageRank>(pr).unwrap(),
        e.results::<Sssp>(ss).unwrap(),
        e.results::<Bfs>(bf).unwrap(),
        e.results::<Wcc>(wc).unwrap(),
    )
}

fn mix_results(ps: PartitionSet, width: usize) -> (Vec<f64>, Vec<f32>, Vec<u32>, Vec<u32>) {
    mix_results_cfg(ps, width, 1, 0)
}

/// Any wavefront width converges to the same algorithm results: min-plus
/// fixpoints (SSSP/BFS/WCC) exactly, PageRank within the convergence
/// tolerance (its residual depends on the processing order).
#[test]
fn wavefront_widths_agree_on_results() {
    let ps = partitions();
    let base = mix_results(ps.clone(), 1);
    for width in [2usize, 4, 8] {
        let wide = mix_results(ps.clone(), width);
        assert_eq!(wide.2, base.2, "BFS mismatch at width {width}");
        assert_eq!(wide.3, base.3, "WCC mismatch at width {width}");
        assert_eq!(wide.1, base.1, "SSSP mismatch at width {width}");
        for v in 0..base.0.len() {
            assert!(
                (wide.0[v] - base.0[v]).abs() < 2e-3 * base.0[v].max(1.0),
                "PageRank v{v} at width {width}: {} vs {}",
                wide.0[v],
                base.0[v]
            );
        }
    }
}

/// The engines-agree case for the prefetch pipeline: at `shards = 4,
/// prefetch_depth = 2` every algorithm converges to the same answers as
/// the classic single-slot schedule — lanes and windows change the
/// modeled overlap, never the computation.
#[test]
fn sharded_prefetch_agrees_on_results() {
    let ps = partitions();
    let base = mix_results(ps.clone(), 1);
    let pre = mix_results_cfg(ps, 4, 4, 2);
    assert_eq!(pre.1, base.1, "SSSP mismatch under prefetch");
    assert_eq!(pre.2, base.2, "BFS mismatch under prefetch");
    assert_eq!(pre.3, base.3, "WCC mismatch under prefetch");
    for v in 0..base.0.len() {
        assert!(
            (pre.0[v] - base.0[v]).abs() < 2e-3 * base.0[v].max(1.0),
            "PageRank v{v}: {} vs {}",
            pre.0[v],
            base.0[v]
        );
    }
}

/// A sharded snapshot store is transparent to the engine: at width 1
/// (no tie-breaks, no prefetch) the counters are bit-for-bit identical
/// to the single-shard store's.
#[test]
fn sharded_store_engine_counters_identical_at_width_one() {
    let el = generate::rmat(10, 6, generate::RmatParams::default(), 77);
    let run = |shards: usize| {
        let ps = VertexCutPartitioner::new(16).partition(&el);
        let h = tight(&ps);
        let store = Arc::new(SnapshotStore::with_shards(ps, shards));
        let mut e = Engine::new(
            store,
            EngineConfig { hierarchy: h, ..EngineConfig::default() },
        );
        e.submit(Bfs::new(0));
        e.submit(Wcc);
        let report = e.run_jobs();
        assert!(report.completed);
        (report.metrics, report.modeled_seconds, report.loads)
    };
    assert_eq!(run(1), run(4));
}

/// Lane placement never diverges from the store: a physically sharded
/// store dictates the engine's lanes (identical `shard_of` for every
/// partition — the same placement `StreamEngine` attributes by), and
/// `EngineConfig::shards` only models lanes over an unsharded store.
#[test]
fn engine_lanes_agree_with_store_placement() {
    let ps = partitions();
    let np = ps.num_partitions() as u32;
    // Sharded store + conflicting config: the store's placement wins.
    let store = Arc::new(SnapshotStore::with_shards(ps.clone(), 4));
    let e = Engine::new(
        Arc::clone(&store),
        EngineConfig { shards: 2, ..EngineConfig::default() },
    );
    assert_eq!(e.prefetch_queue().shards(), store.num_shards());
    for pid in 0..np {
        assert_eq!(e.prefetch_queue().lane_of(pid), store.shard_of(pid));
    }
    // Unsharded store: the config knob models the lanes, with the same
    // round-robin layout a `with_shards` store of that count would use.
    let flat = Arc::new(SnapshotStore::new(ps));
    let e = Engine::new(flat, EngineConfig { shards: 4, ..EngineConfig::default() });
    assert_eq!(e.prefetch_queue().shards(), 4);
    for pid in 0..np {
        assert_eq!(e.prefetch_queue().lane_of(pid), store.shard_of(pid));
    }
}

/// Width 1 through the layered executor is the classic engine: a second
/// engine at the default config produces identical counters (the
/// engines-agree and determinism suites pin the rest).
#[test]
fn default_config_plans_single_slots() {
    assert_eq!(EngineConfig::default().wavefront, 1);
    let ps = partitions();
    let run = |cfg: EngineConfig| {
        let mut e = Engine::from_partitions(ps.clone(), cfg);
        e.submit(Bfs::new(0));
        e.submit(Wcc);
        let before = e.global_metrics();
        e.run_jobs();
        e.global_metrics().since(&before)
    };
    let default = run(EngineConfig { hierarchy: tight(&ps), ..EngineConfig::default() });
    let explicit =
        run(EngineConfig { wavefront: 1, hierarchy: tight(&ps), ..EngineConfig::default() });
    assert_eq!(default, explicit);
}

/// The acceptance check for the pipelined executor: on the
/// engine-comparison bench configuration, planning a wavefront of k > 1
/// slots models fewer seconds than the single-slot schedule, because
/// slot i+1's Load overlaps slot i's Trigger inside every round.
#[test]
fn wavefront_pipelining_models_fewer_seconds() {
    let scale = Scale { shrink: 7 };
    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = hierarchy_for(ds, &ps);
    let store = Arc::new(SnapshotStore::new(ps));
    let k1 = run_wavefront(&store, 2, h, 1, &paper_mix());
    let k2 = run_wavefront(&store, 2, h, 2, &paper_mix());
    let k4 = run_wavefront(&store, 2, h, 4, &paper_mix());
    assert!(k1.completed && k2.completed && k4.completed);
    assert!(
        k2.modeled_seconds < k1.modeled_seconds,
        "k=2 {:.6}s must beat k=1 {:.6}s",
        k2.modeled_seconds,
        k1.modeled_seconds
    );
    assert!(
        k4.modeled_seconds < k1.modeled_seconds,
        "k=4 {:.6}s must beat k=1 {:.6}s",
        k4.modeled_seconds,
        k1.modeled_seconds
    );
}

/// The acceptance check for the prefetch pipeline: on the out-of-core
/// configuration (disk-bound loads), a `wavefront = 4, shards = 4` wave
/// with a depth-2 prefetch window models at least 15% less round time
/// than the same wave with prefetch disabled, while moving exactly the
/// same traffic.
#[test]
fn sharded_prefetch_models_at_least_15_percent_less() {
    let scale = Scale { shrink: 7 };
    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = out_of_core_hierarchy(&ps);
    let store = Arc::new(SnapshotStore::new(ps));
    let fused = run_wavefront_cfg(&store, 2, h, 4, 4, 0, &paper_mix());
    let prefetched = run_wavefront_cfg(&store, 2, h, 4, 4, 2, &paper_mix());
    assert!(fused.completed && prefetched.completed);
    // Same plan, same access sequence, same counters: the prefetch
    // window changes only the modeled overlap.
    assert_eq!(
        fused.metrics, prefetched.metrics,
        "traffic must be invariant"
    );
    assert_eq!(fused.loads, prefetched.loads);
    let reduction = 1.0 - prefetched.modeled_seconds / fused.modeled_seconds;
    assert!(
        reduction >= 0.15,
        "depth-2 prefetch over 4 shards must cut modeled time ≥15%: \
         {:.6}s vs {:.6}s ({:.1}%)",
        prefetched.modeled_seconds,
        fused.modeled_seconds,
        reduction * 100.0
    );
}

/// Prefetch depth is monotone in the model: deeper windows never model
/// more seconds on the same schedule, and every depth stays at or above
/// nothing-to-hide floors (completeness comes from the property tests).
#[test]
fn prefetch_depth_is_monotone_in_modeled_time() {
    let scale = Scale { shrink: 7 };
    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = out_of_core_hierarchy(&ps);
    let store = Arc::new(SnapshotStore::new(ps));
    let mut prev = f64::INFINITY;
    for depth in [0usize, 1, 2, 4] {
        let r = run_wavefront_cfg(&store, 2, h, 4, 4, depth, &paper_mix());
        assert!(r.completed);
        assert!(
            r.modeled_seconds <= prev + 1e-12,
            "depth {depth} modeled {:.6}s regressed past {prev:.6}s",
            r.modeled_seconds
        );
        prev = r.modeled_seconds;
    }
}
