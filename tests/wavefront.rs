//! Wavefront-scheduling semantics: `Scheduler::plan` at width 1 is the
//! legacy `pick` (property-tested for both schedulers), plans are sane at
//! any width, algorithm results are identical across widths, and the
//! pipelined executor models fewer seconds than the single-slot schedule
//! on the engine-comparison configuration.

use std::sync::Arc;

use proptest::prelude::*;

use cgraph::algos::{Bfs, PageRank, Sssp, Wcc};
use cgraph::core::{
    Engine, EngineConfig, JobEngine, OrderScheduler, PriorityScheduler, Scheduler, SlotInfo,
};
use cgraph::graph::generate::Dataset;
use cgraph::graph::snapshot::SnapshotStore;
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, PartitionSet, Partitioner};
use cgraph::memsim::HierarchyConfig;
use cgraph_bench::{hierarchy_for, paper_mix, partitions_for, run_wavefront, Scale};

/// Arbitrary non-empty slot sets, degrees/changes quantized to avoid
/// meaningless float-tie flakiness.
fn arb_slots() -> impl Strategy<Value = Vec<SlotInfo>> {
    proptest::collection::vec((0u32..64, 0u32..4, 1usize..6, 0u64..500, 0u64..500), 1..24).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(pid, version, num_jobs, deg, chg)| SlotInfo {
                    pid,
                    version,
                    num_jobs,
                    avg_degree: deg as f64 / 10.0,
                    avg_change: chg as f64 / 100.0,
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The default `plan` at width 1 is exactly the legacy single-slot
    /// `pick` for the priority scheduler, at any θ.
    #[test]
    fn priority_plan_width_one_equals_pick(slots in arb_slots(), theta in 0u64..100) {
        let mut s = PriorityScheduler::new(theta as f64 / 100.0);
        let plan = s.plan(&slots, 1);
        prop_assert_eq!(plan, vec![s.pick(&slots)]);
    }

    /// Same equivalence for the fixed-order ablation scheduler.
    #[test]
    fn order_plan_width_one_equals_pick(slots in arb_slots()) {
        let mut s = OrderScheduler;
        let plan = s.plan(&slots, 1);
        prop_assert_eq!(plan, vec![s.pick(&slots)]);
    }

    /// Plans of any width are non-empty, duplicate-free, in range, and
    /// sized `min(width, slots)`; the first choice is always `pick`.
    #[test]
    fn plans_are_wellformed(slots in arb_slots(), width in 1usize..20, theta in 0u64..100) {
        let mut s = PriorityScheduler::new(theta as f64 / 100.0);
        let plan = s.plan(&slots, width);
        prop_assert_eq!(plan.len(), width.min(slots.len()));
        prop_assert!(plan.iter().all(|&i| i < slots.len()));
        let mut dedup = plan.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), plan.len(), "duplicate slots planned");
        prop_assert_eq!(plan[0], s.pick(&slots), "first wave slot must be the pick");
    }
}

fn partitions() -> PartitionSet {
    let el = generate::rmat(10, 6, generate::RmatParams::default(), 77);
    VertexCutPartitioner::new(16).partition(&el)
}

fn tight(ps: &PartitionSet) -> HierarchyConfig {
    let total: u64 = ps.partitions().iter().map(|p| p.structure_bytes()).sum();
    HierarchyConfig { cache_bytes: (total / 6).max(1), memory_bytes: total * 4 }
}

fn mix_results(ps: PartitionSet, width: usize) -> (Vec<f64>, Vec<f32>, Vec<u32>, Vec<u32>) {
    let mut e = Engine::from_partitions(
        ps.clone(),
        EngineConfig { wavefront: width, hierarchy: tight(&ps), ..EngineConfig::default() },
    );
    let pr = e.submit(PageRank::default());
    let ss = e.submit(Sssp::new(0));
    let bf = e.submit(Bfs::new(0));
    let wc = e.submit(Wcc);
    assert!(e.run().completed, "width {width} must converge");
    (
        e.results::<PageRank>(pr).unwrap(),
        e.results::<Sssp>(ss).unwrap(),
        e.results::<Bfs>(bf).unwrap(),
        e.results::<Wcc>(wc).unwrap(),
    )
}

/// Any wavefront width converges to the same algorithm results: min-plus
/// fixpoints (SSSP/BFS/WCC) exactly, PageRank within the convergence
/// tolerance (its residual depends on the processing order).
#[test]
fn wavefront_widths_agree_on_results() {
    let ps = partitions();
    let base = mix_results(ps.clone(), 1);
    for width in [2usize, 4, 8] {
        let wide = mix_results(ps.clone(), width);
        assert_eq!(wide.2, base.2, "BFS mismatch at width {width}");
        assert_eq!(wide.3, base.3, "WCC mismatch at width {width}");
        assert_eq!(wide.1, base.1, "SSSP mismatch at width {width}");
        for v in 0..base.0.len() {
            assert!(
                (wide.0[v] - base.0[v]).abs() < 2e-3 * base.0[v].max(1.0),
                "PageRank v{v} at width {width}: {} vs {}",
                wide.0[v],
                base.0[v]
            );
        }
    }
}

/// Width 1 through the layered executor is the classic engine: a second
/// engine at the default config produces identical counters (the
/// engines-agree and determinism suites pin the rest).
#[test]
fn default_config_plans_single_slots() {
    assert_eq!(EngineConfig::default().wavefront, 1);
    let ps = partitions();
    let run = |cfg: EngineConfig| {
        let mut e = Engine::from_partitions(ps.clone(), cfg);
        e.submit(Bfs::new(0));
        e.submit(Wcc);
        let before = e.global_metrics();
        e.run_jobs();
        e.global_metrics().since(&before)
    };
    let default = run(EngineConfig { hierarchy: tight(&ps), ..EngineConfig::default() });
    let explicit =
        run(EngineConfig { wavefront: 1, hierarchy: tight(&ps), ..EngineConfig::default() });
    assert_eq!(default, explicit);
}

/// The acceptance check for the pipelined executor: on the
/// engine-comparison bench configuration, planning a wavefront of k > 1
/// slots models fewer seconds than the single-slot schedule, because
/// slot i+1's Load overlaps slot i's Trigger inside every round.
#[test]
fn wavefront_pipelining_models_fewer_seconds() {
    let scale = Scale { shrink: 7 };
    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = hierarchy_for(ds, &ps);
    let store = Arc::new(SnapshotStore::new(ps));
    let k1 = run_wavefront(&store, 2, h, 1, &paper_mix());
    let k2 = run_wavefront(&store, 2, h, 2, &paper_mix());
    let k4 = run_wavefront(&store, 2, h, 4, &paper_mix());
    assert!(k1.completed && k2.completed && k4.completed);
    assert!(
        k2.modeled_seconds < k1.modeled_seconds,
        "k=2 {:.6}s must beat k=1 {:.6}s",
        k2.modeled_seconds,
        k1.modeled_seconds
    );
    assert!(
        k4.modeled_seconds < k1.modeled_seconds,
        "k=4 {:.6}s must beat k=1 {:.6}s",
        k4.modeled_seconds,
        k1.modeled_seconds
    );
}
