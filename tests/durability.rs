//! Kill-and-recover suite for the durable snapshot store.
//!
//! The core property: for a random delta stream, a random kill point
//! (each segment file independently truncated to any byte between its
//! last-synced prefix and its final length), and any {shards ×
//! compaction × capacity} configuration, recovery yields a store whose
//! every historical and latest view is bit-identical to an in-memory
//! survivor that applied the same prefix — and continuing the stream
//! after recovery converges on the survivor's final state exactly.
//! Mid-log corruption (a flipped bit in the committed prefix) must
//! surface as a typed `StoreError`, never a panic.
//!
//! Spill flags are deliberately NOT part of the compared digest: a
//! crash can lose spill frames appended after the last commit, so the
//! recovered store may legitimately differ in *where* payloads reside —
//! never in what any view observes.
//!
//! CI runs this binary under `timeout 60` on the default parallel
//! harness and under `--test-threads=1`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use cgraph::graph::fault;
use cgraph::graph::snapshot::{
    CompactionPolicy, GraphDelta, ShardCapacity, ShardPlacement, ShardedSnapshotStore,
};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{Edge, EdgeList, Partitioner, StoreError};

const N: u32 = 24;
const PARTS: usize = 4;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh private directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cgraph-durability-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base(edges: &EdgeList) -> cgraph::graph::PartitionSet {
    VertexCutPartitioner::new(PARTS).partition(edges)
}

/// Everything a view can observe, flattened: partition versions and
/// edge sets, masters, replica lists, and degrees for the whole vertex
/// universe.
#[derive(Debug, PartialEq)]
struct Digest {
    ts: u64,
    versions: Vec<u32>,
    edges: Vec<Vec<(u32, u32)>>,
    masters: Vec<u32>,
    replicas: Vec<Vec<u32>>,
    degrees: Vec<(u32, u32)>,
}

fn digest(store: &Arc<ShardedSnapshotStore>, ts: u64) -> Digest {
    let v = store.view_at(ts);
    Digest {
        ts: v.timestamp(),
        versions: (0..PARTS as u32).map(|p| v.version_of(p)).collect(),
        edges: (0..PARTS as u32)
            .map(|p| {
                let mut e: Vec<(u32, u32)> = v
                    .partition(p)
                    .edges_global()
                    .iter()
                    .map(|e| (e.src, e.dst))
                    .collect();
                e.sort_unstable();
                e
            })
            .collect(),
        masters: (0..N).map(|x| v.master_of(x)).collect(),
        replicas: (0..N).map(|x| v.replicas_of(x).to_vec()).collect(),
        degrees: (0..N).map(|x| v.degree_of(x)).collect(),
    }
}

/// Digests at the base, every applied timestamp, and the latest view.
fn all_views(store: &Arc<ShardedSnapshotStore>, upto_ts: u64) -> Vec<Digest> {
    (0..=upto_ts / 10).map(|i| digest(store, i * 10)).collect()
}

/// One generated mutation round: edges to add, indices picking removals.
type Round = (Vec<(u32, u32)>, Vec<usize>);

/// Resolves `(adds, picks)` rounds against a live multiset so removals
/// always name live edges; returns the delta stream.
fn resolve_stream(el: &EdgeList, rounds: &[Round]) -> Vec<GraphDelta> {
    let mut live: Vec<(u32, u32)> = el.edges().iter().map(|e| (e.src, e.dst)).collect();
    let mut deltas = Vec::new();
    for (adds, picks) in rounds {
        let additions: Vec<Edge> = adds
            .iter()
            .filter(|(s, d)| s != d)
            .map(|&(s, d)| Edge::unit(s, d))
            .collect();
        let mut removals = Vec::new();
        for &pick in picks {
            if live.is_empty() {
                break;
            }
            removals.push(live.remove(pick % live.len()));
        }
        live.extend(additions.iter().map(|e| (e.src, e.dst)));
        deltas.push(GraphDelta { additions, removals });
    }
    deltas
}

fn arb_edges() -> impl Strategy<Value = EdgeList> {
    proptest::collection::vec((0u32..N, 0u32..N), 1..80).prop_map(|pairs| {
        let edges: Vec<Edge> = pairs
            .into_iter()
            .filter(|(s, d)| s != d)
            .map(|(s, d)| Edge::unit(s, d))
            .collect();
        let mut el = EdgeList::from_edges(edges, N);
        el.sort_and_dedup();
        el
    })
}

fn arb_rounds() -> impl Strategy<Value = Vec<Round>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0u32..N, 0u32..N), 0..8),
            proptest::collection::vec(0usize..64, 0..5),
        ),
        1..7,
    )
}

/// The segment files of a store directory, in a fixed order.
fn segment_files(dir: &Path, shards: usize) -> Vec<PathBuf> {
    let mut files = vec![dir.join("store.seg")];
    for s in 0..shards {
        files.push(dir.join(format!("shard-{s}.seg")));
    }
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole property (see the module docs).  `kill_fracs` picks
    /// each segment's independent truncation point between the length
    /// it had after `kept` applies and its final length — a strictly
    /// harsher adversary than the real fsync ordering allows.
    #[test]
    fn kill_and_recover_is_bit_identical(
        el in arb_edges(),
        rounds in arb_rounds(),
        shards in (0usize..2).prop_map(|i| [1usize, 3][i]),
        every_k in 0usize..4,
        tight in (0u32..2).prop_map(|b| b == 1),
        kept_frac in 0.0f64..1.0,
        kill_fracs in proptest::collection::vec(0.0f64..1.0, 4..5),
        corrupt_at in (0u64..1_000_000, 0u8..8),
    ) {
        let deltas = resolve_stream(&el, &rounds);
        let n = deltas.len();
        let kept = ((n as f64) * kept_frac) as usize;
        let compaction = match every_k {
            0 => CompactionPolicy::Off,
            k => CompactionPolicy::EveryK(k),
        };
        let capacity = if tight {
            ShardCapacity::bytes(600)
        } else {
            ShardCapacity::UNLIMITED
        };
        let dir = temp_dir("prop");

        // The in-memory survivor and the durable store apply the same
        // stream in lockstep.
        let mut survivor = ShardedSnapshotStore::with_placement(
            base(&el), shards, ShardPlacement::RoundRobin)
            .with_compaction(compaction)
            .with_capacity(capacity);
        let mut durable = ShardedSnapshotStore::with_placement(
            base(&el), shards, ShardPlacement::RoundRobin)
            .with_compaction(compaction)
            .with_capacity(capacity)
            .persist_to(&dir)
            .unwrap();
        let shards_n = durable.num_shards();
        let files = segment_files(&dir, shards_n);

        for (i, d) in deltas[..kept].iter().enumerate() {
            survivor.apply((i as u64 + 1) * 10, d).unwrap();
            durable.apply((i as u64 + 1) * 10, d).unwrap();
        }
        // Every byte up to here is fsync'd; record the safe prefix.
        let synced: Vec<u64> = files.iter().map(|f| fault::file_len(f).unwrap()).collect();
        for (i, d) in deltas[kept..].iter().enumerate() {
            let ts = ((kept + i) as u64 + 1) * 10;
            survivor.apply(ts, d).unwrap();
            durable.apply(ts, d).unwrap();
        }
        let survivor = Arc::new(survivor);

        // Kill: drop the store and truncate each segment independently
        // to a random point at or after its synced prefix.
        drop(durable);
        for ((f, &lo), frac) in files.iter().zip(&synced).zip(&kill_fracs) {
            let hi = fault::file_len(f).unwrap();
            let cut = lo + (((hi - lo) as f64) * frac) as u64;
            fault::truncate_at(f, cut).unwrap();
        }

        // Recover: at least the `kept` fully-synced applies survive,
        // and every surviving view is bit-identical to the survivor.
        let recovered = ShardedSnapshotStore::open(&dir).unwrap();
        let m = recovered.num_snapshots();
        prop_assert!(m >= kept, "recovered {m} < synced {kept}");
        prop_assert!(m <= n);
        {
            let r = Arc::new(recovered);
            let upto = r.latest_timestamp();
            prop_assert_eq!(all_views(&r, upto), all_views(&survivor, upto));

            // Continue the stream on the recovered store: the final
            // state must converge on the survivor's, exactly.
            let mut r = Arc::try_unwrap(r).ok().unwrap();
            for (i, d) in deltas[m..].iter().enumerate() {
                r.apply(((m + i) as u64 + 1) * 10, d).unwrap();
            }
            let r = Arc::new(r);
            prop_assert_eq!(
                all_views(&r, (n as u64) * 10),
                all_views(&survivor, (n as u64) * 10)
            );
        }

        // Mid-log corruption: flip one bit anywhere in the (intact)
        // store segment — open must refuse with a typed error, and must
        // not panic.
        let (off, bit) = corrupt_at;
        let store_seg = &files[0];
        let len = fault::file_len(store_seg).unwrap();
        fault::flip_bit(store_seg, off % len, bit & 7).unwrap();
        prop_assert!(ShardedSnapshotStore::open(&dir).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A store with no applies round-trips: recovery yields the base.
#[test]
fn empty_store_round_trips() {
    let el = cgraph::graph::generate::cycle(N);
    let dir = temp_dir("empty");
    let s = ShardedSnapshotStore::new(base(&el))
        .persist_to(&dir)
        .unwrap();
    assert!(s.is_durable());
    assert_eq!(s.wal_dir(), Some(dir.as_path()));
    drop(s);
    let r = Arc::new(ShardedSnapshotStore::open(&dir).unwrap());
    assert_eq!(r.num_snapshots(), 0);
    let mem = Arc::new(ShardedSnapshotStore::new(base(&el)));
    assert_eq!(digest(&r, 0), digest(&mem, 0));
    std::fs::remove_dir_all(&dir).ok();
}

/// Opening a directory that does not exist is a typed I/O error.
#[test]
fn open_missing_directory_is_io_error() {
    let dir = temp_dir("missing");
    match ShardedSnapshotStore::open(&dir) {
        Err(StoreError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}

/// recover() on an in-memory store is refused, not a panic.
#[test]
fn recover_requires_durability() {
    let el = cgraph::graph::generate::cycle(N);
    let s = ShardedSnapshotStore::new(base(&el));
    assert!(matches!(s.recover(), Err(StoreError::Io(_))));
}

/// A store segment holding only a torn tail (the first commit frame
/// was cut mid-write) recovers to the base state.
#[test]
fn torn_tail_only_recovers_to_base() {
    let el = cgraph::graph::generate::cycle(N);
    let dir = temp_dir("torn-only");
    let mut s = ShardedSnapshotStore::new(base(&el))
        .persist_to(&dir)
        .unwrap();
    s.apply(10, &GraphDelta::adding([Edge::unit(0, 5)]))
        .unwrap();
    drop(s);
    // Cut the store segment 3 bytes into its first frame header: the
    // commit is gone, so the shard records must be discarded too.
    let store_seg = dir.join("store.seg");
    fault::truncate_at(&store_seg, 8 + 3).unwrap();
    let r = Arc::new(ShardedSnapshotStore::open(&dir).unwrap());
    assert_eq!(r.num_snapshots(), 0);
    let mem = Arc::new(ShardedSnapshotStore::new(base(&el)));
    assert_eq!(digest(&r, 10), digest(&mem, 0));
    std::fs::remove_dir_all(&dir).ok();
}

/// Recovery → new applies → second recovery: idempotent, and the
/// second recovery sees the post-recovery applies.
#[test]
fn recover_apply_recover_is_idempotent() {
    let el = cgraph::graph::generate::cycle(N);
    let dir = temp_dir("idem");
    let mut mem = ShardedSnapshotStore::with_shards(base(&el), 3);
    let mut s = ShardedSnapshotStore::with_shards(base(&el), 3)
        .persist_to(&dir)
        .unwrap();
    for i in 1..=4u64 {
        let d = GraphDelta::adding([Edge::unit(
            (i % N as u64) as u32,
            ((i + 7) % N as u64) as u32,
        )]);
        s.apply(i * 10, &d).unwrap();
        mem.apply(i * 10, &d).unwrap();
    }
    let mut s = s.recover().unwrap();
    assert_eq!(s.num_snapshots(), 4);
    let d = GraphDelta::removing([(1, 2)]);
    s.apply(50, &d).unwrap();
    mem.apply(50, &d).unwrap();
    let s = Arc::new(s.recover().unwrap());
    assert_eq!(s.num_snapshots(), 5);
    let mem = Arc::new(mem);
    assert_eq!(all_views(&s, 50), all_views(&mem, 50));
    std::fs::remove_dir_all(&dir).ok();
}

/// A tightly-capped durable store spills for real — resident payload
/// copies are dropped — and both reads-through-spill and recovery
/// rehydrate the same bytes the survivor holds.
#[test]
fn spilled_store_recovers_and_rehydrates() {
    let el = cgraph::graph::generate::cycle(N);
    let dir = temp_dir("spill");
    let mut mem = ShardedSnapshotStore::new(base(&el))
        .with_compaction(CompactionPolicy::EveryK(2))
        .with_capacity(ShardCapacity::bytes(600));
    let mut s = ShardedSnapshotStore::new(base(&el))
        .with_compaction(CompactionPolicy::EveryK(2))
        .with_capacity(ShardCapacity::bytes(600))
        .persist_to(&dir)
        .unwrap();
    for i in 1..=10u64 {
        let d = GraphDelta::adding([Edge::unit(
            (i % N as u64) as u32,
            ((i + 5) % N as u64) as u32,
        )]);
        s.apply(i * 10, &d).unwrap();
        mem.apply(i * 10, &d).unwrap();
    }
    assert!(s.has_spills(), "tight capacity must have spilled");
    let s = Arc::new(s);
    let mem = Arc::new(mem);
    // Reads through spilled records do real I/O on the durable store;
    // they must still observe exactly what the in-memory survivor does.
    assert_eq!(all_views(&s, 100), all_views(&mem, 100));
    let r = Arc::new(Arc::try_unwrap(s).ok().unwrap().recover().unwrap());
    assert!(r.has_spills(), "spill flags survive recovery");
    assert_eq!(all_views(&r, 100), all_views(&mem, 100));
    std::fs::remove_dir_all(&dir).ok();
}

/// persist_to snapshots the store configuration into the manifest:
/// recovery restores placement, compaction, and capacity.
#[test]
fn manifest_restores_configuration() {
    let el = cgraph::graph::generate::cycle(N);
    let dir = temp_dir("manifest");
    let s = ShardedSnapshotStore::with_placement(base(&el), 3, ShardPlacement::Hash)
        .with_compaction(CompactionPolicy::EveryK(5))
        .with_capacity(ShardCapacity::bytes(1 << 20))
        .persist_to(&dir)
        .unwrap();
    drop(s);
    let r = ShardedSnapshotStore::open(&dir).unwrap();
    assert_eq!(r.num_shards(), 3);
    assert_eq!(r.placement(), &ShardPlacement::Hash);
    assert_eq!(r.compaction(), CompactionPolicy::EveryK(5));
    assert_eq!(r.capacity(), ShardCapacity::bytes(1 << 20));
    std::fs::remove_dir_all(&dir).ok();
}

// ---- serve-journal identity across restarts (ISSUE 10 satellites) ----

/// Regression (ISSUE 10 satellite): journal sequence numbers are
/// assigned by **offer order** — before the journal-replay check and
/// before the shed check — so a killed-and-resumed `ServeLoop` with a
/// *different* `max_backlog` still skips exactly the journaled
/// completions and never misaligns the seq→offer mapping.  Shed offers
/// consume their sequence number without journaling, which is what
/// keeps the identity stable when the backlog bound changes between
/// incarnations.
#[test]
fn journal_seq_survives_a_different_max_backlog() {
    use cgraph::algos::Bfs;
    use cgraph::core::{Arrival, Engine, EngineConfig, ServeConfig, ServeLoop};

    let el = cgraph::graph::generate::cycle(N);
    let store = Arc::new(ShardedSnapshotStore::new(base(&el)));
    let dir = temp_dir("seq-backlog");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.seg");

    const OFFERS: usize = 12;
    let ats: Vec<f64> = (0..OFFERS).map(|i| i as f64 * 0.001).collect();
    let arrivals = |ats: &[f64]| -> Vec<Arrival> {
        ats.iter()
            .map(|&at| {
                Arrival::new(at, "bfs", move |e: &mut Engine, ts| {
                    e.submit_at(Bfs::new(0), ts)
                })
            })
            .collect()
    };
    let cfg = |max_backlog| ServeConfig {
        admission_window: 0.0,
        time_scale: 1.0,
        max_backlog,
        ..ServeConfig::default()
    };

    // Incarnation 1, backlog 4: the whole trace is offered up front, so
    // offers 4..12 are shed under backlog pressure (they still consume
    // seqs 4..12); offers 0..4 are admitted, complete, and journal.
    let engine = Engine::new(Arc::clone(&store), EngineConfig::default());
    let mut sl = ServeLoop::with_journal(engine, cfg(4), &path).unwrap();
    sl.offer_all(arrivals(&ats));
    assert_eq!(sl.rejected(), (OFFERS - 4) as u64, "backlog sheds the tail");
    let first = sl.serve();
    assert!(first.completed);
    assert!(sl.journal_error().is_none());
    assert_eq!(sl.engine().num_jobs(), 4);
    drop(sl);

    // Incarnation 2, backlog 8: journaled seqs 0..4 replay (the journal
    // check precedes the shed check, so a tiny backlog could never shed
    // them), and the previously shed seqs 4..12 now all fit.
    let engine = Engine::new(Arc::clone(&store), EngineConfig::default());
    let mut sl = ServeLoop::with_journal(engine, cfg(8), &path).unwrap();
    sl.offer_all(arrivals(&ats));
    assert_eq!(sl.resumed(), 4, "exactly the journaled completions skip");
    assert_eq!(sl.rejected(), 0, "the wider backlog admits the rest");
    let second = sl.serve();
    assert!(second.completed);
    assert_eq!(
        second.jobs.len(),
        OFFERS,
        "whole trace covered exactly once"
    );
    assert_eq!(
        sl.engine().num_jobs(),
        OFFERS - 4,
        "no journaled job re-runs"
    );
    // Seq→offer alignment: every replayed lifecycle carries the arrival
    // stamp of *its own* offer index, not a shifted neighbor's.
    for replayed in &second.jobs[..4] {
        assert_eq!(
            replayed.arrival, ats[replayed.job as usize],
            "seq {} must map to its original offer",
            replayed.job
        );
    }
    drop(sl);

    // Incarnation 3, backlog 2 (smaller than either): everything is
    // journaled now, so the whole trace replays — the backlog bound
    // never touches journal-skipped offers.
    let engine = Engine::new(Arc::clone(&store), EngineConfig::default());
    let mut sl = ServeLoop::with_journal(engine, cfg(2), &path).unwrap();
    sl.offer_all(arrivals(&ats));
    assert_eq!(sl.resumed(), OFFERS as u64);
    assert_eq!(sl.rejected(), 0);
    let third = sl.serve();
    assert_eq!(third.jobs.len(), OFFERS);
    assert_eq!(sl.engine().num_jobs(), 0, "pure replay runs no engine work");
    for (replayed, &at) in third.jobs.iter().zip(&ats) {
        assert_eq!(replayed.arrival, at);
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A standing job survives kill-and-recover: a valve-truncated serve
/// journals its finished emissions; a restarted loop (same runner, same
/// journal) replays them verbatim, invalidates the prior it never saw,
/// recomputes the first live emission from scratch, and resumes
/// incrementally from there — every live emission bit-identical to a
/// from-scratch run at its version.
#[test]
fn standing_job_survives_kill_and_recover() {
    use cgraph::algos::Bfs;
    use cgraph::core::{Engine, EngineConfig, ServeConfig, ServeLoop, Standing};

    let el = cgraph::graph::generate::cycle(N);
    let deltas = [
        GraphDelta::adding([Edge::unit(0, 12)]),
        GraphDelta::adding([Edge::unit(3, 17), Edge::unit(8, 1)]),
        GraphDelta::adding([Edge::unit(17, 4)]),
    ];
    let build_store = || {
        let mut s = ShardedSnapshotStore::new(base(&el));
        for (i, d) in deltas.iter().enumerate() {
            s.apply((i as u64 + 1) * 10, d).unwrap();
        }
        Arc::new(s)
    };
    let store = build_store();
    let versions = [0u64, 10, 20, 30];
    let scratch = |ts: u64| -> Vec<u32> {
        let mut e = Engine::new(Arc::clone(&store), EngineConfig::default());
        let id = e.submit_at(Bfs::new(0), ts);
        assert!(e.run().completed);
        e.results::<Bfs>(id).unwrap()
    };
    let cfg = ServeConfig { time_scale: 1e4, ..ServeConfig::default() };
    let dir = temp_dir("standing");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.seg");

    // Reference: all four emissions uninterrupted, to size the valve.
    let full_loads = {
        let engine = Engine::new(Arc::clone(&store), EngineConfig::default());
        let mut sl = ServeLoop::new(engine, cfg);
        sl.add_standing(Standing::new("standing-bfs", Bfs::new(0)).boxed());
        let report = sl.serve();
        assert!(report.completed);
        report.loads
    };

    // Incarnation 1: the load valve kills the loop mid-emissions.
    let engine = Engine::new(
        Arc::clone(&store),
        EngineConfig { max_loads: full_loads / 2, ..EngineConfig::default() },
    );
    let mut sl = ServeLoop::with_journal(engine, cfg, &path).unwrap();
    sl.add_standing(Standing::new("standing-bfs", Bfs::new(0)).boxed());
    let first = sl.serve();
    assert!(!first.completed, "the valve must truncate this serve");
    assert!(sl.journal_error().is_none());
    drop(sl);

    // Incarnation 2: fresh engine, same journal, same standing runner.
    let engine = Engine::new(Arc::clone(&store), EngineConfig::default());
    let mut sl = ServeLoop::with_journal(engine, cfg, &path).unwrap();
    sl.add_standing(Standing::new("standing-bfs", Bfs::new(0)).boxed());
    let second = sl.serve();
    assert!(second.completed, "restart must finish the emissions");
    let resumed = sl.resumed() as usize;
    assert!(
        resumed > 0 && resumed < versions.len(),
        "valve must land mid-emissions (resumed {resumed} of {})",
        versions.len()
    );
    assert_eq!(
        second.jobs.len(),
        versions.len(),
        "combined report covers every version exactly once"
    );
    let live = versions.len() - resumed;
    assert_eq!(
        sl.engine().num_jobs(),
        live,
        "no journaled emission re-runs"
    );
    let runner = sl.standing(0);
    assert_eq!(runner.emitted(), live as u64);
    assert_eq!(
        runner.seeded(),
        live as u64 - 1,
        "the first live emission recomputes from scratch (invalidated \
         prior); every later one resumes seeded"
    );
    // Replayed emissions bind their own version timestamps, in order.
    for (replayed, &ts) in second.jobs.iter().zip(&versions) {
        assert_eq!(replayed.arrival, ts as f64, "emission seq alignment");
    }
    // Every live emission is bit-identical to from-scratch at its
    // version — the incremental path never leaks stale prior state
    // across the crash.
    for (i, &ts) in versions[resumed..].iter().enumerate() {
        assert_eq!(
            sl.engine().results::<Bfs>(i as u32).unwrap(),
            scratch(ts),
            "live emission@{ts}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
