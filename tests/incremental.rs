//! Differential suite for incremental recomputation (`core::incr`).
//!
//! The core property: for every monotone program and every snapshot
//! version of a random delta stream, a job **resumed** from the
//! previous version's converged result is bit-identical to a job run
//! **from scratch** against the same view — across {shards ×
//! io_workers × placement × capacity} store/executor configurations.
//! Addition-only ranges must take the seeded path; any removal in the
//! range must take the from-scratch fallback (and still match).
//!
//! CI runs this binary under `timeout 60` on the default parallel
//! harness and under `--test-threads=1`.

use std::sync::Arc;

use proptest::prelude::*;

use cgraph::algos::{Bfs, Reachability, Sssp, Sswp, Wcc};
use cgraph::core::{Arrival, Standing};
use cgraph::core::{Engine, EngineConfig, IncrementalProgram, ServeConfig, ServeLoop};
use cgraph::graph::snapshot::{GraphDelta, ShardCapacity, ShardPlacement, SnapshotStore};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{Edge, EdgeList, Partitioner};

const N: u32 = 24;
const PARTS: usize = 4;

fn config() -> EngineConfig {
    EngineConfig { workers: 2, wavefront: 2, ..EngineConfig::default() }
}

/// A small deterministic base graph: a ring with a few chords.
fn base_edges() -> EdgeList {
    let mut edges: Vec<Edge> = (0..N).map(|v| Edge::unit(v, (v + 1) % N)).collect();
    edges.push(Edge::unit(0, 12));
    edges.push(Edge::unit(5, 17));
    let mut el = EdgeList::from_edges(edges, N);
    el.sort_and_dedup();
    el
}

fn store_from(el: &EdgeList, deltas: &[GraphDelta]) -> Arc<SnapshotStore> {
    let ps = VertexCutPartitioner::new(PARTS).partition(el);
    let mut store = SnapshotStore::new(ps);
    for (i, d) in deltas.iter().enumerate() {
        store.apply((i as u64 + 1) * 10, d).expect("delta applies");
    }
    Arc::new(store)
}

/// From-scratch run of `program` bound at `ts` on a fresh engine.
fn scratch<P: IncrementalProgram + Clone>(
    store: &Arc<SnapshotStore>,
    program: P,
    ts: u64,
) -> Vec<P::Value> {
    let mut e = Engine::new(Arc::clone(store), config());
    let id = e.submit_at(program, ts);
    assert!(e.run().completed, "scratch run drains");
    e.results::<P>(id).expect("scratch results")
}

/// Resumed run on a fresh engine; returns the results and whether the
/// seeded path was taken.
fn resumed<P: IncrementalProgram + Clone>(
    store: &Arc<SnapshotStore>,
    program: P,
    ts: u64,
    prior_ts: u64,
    prior: &[P::Value],
) -> (Vec<P::Value>, bool) {
    let mut e = Engine::new(Arc::clone(store), config());
    let rs = e.submit_resumed_at(program, ts, prior_ts, prior);
    assert!(e.run().completed, "resumed run drains");
    (e.results::<P>(rs.job).expect("resumed results"), rs.seeded)
}

/// Chains a program across every version: scratch at each ts must equal
/// resume-from-previous at each ts.  Returns how many submissions took
/// the seeded path.
fn chain_and_check<P: IncrementalProgram + Clone>(
    store: &Arc<SnapshotStore>,
    program: P,
    versions: &[u64],
) -> usize {
    let mut seeded_count = 0;
    let mut prior: Option<(u64, Vec<P::Value>)> = None;
    for &ts in versions {
        let want = scratch(store, program.clone(), ts);
        if let Some((prior_ts, values)) = &prior {
            let (got, seeded) = resumed(store, program.clone(), ts, *prior_ts, values);
            assert_eq!(got, want, "{} resumed@{ts} != scratch", program.name());
            seeded_count += usize::from(seeded);
        }
        prior = Some((ts, want));
    }
    seeded_count
}

// ---- deterministic coverage ----

#[test]
fn addition_only_stream_resumes_seeded_and_bit_identical() {
    let el = base_edges();
    let deltas = vec![
        GraphDelta::adding([Edge::unit(2, 20)]),
        GraphDelta::adding([Edge::unit(20, 3), Edge::unit(7, 15)]),
        GraphDelta::adding([Edge::unit(15, 0)]),
    ];
    let store = store_from(&el, &deltas);
    let versions = [0u64, 10, 20, 30];
    // Every resume over an addition-only range must take the seeded path.
    assert_eq!(chain_and_check(&store, Bfs::new(0), &versions), 3);
    assert_eq!(chain_and_check(&store, Sssp::new(0), &versions), 3);
    assert_eq!(chain_and_check(&store, Sswp::new(0), &versions), 3);
    assert_eq!(chain_and_check(&store, Wcc, &versions), 3);
    assert_eq!(chain_and_check(&store, Reachability::new(0), &versions), 3);
}

#[test]
fn removal_in_range_falls_back_to_scratch_and_still_matches() {
    let el = base_edges();
    let deltas = vec![
        GraphDelta::adding([Edge::unit(2, 20)]),
        GraphDelta { additions: vec![Edge::unit(9, 1)], removals: vec![(0, 1)] },
        GraphDelta::adding([Edge::unit(20, 3)]),
    ];
    let store = store_from(&el, &deltas);

    // Range (10, 20) carries the removal: fallback, results still match.
    let prior = scratch(&store, Bfs::new(0), 10);
    let want = scratch(&store, Bfs::new(0), 20);
    let (got, seeded) = resumed(&store, Bfs::new(0), 20, 10, &prior);
    assert!(!seeded, "a removal in the range must force the fallback");
    assert_eq!(got, want);

    // Range (20, 30) is addition-only again: seeded, and still exact.
    let prior = scratch(&store, Bfs::new(0), 20);
    let want = scratch(&store, Bfs::new(0), 30);
    let (got, seeded) = resumed(&store, Bfs::new(0), 30, 20, &prior);
    assert!(seeded, "an addition-only range resumes seeded");
    assert_eq!(got, want);
}

#[test]
fn backwards_and_mismatched_priors_fall_back() {
    let el = base_edges();
    let deltas = vec![GraphDelta::adding([Edge::unit(2, 20)])];
    let store = store_from(&el, &deltas);

    // Prior bound *after* the target: fallback.
    let prior = scratch(&store, Bfs::new(0), 10);
    let (got, seeded) = resumed(&store, Bfs::new(0), 0, 10, &prior);
    assert!(!seeded, "a backwards range must force the fallback");
    assert_eq!(got, scratch(&store, Bfs::new(0), 0));

    // Prior of the wrong length: fallback, never a panic.
    let (got, seeded) = resumed(&store, Bfs::new(0), 10, 0, &prior[..3]);
    assert!(!seeded, "a mismatched prior must force the fallback");
    assert_eq!(got, scratch(&store, Bfs::new(0), 10));
}

#[test]
fn equal_binds_resume_to_an_instantly_converged_job() {
    let el = base_edges();
    let deltas = vec![GraphDelta::adding([Edge::unit(2, 20)])];
    let store = store_from(&el, &deltas);
    let prior = scratch(&store, Bfs::new(0), 10);
    // Same bind on both sides: the delta range is empty, the frontier is
    // empty, and the seeded job must converge without any rounds.
    let mut e = Engine::new(Arc::clone(&store), config());
    let rs = e.submit_resumed_at(Bfs::new(0), 10, 10, &prior);
    assert!(rs.seeded, "an empty range is trivially monotone-safe");
    assert!(e.job_done(rs.job), "empty frontier converges at submit");
    assert_eq!(e.results::<Bfs>(rs.job).unwrap(), prior);
}

#[test]
fn resumed_small_delta_does_less_work_than_scratch() {
    // A long path plus one appended edge: the resumed run only touches
    // the new edge's neighborhood while scratch re-propagates from the
    // source across the whole path.
    let m = 512u32;
    let edges: Vec<Edge> = (0..m - 1).map(|v| Edge::unit(v, v + 1)).collect();
    let el = EdgeList::from_edges(edges, m);
    let ps = VertexCutPartitioner::new(8).partition(&el);
    let mut store = SnapshotStore::new(ps);
    store
        .apply(10, &GraphDelta::adding([Edge::unit(m - 2, 0)]))
        .unwrap();
    let store = Arc::new(store);

    let prior = scratch(&store, Bfs::new(0), 0);

    let mut fresh = Engine::new(Arc::clone(&store), config());
    let scratch_job = fresh.submit_at(Bfs::new(0), 10);
    let scratch_report = fresh.run();
    assert!(scratch_report.completed);

    let mut warm = Engine::new(Arc::clone(&store), config());
    let rs = warm.submit_resumed_at(Bfs::new(0), 10, 0, &prior);
    assert!(rs.seeded);
    let resumed_report = warm.run();
    assert!(resumed_report.completed);

    assert!(
        resumed_report.loads * 4 <= scratch_report.loads.max(1),
        "resume must shortcut propagation: {} vs {} loads",
        resumed_report.loads,
        scratch_report.loads
    );
    assert_eq!(
        warm.results::<Bfs>(rs.job).unwrap(),
        fresh.results::<Bfs>(scratch_job).unwrap(),
    );
}

// ---- randomized differential across store/executor configs ----

/// One generated mutation round: edges to add, indices picking removals.
type Round = (Vec<(u32, u32)>, Vec<usize>);

fn arb_edges() -> impl Strategy<Value = EdgeList> {
    proptest::collection::vec((0u32..N, 0u32..N), 1..60).prop_map(|pairs| {
        let edges: Vec<Edge> = pairs
            .into_iter()
            .filter(|(s, d)| s != d)
            .map(|(s, d)| Edge::unit(s, d))
            .collect();
        let mut el = EdgeList::from_edges(edges, N);
        el.sort_and_dedup();
        el
    })
}

fn arb_rounds() -> impl Strategy<Value = Vec<Round>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0u32..N, 0u32..N), 0..6),
            proptest::collection::vec(0usize..64, 0..3),
        ),
        1..5,
    )
}

/// Resolves `(adds, picks)` rounds against a live multiset so removals
/// always name live edges; returns the delta stream.
fn resolve_stream(el: &EdgeList, rounds: &[Round]) -> Vec<GraphDelta> {
    let mut live: Vec<(u32, u32)> = el.edges().iter().map(|e| (e.src, e.dst)).collect();
    let mut deltas = Vec::new();
    for (adds, picks) in rounds {
        let additions: Vec<Edge> = adds
            .iter()
            .filter(|(s, d)| s != d)
            .map(|&(s, d)| Edge::unit(s, d))
            .collect();
        let mut removals = Vec::new();
        for &pick in picks {
            if live.is_empty() {
                break;
            }
            removals.push(live.remove(pick % live.len()));
        }
        live.extend(additions.iter().map(|e| (e.src, e.dst)));
        deltas.push(GraphDelta { additions, removals });
    }
    deltas
}

/// Builds the store under one {shards, placement, capacity} layout and
/// runs the chained differential for every program under one
/// {io_workers, channel_capacity} executor shape.
fn differential_layout(
    el: &EdgeList,
    deltas: &[GraphDelta],
    shards: usize,
    placement: ShardPlacement,
    cap: ShardCapacity,
    io_workers: usize,
    channel_capacity: usize,
) {
    use cgraph::graph::snapshot::ShardedSnapshotStore;
    let ps = VertexCutPartitioner::new(PARTS).partition(el);
    let mut store = ShardedSnapshotStore::with_placement(ps, shards, placement).with_capacity(cap);
    for (i, d) in deltas.iter().enumerate() {
        store.apply((i as u64 + 1) * 10, d).expect("delta applies");
    }
    let store = Arc::new(store);
    let versions: Vec<u64> = (0..=deltas.len() as u64).map(|i| i * 10).collect();
    let cfg = EngineConfig { workers: 2, io_workers, channel_capacity, ..EngineConfig::default() };

    macro_rules! chain {
        ($program:expr, $ty:ty) => {{
            let mut prior: Option<(u64, Vec<<$ty as cgraph::core::VertexProgram>::Value>)> = None;
            for &ts in &versions {
                let mut e = Engine::new(Arc::clone(&store), cfg.clone());
                let id = e.submit_at($program, ts);
                assert!(e.run().completed);
                let want = e.results::<$ty>(id).unwrap();
                if let Some((prior_ts, values)) = &prior {
                    let mut e = Engine::new(Arc::clone(&store), cfg.clone());
                    let rs = e.submit_resumed_at($program, ts, *prior_ts, values);
                    assert!(e.run().completed);
                    let got = e.results::<$ty>(rs.job).unwrap();
                    assert_eq!(
                        got,
                        want,
                        "{} resumed@{ts} diverged (shards {shards}, io {io_workers})",
                        stringify!($ty)
                    );
                }
                prior = Some((ts, want));
            }
        }};
    }
    chain!(Bfs::new(0), Bfs);
    chain!(Sssp::new(1), Sssp);
    chain!(Sswp::new(0), Sswp);
    chain!(Wcc, Wcc);
    chain!(Reachability::new(1), Reachability);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole differential: incremental == from-scratch
    /// bit-for-bit on random delta streams (including removals, which
    /// exercise the fallback), across store and executor shapes.
    #[test]
    fn incremental_matches_scratch_across_configs(
        el in arb_edges(),
        rounds in arb_rounds(),
        layout in 0usize..3,
    ) {
        let deltas = resolve_stream(&el, &rounds);
        let (shards, placement, cap, io_workers, channel_capacity) = match layout {
            0 => (1, ShardPlacement::RoundRobin, ShardCapacity::UNLIMITED, 1, 2),
            1 => (2, ShardPlacement::Hash, ShardCapacity::UNLIMITED, 2, 1),
            _ => (3, ShardPlacement::RoundRobin, ShardCapacity::bytes(1), 2, 4),
        };
        differential_layout(&el, &deltas, shards, placement, cap, io_workers, channel_capacity);
    }
}

// ---- standing jobs through the serve loop ----

/// A standing BFS re-emits once per store version; every emission's
/// result must equal the from-scratch run at that version's timestamp.
#[test]
fn standing_job_emits_scratch_identical_results_per_version() {
    let el = base_edges();
    let deltas = vec![
        GraphDelta::adding([Edge::unit(2, 20)]),
        GraphDelta::adding([Edge::unit(20, 3)]),
        GraphDelta::adding([Edge::unit(7, 15)]),
    ];
    let store = store_from(&el, &deltas);

    let mut sl = ServeLoop::new(
        Engine::new(Arc::clone(&store), config()),
        ServeConfig { time_scale: 1e4, ..ServeConfig::default() },
    );
    sl.add_standing(Standing::new("standing-bfs", Bfs::new(0)).boxed());
    let report = sl.serve();
    assert!(report.completed, "standing serve drains");

    // One emission per version: the base view plus every applied delta.
    let engine = sl.engine();
    assert_eq!(
        engine.num_jobs(),
        deltas.len() + 1,
        "one emission per version"
    );
    let runner = sl.standing(0);
    assert_eq!(runner.emitted(), deltas.len() as u64 + 1);
    assert_eq!(
        runner.seeded(),
        deltas.len() as u64,
        "every post-base emission of an addition-only stream resumes seeded"
    );
    for (i, &ts) in [0u64, 10, 20, 30].iter().enumerate() {
        let got = engine.results::<Bfs>(i as u32).unwrap();
        assert_eq!(got, scratch(&store, Bfs::new(0), ts), "emission@{ts}");
    }

    // Report rows carry the standing name.
    assert_eq!(
        report
            .jobs
            .iter()
            .filter(|j| j.name == "standing-bfs")
            .count(),
        deltas.len() + 1
    );
}

/// Standing emissions interleave with ordinary offered arrivals without
/// disturbing either: the arrival computes the same result it computes
/// alone, and the standing job still emits once per version.
#[test]
fn standing_jobs_coexist_with_offered_arrivals() {
    let el = base_edges();
    let deltas = vec![GraphDelta::adding([Edge::unit(2, 20)])];
    let store = store_from(&el, &deltas);

    let mut sl = ServeLoop::new(
        Engine::new(Arc::clone(&store), config()),
        ServeConfig { admission_window: 2.0, time_scale: 1e4, ..ServeConfig::default() },
    );
    sl.add_standing(Standing::new("standing-wcc", Wcc).boxed());
    sl.offer(Arrival::new(5.0, "bfs", |e: &mut Engine, ts| {
        e.submit_at(Bfs::new(0), ts)
    }));
    let report = sl.serve();
    assert!(report.completed);
    assert_eq!(sl.standing(0).emitted(), 2, "base + one delta version");

    let engine = sl.engine();
    let bfs_job = (0..engine.num_jobs() as u32)
        .find(|&j| engine.results::<Bfs>(j).is_some())
        .expect("offered BFS ran");
    assert_eq!(
        engine.results::<Bfs>(bfs_job).unwrap(),
        scratch(&store, Bfs::new(0), 5)
    );
    let wcc_last = (0..engine.num_jobs() as u32)
        .rfind(|&j| engine.results::<Wcc>(j).is_some())
        .unwrap();
    assert_eq!(
        engine.results::<Wcc>(wcc_last).unwrap(),
        scratch(&store, Wcc, 10)
    );
}
