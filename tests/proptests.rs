//! Property-based tests over the substrate and the engine.

use proptest::prelude::*;

use cgraph::algos::{reference, Bfs, Wcc};
use cgraph::core::{Engine, EngineConfig};
use cgraph::graph::snapshot::{
    CompactionPolicy, FootprintProfile, GraphDelta, ShardCapacity, ShardPlacement,
    ShardedSnapshotStore, SnapshotStore,
};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{Csr, Edge, EdgeList, Partitioner};
use cgraph::memsim::{CacheObject, LruCache};

/// Arbitrary small edge lists over up to 24 vertices.
fn arb_edges() -> impl Strategy<Value = EdgeList> {
    proptest::collection::vec((0u32..24, 0u32..24), 1..120).prop_map(|pairs| {
        let edges: Vec<Edge> = pairs
            .into_iter()
            .filter(|(s, d)| s != d)
            .map(|(s, d)| Edge::unit(s, d))
            .collect();
        let mut el = EdgeList::from_edges(edges, 24);
        el.sort_and_dedup();
        el
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partitioning never loses or duplicates edges, masters are unique,
    /// and every replica knows its master.
    #[test]
    fn partition_invariants(el in arb_edges(), parts in 1usize..6) {
        let ps = VertexCutPartitioner::new(parts).partition(&el);
        prop_assert_eq!(ps.num_edges(), el.len() as u64);
        let total: usize = ps.partitions().iter().map(|p| p.num_edges()).sum();
        prop_assert_eq!(total as u64, ps.num_edges());
        for v in 0..el.num_vertices() {
            let masters = ps
                .partitions()
                .iter()
                .filter_map(|p| p.local_of(v).map(|l| p.meta()[l as usize]))
                .filter(|m| m.is_master)
                .count();
            let replicas = ps.replicas_of(v).len();
            if replicas == 0 {
                prop_assert_eq!(masters, 0);
            } else {
                prop_assert_eq!(masters, 1);
                for &pid in ps.replicas_of(v) {
                    let p = ps.partition(pid);
                    let l = p.local_of(v).unwrap();
                    prop_assert_eq!(p.meta()[l as usize].master_partition, ps.master_of(v));
                }
            }
        }
    }

    /// The engine's BFS equals the textbook BFS on arbitrary graphs and
    /// partition counts.
    #[test]
    fn engine_bfs_matches_reference(el in arb_edges(), parts in 1usize..5, src in 0u32..24) {
        let ps = VertexCutPartitioner::new(parts).partition(&el);
        let mut engine = Engine::from_partitions(ps, EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let job = engine.submit(Bfs::new(src));
        prop_assert!(engine.run().completed);
        let got = engine.results::<Bfs>(job).unwrap();
        let expect = reference::bfs(&Csr::from_edges(&el), src);
        prop_assert_eq!(got, expect);
    }

    /// WCC equals union-find labels on arbitrary graphs.
    #[test]
    fn engine_wcc_matches_union_find(el in arb_edges(), parts in 1usize..5) {
        let ps = VertexCutPartitioner::new(parts).partition(&el);
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        let job = engine.submit(Wcc);
        prop_assert!(engine.run().completed);
        prop_assert_eq!(engine.results::<Wcc>(job).unwrap(), reference::wcc(&el));
    }

    /// The LRU tier never exceeds capacity (absent pins), never evicts the
    /// most recently used entry, and tracks bytes exactly.
    #[test]
    fn lru_invariants(ops in proptest::collection::vec((0u32..12, 1u64..40), 1..200)) {
        let mut cache = LruCache::new(100);
        for (pid, bytes) in ops {
            let obj = CacheObject::Structure { pid, version: 0 };
            cache.insert(obj, bytes);
            prop_assert!(cache.used() <= 100, "over capacity: {}", cache.used());
            if bytes <= 100 {
                prop_assert!(cache.contains(&obj), "MRU entry evicted");
            }
        }
        let before = cache.used();
        let resident: Vec<CacheObject> = (0..12)
            .map(|pid| CacheObject::Structure { pid, version: 0 })
            .filter(|o| cache.contains(o))
            .collect();
        for obj in resident {
            cache.remove(&obj);
        }
        prop_assert_eq!(cache.used(), 0, "byte accounting leaked from {}", before);
    }

    /// Applying a delta and materializing the snapshot equals editing the
    /// edge list directly (as multisets of weighted edges).
    #[test]
    fn snapshot_apply_matches_direct_edit(
        el in arb_edges(),
        adds in proptest::collection::vec((0u32..24, 0u32..24), 0..12),
    ) {
        let ps = VertexCutPartitioner::new(3).partition(&el);
        let mut store = SnapshotStore::new(ps);
        let additions: Vec<Edge> = adds
            .into_iter()
            .filter(|(s, d)| s != d)
            .map(|(s, d)| Edge::unit(s, d))
            .collect();
        store.apply(1, &GraphDelta::adding(additions.clone())).unwrap();
        let store = std::sync::Arc::new(store);
        let mut got: Vec<(u32, u32)> = store
            .latest()
            .edges_global()
            .edges()
            .iter()
            .map(|e| (e.src, e.dst))
            .collect();
        got.sort_unstable();
        let mut expect: Vec<(u32, u32)> = el
            .edges()
            .iter()
            .chain(additions.iter())
            .map(|e| (e.src, e.dst))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Degrees reported by a snapshot view equal degrees recomputed from
    /// its materialized edges.
    #[test]
    fn snapshot_degrees_consistent(
        el in arb_edges(),
        adds in proptest::collection::vec((0u32..24, 0u32..24), 1..10),
    ) {
        let ps = VertexCutPartitioner::new(3).partition(&el);
        let mut store = SnapshotStore::new(ps);
        let additions: Vec<Edge> = adds
            .into_iter()
            .filter(|(s, d)| s != d)
            .map(|(s, d)| Edge::unit(s, d))
            .collect();
        store.apply(1, &GraphDelta::adding(additions)).unwrap();
        let store = std::sync::Arc::new(store);
        let view = store.latest();
        let flat = view.edges_global();
        let out = flat.out_degrees();
        let inn = flat.in_degrees();
        for v in 0..24u32 {
            prop_assert_eq!(
                view.degree_of(v),
                (out[v as usize], inn[v as usize]),
                "vertex {}", v
            );
        }
    }

    /// Layering and checkpoint compaction are pure representation: a
    /// random delta stream observed through {compaction off, every_k in
    /// {1, 4}, post-hoc compact(), sharded chains} yields bit-identical
    /// historical views everywhere (edges, versions, masters, replicas,
    /// degrees), and every view's edges and degrees also match a naive
    /// host-side reference multiset.
    #[test]
    fn layered_compaction_is_transparent(
        el in arb_edges(),
        stream in proptest::collection::vec(
            (
                proptest::collection::vec((0u32..24, 0u32..24), 0..10),
                proptest::collection::vec(0usize..64, 0..6),
            ),
            1..5,
        ),
    ) {
        // Resolve the stream against a host-side multiset so removals
        // always name live edges — this multiset is the naive reference.
        let mut live: Vec<(u32, u32)> = el.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut deltas: Vec<GraphDelta> = Vec::new();
        let mut expected: Vec<(u64, Vec<(u32, u32)>)> = Vec::new();
        for (i, (adds, picks)) in stream.iter().enumerate() {
            let additions: Vec<Edge> = adds
                .iter()
                .filter(|(s, d)| s != d)
                .map(|&(s, d)| Edge::unit(s, d))
                .collect();
            let mut removals: Vec<(u32, u32)> = Vec::new();
            for &pick in picks {
                if live.is_empty() {
                    break;
                }
                removals.push(live.remove(pick % live.len()));
            }
            live.extend(additions.iter().map(|e| (e.src, e.dst)));
            let mut snap = live.clone();
            snap.sort_unstable();
            expected.push(((i as u64 + 1) * 10, snap));
            deltas.push(GraphDelta { additions, removals });
        }

        let build = |policy: CompactionPolicy, shards: usize, post_hoc: bool,
                     placement: ShardPlacement| {
            let ps = VertexCutPartitioner::new(4).partition(&el);
            let mut s = ShardedSnapshotStore::with_placement(ps, shards, placement)
                .with_compaction(policy);
            for (d, (ts, _)) in deltas.iter().zip(&expected) {
                s.apply(*ts, d).unwrap();
            }
            if post_hoc {
                s.compact().unwrap();
            }
            std::sync::Arc::new(s)
        };
        let mut profile = FootprintProfile::new();
        profile.record([0u32, 2]);
        profile.record([1u32, 3]);
        let rr = ShardPlacement::RoundRobin;
        let reference = build(CompactionPolicy::Off, 1, false, rr.clone());
        let variants = [
            build(CompactionPolicy::EveryK(1), 1, false, rr.clone()),
            build(CompactionPolicy::EveryK(4), 1, false, rr.clone()),
            build(CompactionPolicy::Off, 1, true, rr.clone()),
            build(CompactionPolicy::EveryK(1), 3, false, rr.clone()),
            build(CompactionPolicy::Off, 3, true, rr),
            build(CompactionPolicy::EveryK(2), 3, false, ShardPlacement::Hash),
            build(
                CompactionPolicy::EveryK(2),
                2,
                true,
                ShardPlacement::locality(&profile, 4, 2),
            ),
        ];
        let mut base_sorted: Vec<(u32, u32)> =
            el.edges().iter().map(|e| (e.src, e.dst)).collect();
        base_sorted.sort_unstable();
        let mut checks: Vec<(u64, &Vec<(u32, u32)>)> = vec![(0, &base_sorted)];
        checks.extend(expected.iter().map(|(ts, snap)| (*ts, snap)));
        for &(ts, want) in &checks {
            let a = reference.view_at(ts);
            // Naive reference: materialized edges and recomputed degrees.
            let mut got: Vec<(u32, u32)> =
                a.edges_global().edges().iter().map(|e| (e.src, e.dst)).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, want, "ts {}", ts);
            for v in 0..24u32 {
                let out = want.iter().filter(|&&(s, _)| s == v).count() as u32;
                let inn = want.iter().filter(|&&(_, d)| d == v).count() as u32;
                prop_assert_eq!(a.degree_of(v), (out, inn), "ts {} v {}", ts, v);
            }
            // Cross-layout identity: every compaction/sharding variant
            // observes exactly what the uncompacted chain observes.
            for bs in &variants {
                let b = bs.view_at(ts);
                prop_assert_eq!(a.timestamp(), b.timestamp());
                for pid in 0..4u32 {
                    prop_assert_eq!(
                        a.version_of(pid), b.version_of(pid),
                        "ts {} pid {}", ts, pid
                    );
                    prop_assert_eq!(
                        a.partition(pid).edges_global(),
                        b.partition(pid).edges_global(),
                        "ts {} pid {}", ts, pid
                    );
                }
                for v in 0..24u32 {
                    prop_assert_eq!(a.master_of(v), b.master_of(v), "ts {} v {}", ts, v);
                    prop_assert_eq!(a.replicas_of(v), b.replicas_of(v), "ts {} v {}", ts, v);
                    prop_assert_eq!(a.degree_of(v), b.degree_of(v), "ts {} v {}", ts, v);
                }
            }
        }
    }

    /// Placement, capacity, and concurrent apply are pure mechanism: a
    /// random delta stream observed through {round-robin, hash,
    /// locality-over-random-footprints} × {unlimited, tight capacity} ×
    /// {serial, 4-worker apply} yields bit-identical historical views
    /// everywhere (edges, versions, masters, replicas, degrees), and
    /// spill signals only ever fire on capacity-limited stores.
    #[test]
    fn placement_is_transparent(
        el in arb_edges(),
        stream in proptest::collection::vec(
            (
                proptest::collection::vec((0u32..24, 0u32..24), 0..10),
                proptest::collection::vec(0usize..64, 0..6),
            ),
            1..5,
        ),
        footprints in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 1..4),
            0..6,
        ),
    ) {
        // Resolve the stream against a host-side multiset so removals
        // always name live edges.
        let mut live: Vec<(u32, u32)> = el.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut deltas: Vec<(u64, GraphDelta)> = Vec::new();
        for (i, (adds, picks)) in stream.iter().enumerate() {
            let additions: Vec<Edge> = adds
                .iter()
                .filter(|(s, d)| s != d)
                .map(|&(s, d)| Edge::unit(s, d))
                .collect();
            let mut removals: Vec<(u32, u32)> = Vec::new();
            for &pick in picks {
                if live.is_empty() {
                    break;
                }
                removals.push(live.remove(pick % live.len()));
            }
            live.extend(additions.iter().map(|e| (e.src, e.dst)));
            deltas.push(((i as u64 + 1) * 10, GraphDelta { additions, removals }));
        }

        let mut profile = FootprintProfile::new();
        for fp in &footprints {
            profile.record(fp.iter().copied());
        }
        let build = |placement: ShardPlacement, cap: ShardCapacity, workers: usize| {
            let ps = VertexCutPartitioner::new(4).partition(&el);
            let mut s = ShardedSnapshotStore::with_placement(ps, 2, placement)
                .with_compaction(CompactionPolicy::EveryK(2))
                .with_capacity(cap)
                .with_apply_workers(workers)
                // Tiny proptest deltas: lift the work-size clamp so
                // multi-worker variants really run concurrently.
                .with_apply_threshold(0);
            for (ts, d) in &deltas {
                s.apply(*ts, d).unwrap();
            }
            std::sync::Arc::new(s)
        };
        let unlimited = ShardCapacity::UNLIMITED;
        let tight = ShardCapacity::bytes(512);
        let locality = ShardPlacement::locality(&profile, 4, 2);
        let reference = build(ShardPlacement::RoundRobin, unlimited, 1);
        let variants = [
            build(ShardPlacement::RoundRobin, tight, 1),
            build(ShardPlacement::Hash, unlimited, 1),
            build(ShardPlacement::Hash, tight, 4),
            build(locality.clone(), unlimited, 4),
            build(locality, tight, 1),
        ];
        let timestamps: Vec<u64> = std::iter::once(0)
            .chain(deltas.iter().map(|(ts, _)| *ts))
            .chain(std::iter::once(999))
            .collect();
        prop_assert!(!reference.has_spills(), "unlimited capacity never spills");
        for &ts in &timestamps {
            let a = reference.view_at(ts);
            for (vi, bs) in variants.iter().enumerate() {
                let b = bs.view_at(ts);
                prop_assert_eq!(a.timestamp(), b.timestamp());
                for pid in 0..4u32 {
                    prop_assert_eq!(
                        a.version_of(pid), b.version_of(pid),
                        "variant {} ts {} pid {}", vi, ts, pid
                    );
                    prop_assert_eq!(
                        a.partition(pid).edges_global(),
                        b.partition(pid).edges_global(),
                        "variant {} ts {} pid {}", vi, ts, pid
                    );
                    prop_assert!(
                        !a.partition_spilled(pid),
                        "unlimited reference must never report spills"
                    );
                    if !bs.capacity().is_limited() {
                        prop_assert!(!b.partition_spilled(pid));
                    }
                }
                for v in 0..24u32 {
                    prop_assert_eq!(a.master_of(v), b.master_of(v), "ts {} v {}", ts, v);
                    prop_assert_eq!(a.replicas_of(v), b.replicas_of(v), "ts {} v {}", ts, v);
                    prop_assert_eq!(a.degree_of(v), b.degree_of(v), "ts {} v {}", ts, v);
                }
            }
        }
    }
}
