//! Determinism of the whole pipeline and the metric orderings the paper's
//! figures rely on (sharing, interference, utilization, spared accesses).

use cgraph::algos::{Bfs, PageRank, Sssp, Wcc};
use cgraph::baselines::BaselinePreset;
use cgraph::core::{Engine, EngineConfig, JobEngine, SchedulerKind};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Partitioner, PartitionSet};
use cgraph::memsim::{HierarchyConfig, Metrics};

fn partitions() -> PartitionSet {
    let el = generate::rmat(10, 6, generate::RmatParams::default(), 5150);
    VertexCutPartitioner::new(16).partition(&el)
}

fn tight(ps: &PartitionSet, frac: u64) -> HierarchyConfig {
    let total: u64 = ps.partitions().iter().map(|p| p.structure_bytes()).sum();
    HierarchyConfig { cache_bytes: (total / frac).max(1), memory_bytes: total * 4 }
}

fn mix_metrics<E: JobEngine>(engine: &mut E) -> Metrics {
    engine.submit_program(PageRank::default());
    engine.submit_program(Sssp::new(0));
    engine.submit_program(Wcc);
    engine.submit_program(Bfs::new(0));
    let before = engine.global_metrics();
    engine.run_jobs();
    engine.global_metrics().since(&before)
}

#[test]
fn identical_runs_produce_identical_metrics() {
    let ps = partitions();
    let run = || {
        let mut e = Engine::from_partitions(
            ps.clone(),
            EngineConfig { hierarchy: tight(&ps, 6), ..EngineConfig::default() },
        );
        mix_metrics(&mut e)
    };
    assert_eq!(run(), run(), "simulation must be fully deterministic");
}

#[test]
fn cgraph_moves_fewer_structure_bytes_than_seraph() {
    let ps = partitions();
    let h = tight(&ps, 6);
    let mut cg = Engine::from_partitions(
        ps.clone(),
        EngineConfig { hierarchy: h, ..EngineConfig::default() },
    );
    let m_cg = mix_metrics(&mut cg);
    let mut seraph = BaselinePreset::Seraph.build_static(ps.clone(), 4, h);
    let m_se = mix_metrics(&mut seraph);
    assert!(
        m_cg.bytes_mem_to_cache < m_se.bytes_mem_to_cache,
        "CGraph {} vs Seraph {}",
        m_cg.bytes_mem_to_cache,
        m_se.bytes_mem_to_cache
    );
}

#[test]
fn cgraph_miss_rate_below_per_job_engines() {
    let ps = partitions();
    let h = tight(&ps, 8);
    let mut cg = Engine::from_partitions(
        ps.clone(),
        EngineConfig { hierarchy: h, ..EngineConfig::default() },
    );
    let m_cg = mix_metrics(&mut cg);
    let mut nx = BaselinePreset::Nxgraph.build_static(ps.clone(), 4, h);
    let m_nx = mix_metrics(&mut nx);
    assert!(
        m_cg.cache_miss_rate() < m_nx.cache_miss_rate(),
        "CGraph {:.3} vs Nxgraph {:.3}",
        m_cg.cache_miss_rate(),
        m_nx.cache_miss_rate()
    );
}

#[test]
fn per_job_copies_cost_more_io_than_shared_memory() {
    let ps = partitions();
    // Memory big enough for ~one copy of the graph but not four.
    let total: u64 = ps.partitions().iter().map(|p| p.structure_bytes()).sum();
    let h = HierarchyConfig { cache_bytes: total / 8, memory_bytes: total * 2 };
    let mut clip = BaselinePreset::Clip.build_static(ps.clone(), 4, h);
    let m_clip = mix_metrics(&mut clip);
    let mut seraph = BaselinePreset::Seraph.build_static(ps.clone(), 4, h);
    let m_se = mix_metrics(&mut seraph);
    assert!(
        m_clip.bytes_disk_to_mem > m_se.bytes_disk_to_mem,
        "CLIP {} vs Seraph {}",
        m_clip.bytes_disk_to_mem,
        m_se.bytes_disk_to_mem
    );
}

#[test]
fn utilization_higher_for_cgraph() {
    let ps = partitions();
    let h = tight(&ps, 6);
    let mut cg = Engine::from_partitions(
        ps.clone(),
        EngineConfig { hierarchy: h, ..EngineConfig::default() },
    );
    mix_metrics(&mut cg);
    let mut seraph = BaselinePreset::Seraph.build_static(ps.clone(), 4, h);
    mix_metrics(&mut seraph);
    assert!(
        cg.utilization() > seraph.utilization(),
        "CGraph {:.3} vs Seraph {:.3}",
        cg.utilization(),
        seraph.utilization()
    );
}

#[test]
fn priority_scheduler_not_worse_than_fixed_order() {
    let ps = partitions();
    let h = tight(&ps, 8);
    let run = |kind| {
        let mut e = Engine::from_partitions(
            ps.clone(),
            EngineConfig { scheduler: kind, hierarchy: h, ..EngineConfig::default() },
        );
        let m = mix_metrics(&mut e);
        e.cost_model().total_seconds(&m, 4)
    };
    let pri = run(SchedulerKind::Priority { theta: 0.5 });
    let fixed = run(SchedulerKind::FixedOrder);
    assert!(
        pri <= fixed * 1.05,
        "priority {pri:.6}s should not lose to fixed order {fixed:.6}s"
    );
}

#[test]
fn spared_accesses_grow_with_job_count() {
    // Fig. 19's trend: more concurrent jobs amortize more accesses
    // relative to running them sequentially.
    let ps = partitions();
    let h = tight(&ps, 6);
    let spared = |rotations: u32| {
        let mut seq = BaselinePreset::Sequential.build_static(ps.clone(), 4, h);
        let mut cg = Engine::from_partitions(
            ps.clone(),
            EngineConfig { hierarchy: h, ..EngineConfig::default() },
        );
        for r in 0..rotations {
            seq.submit_program(Bfs::new(r));
            seq.submit_program(Sssp::new(r));
            cg.submit_program(Bfs::new(r));
            cg.submit_program(Sssp::new(r));
        }
        let ms = {
            let b = seq.global_metrics();
            seq.run_jobs();
            seq.global_metrics().since(&b)
        };
        let mc = {
            let b = cg.global_metrics();
            cg.run_jobs();
            cg.global_metrics().since(&b)
        };
        let seq_bytes = (ms.bytes_mem_to_cache + ms.bytes_disk_to_mem) as f64;
        let cg_bytes = (mc.bytes_mem_to_cache + mc.bytes_disk_to_mem) as f64;
        1.0 - cg_bytes / seq_bytes
    };
    let few = spared(1);
    let many = spared(4);
    assert!(
        many > few,
        "8 jobs must spare more than 2 jobs: {many:.3} vs {few:.3}"
    );
    assert!(many > 0.0, "sharing must spare something: {many:.3}");
}

#[test]
fn core_subgraph_partitioning_is_result_neutral() {
    // Design decision D3: packing the core subgraph changes *where* edges
    // live, never what any job computes.
    use cgraph::graph::core_subgraph::{CoreSubgraphPartitioner, CoreThreshold};
    let el = generate::rmat(9, 6, generate::RmatParams::default(), 404);
    let run = |ps: PartitionSet| {
        let mut e = Engine::from_partitions(ps, EngineConfig::default());
        let b = e.submit(Bfs::new(0));
        let w = e.submit(Wcc);
        assert!(e.run().completed);
        (e.results::<Bfs>(b).unwrap(), e.results::<Wcc>(w).unwrap())
    };
    let plain = run(VertexCutPartitioner::new(16).partition(&el));
    let core = run(
        CoreSubgraphPartitioner::new(16, CoreThreshold::TopFraction(0.05)).partition(&el),
    );
    assert_eq!(plain, core);
}

#[test]
fn core_subgraph_concentrates_hot_degree_partitions() {
    // The packed core partitions should show a higher average degree than
    // any plain equal-edge partition — the property the scheduler's D(P)
    // term exploits.
    use cgraph::graph::core_subgraph::{CoreSubgraphPartitioner, CoreThreshold};
    let el = generate::rmat(10, 8, generate::RmatParams::default(), 405);
    let plain = VertexCutPartitioner::new(16).partition(&el);
    let core =
        CoreSubgraphPartitioner::new(16, CoreThreshold::TopFraction(0.02)).partition(&el);
    let max_deg = |ps: &PartitionSet| {
        ps.partitions()
            .iter()
            .map(|p| p.avg_degree())
            .fold(0.0f64, f64::max)
    };
    assert!(
        max_deg(&core) > max_deg(&plain),
        "core packing should concentrate degree: {} vs {}",
        max_deg(&core),
        max_deg(&plain)
    );
}

#[test]
fn straggler_split_ablation_is_result_neutral() {
    let ps = partitions();
    let run = |split| {
        let mut e = Engine::from_partitions(
            ps.clone(),
            EngineConfig { straggler_split: split, ..EngineConfig::default() },
        );
        let j = e.submit(Bfs::new(0));
        e.run();
        e.results::<Bfs>(j).unwrap()
    };
    assert_eq!(run(true), run(false));
}
