//! Evolving-graph correctness: jobs bound to different snapshots compute
//! results for *their* graph, unchanged partitions stay shared, and the
//! Seraph / Seraph-VT / CGraph disk-traffic ordering of Fig. 16 holds.

use std::sync::Arc;

use cgraph::algos::{reference, Bfs, Wcc};
use cgraph::baselines::BaselinePreset;
use cgraph::core::{Engine, EngineConfig};
use cgraph::graph::snapshot::{GraphDelta, SnapshotStore};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Csr, Edge, Partitioner};
use cgraph::memsim::HierarchyConfig;

fn evolving_store(seed: u64) -> Arc<SnapshotStore> {
    evolving_store_with(seed, false)
}

/// `clustered` confines addition sources to vertices 0..3, so most
/// partitions keep their version across the delta whatever graph the
/// seeded generator produced — the sharing regime the Seraph-VT
/// comparison needs.  The default scattered delta re-versions partitions
/// across the whole graph.
fn evolving_store_with(seed: u64, clustered: bool) -> Arc<SnapshotStore> {
    let el = generate::rmat(9, 4, generate::RmatParams::default(), seed);
    let n = el.num_vertices();
    let ps = VertexCutPartitioner::new(12).partition(&el);
    let mut store = SnapshotStore::new(ps);
    let adds: Vec<Edge> = (0..30)
        .map(|i| {
            let src = if clustered { i % 3 } else { i * 11 % n };
            Edge::weighted(src, (i * 17 + 3) % n, 1.0)
        })
        .collect();
    store.apply(10, &GraphDelta::adding(adds)).unwrap();
    let removals: Vec<(u32, u32)> = store
        .base()
        .partition(0)
        .edges_global()
        .iter()
        .take(4)
        .map(|e| (e.src, e.dst))
        .collect();
    store.apply(20, &GraphDelta::removing(removals)).unwrap();
    Arc::new(store)
}

#[test]
fn jobs_bound_to_their_snapshot_match_reference() {
    let store = evolving_store(7);
    let mut engine = Engine::new(Arc::clone(&store), EngineConfig::default());
    let j_base = engine.submit_at(Bfs::new(0), 0);
    let j_mid = engine.submit_at(Bfs::new(0), 10);
    let j_new = engine.submit_at(Bfs::new(0), 25);
    let w_mid = engine.submit_at(Wcc, 15);
    assert!(engine.run().completed);

    for (job, ts) in [(j_base, 0), (j_mid, 10), (j_new, 25)] {
        let edges = store.view_at(ts).edges_global();
        let expect = reference::bfs(&Csr::from_edges(&edges), 0);
        assert_eq!(
            engine.results::<Bfs>(job).unwrap(),
            expect,
            "BFS against snapshot @{ts}"
        );
    }
    let edges_mid = store.view_at(15).edges_global();
    assert_eq!(
        engine.results::<Wcc>(w_mid).unwrap(),
        reference::wcc(&edges_mid),
        "WCC against snapshot @10"
    );
}

#[test]
fn small_deltas_keep_most_partitions_shared() {
    // A clustered delta (few source vertices) touches few partitions:
    // additions land in the master partitions of their sources.
    let el = generate::rmat(9, 4, generate::RmatParams::default(), 8);
    let n = el.num_vertices();
    let ps = VertexCutPartitioner::new(12).partition(&el);
    let mut store = SnapshotStore::new(ps);
    let adds: Vec<Edge> = (0..10)
        .map(|i| Edge::unit(i % 3, (i * 37 + 5) % n))
        .collect();
    store.apply(10, &GraphDelta::adding(adds)).unwrap();
    let store = Arc::new(store);
    let shared = store.base_view().shared_fraction(&store.latest());
    assert!(
        shared >= 0.5,
        "a clustered delta should leave most partitions shared, got {shared}"
    );
    assert!(shared < 1.0, "deltas must re-version something");
}

#[test]
fn scattered_deltas_reduce_sharing_more_than_clustered() {
    let el = generate::rmat(9, 4, generate::RmatParams::default(), 8);
    let n = el.num_vertices();
    let shared_after = |adds: Vec<Edge>| {
        let ps = VertexCutPartitioner::new(12).partition(&el);
        let mut store = SnapshotStore::new(ps);
        store.apply(10, &GraphDelta::adding(adds)).unwrap();
        let store = Arc::new(store);
        store.base_view().shared_fraction(&store.latest())
    };
    let clustered = shared_after(
        (0..24)
            .map(|i| Edge::unit(i % 2, (i * 37 + 5) % n))
            .collect(),
    );
    let scattered = shared_after(
        (0..24)
            .map(|i| Edge::unit(i * 97 % n, (i * 37 + 5) % n))
            .collect(),
    );
    assert!(
        clustered > scattered,
        "clustered {clustered} should share more than scattered {scattered}"
    );
}

#[test]
fn concurrent_jobs_on_different_snapshots_share_cache() {
    // Two jobs on adjacent snapshots vs two jobs on wildly different data:
    // the former must move fewer structure bytes.
    let store = evolving_store(9);
    let total_structure: u64 = (0..store.base().num_partitions() as u32)
        .map(|p| store.base().partition(p).structure_bytes())
        .sum();
    let h = HierarchyConfig { cache_bytes: total_structure / 6, memory_bytes: total_structure * 4 };

    let mut shared_engine = Engine::new(
        Arc::clone(&store),
        EngineConfig { hierarchy: h, ..EngineConfig::default() },
    );
    shared_engine.submit_at(Bfs::new(0), 10);
    shared_engine.submit_at(Bfs::new(0), 25);
    let r_shared = shared_engine.run();

    // Same two jobs through plain Seraph (full per-snapshot copies).
    let mut seraph = BaselinePreset::Seraph.build(Arc::clone(&store), 4, h);
    seraph.submit_at(Bfs::new(0), 10);
    seraph.submit_at(Bfs::new(0), 25);
    let r_seraph = seraph.run();

    assert!(
        r_shared.metrics.bytes_mem_to_cache < r_seraph.metrics.bytes_mem_to_cache,
        "CGraph {} bytes vs Seraph {} bytes",
        r_shared.metrics.bytes_mem_to_cache,
        r_seraph.metrics.bytes_mem_to_cache
    );
}

#[test]
fn seraph_vt_beats_plain_seraph_on_snapshots() {
    // Clustered deltas leave partitions version-shared across snapshots
    // — the property VT's incremental versions exploit; a scattered
    // delta can re-version everything and degenerate VT to plain Seraph.
    let store = evolving_store_with(10, true);
    let total_structure: u64 = (0..store.base().num_partitions() as u32)
        .map(|p| store.base().partition(p).structure_bytes())
        .sum();
    // Tight memory so copy duplication costs disk I/O.
    let h = HierarchyConfig {
        cache_bytes: total_structure / 8,
        memory_bytes: total_structure + total_structure / 4,
    };
    let run = |preset: BaselinePreset| {
        let mut e = preset.build(Arc::clone(&store), 4, h);
        e.submit_at(Bfs::new(0), 0);
        e.submit_at(Bfs::new(0), 10);
        e.submit_at(Bfs::new(0), 20);
        e.run().metrics
    };
    let seraph = run(BaselinePreset::Seraph);
    let vt = run(BaselinePreset::SeraphVt);
    assert!(
        vt.bytes_disk_to_mem <= seraph.bytes_disk_to_mem,
        "VT {} vs Seraph {}",
        vt.bytes_disk_to_mem,
        seraph.bytes_disk_to_mem
    );
    assert!(
        vt.bytes_mem_to_cache < seraph.bytes_mem_to_cache,
        "VT cache volume {} vs Seraph {}",
        vt.bytes_mem_to_cache,
        seraph.bytes_mem_to_cache
    );
}

#[test]
fn bigger_deltas_reduce_sharing_and_raise_cost() {
    // The Fig. 16 trend: more change between snapshots -> less sharing ->
    // more data movement for the same job mix.
    let el = generate::rmat(9, 4, generate::RmatParams::default(), 21);
    let n = el.num_vertices();
    let run_with_changes = |count: u32| {
        let ps = VertexCutPartitioner::new(12).partition(&el);
        let mut store = SnapshotStore::new(ps);
        let adds: Vec<Edge> = (0..count)
            .map(|i| Edge::unit(i * 13 % n, (i * 29 + 1) % n))
            .collect();
        store.apply(10, &GraphDelta::adding(adds)).unwrap();
        let store = Arc::new(store);
        let total: u64 = (0..12u32)
            .map(|p| store.base().partition(p).structure_bytes())
            .sum();
        let h = HierarchyConfig { cache_bytes: total / 6, memory_bytes: total * 4 };
        let mut e = Engine::new(
            store,
            EngineConfig { hierarchy: h, ..EngineConfig::default() },
        );
        e.submit_at(Bfs::new(0), 0);
        e.submit_at(Bfs::new(0), 10);
        e.run().metrics.bytes_mem_to_cache
    };
    let small = run_with_changes(2);
    let large = run_with_changes(200);
    assert!(
        large > small,
        "large delta {large} should cost more than {small}"
    );
}
