//! The online serving layer: determinism, latency invariants, FIFO
//! degeneration, engines agreeing under mid-run arrivals, and the
//! pinned version-keyed-admission win over FIFO.

use std::sync::Arc;

use cgraph::algos::{trace_arrivals, Bfs, PageRank, Sssp, Wcc};
use cgraph::baselines::{FifoServe, StreamConfig, StreamEngine};
use cgraph::core::{
    Engine, EngineConfig, JobEngine, JobLatency, JobOutcome, ServeConfig, ServeLoop, ServeReport,
};
use cgraph::graph::snapshot::{GraphDelta, SnapshotStore};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Edge, Partitioner, ShardCapacity, ShardPlacement};
use cgraph::trace::{generate_trace, JobSpan, TraceConfig};

/// Virtual seconds per trace hour for the test streams.
const SPH: f64 = 0.02;

/// PageRank accumulates deltas with `+=`, so a different access order
/// legitimately reorders float additions; everything else in the mix is
/// a min/max accumulator and must agree exactly.
fn assert_ranks_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}");
    for (v, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-9 * x.abs().max(1.0),
            "{what}: v{v}: {x} vs {y}"
        );
    }
}

fn store() -> Arc<SnapshotStore> {
    let el = generate::rmat(9, 6, generate::RmatParams::default(), 77);
    Arc::new(SnapshotStore::new(
        VertexCutPartitioner::new(12).partition(&el),
    ))
}

fn trace() -> Vec<JobSpan> {
    generate_trace(&TraceConfig {
        hours: 3,
        base_rate: 2.0,
        peak_rate: 6.0,
        mean_duration: 1.0,
        seed: 0xBEEF,
    })
}

fn serve(store: &Arc<SnapshotStore>, trace: &[JobSpan], window: f64) -> (ServeReport, Engine) {
    let engine = Engine::new(Arc::clone(store), EngineConfig::default());
    let mut sl = ServeLoop::new(
        engine,
        ServeConfig { admission_window: window, time_scale: 1.0, ..ServeConfig::default() },
    );
    sl.offer_all(trace_arrivals(trace, SPH, 64));
    let report = sl.serve();
    (report, sl.into_engine())
}

/// Same trace + seed ⇒ bit-identical serve reports (latencies, loads,
/// waves — everything).
#[test]
fn serving_is_deterministic() {
    let st = store();
    let tr = trace();
    for window in [0.0, 0.02] {
        let (a, _) = serve(&st, &tr, window);
        let (b, _) = serve(&st, &tr, window);
        assert_eq!(a, b, "serve must be fully deterministic at window {window}");
    }
}

/// Every served job obeys the latency ordering: arrival ≤ admission ≤
/// completion, so waits and latencies are non-negative.
#[test]
fn latency_invariants_hold() {
    let st = store();
    let tr = trace();
    for window in [0.0, 0.01, 0.05] {
        let (report, _) = serve(&st, &tr, window);
        assert!(report.completed);
        assert_eq!(report.jobs.len(), tr.len(), "every arrival is served");
        for j in &report.jobs {
            assert!(j.wait() >= 0.0, "{}: wait {}", j.name, j.wait());
            assert!(
                j.completed >= j.admitted,
                "{}: completed {} before admission {}",
                j.name,
                j.completed,
                j.admitted
            );
            assert!(j.latency() >= 0.0);
        }
        // Waves only fire forced: every admission instant must carry at
        // least one job whose deferral had expired (the rest ride).
        let mut instants: Vec<f64> = report.jobs.iter().map(|j| j.admitted).collect();
        instants.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        instants.dedup();
        for t in instants {
            assert!(
                report
                    .jobs
                    .iter()
                    .any(|j| j.admitted == t && j.arrival + window <= t),
                "wave at {t} fired with no expired deferral (window {window})"
            );
        }
        assert!(report.makespan > 0.0);
        assert!(report.throughput() > 0.0);
        assert!(report.latency_percentile(99.0) >= report.latency_percentile(50.0));
    }
}

/// `admission_window = 0` degenerates to FIFO: a hand-rolled
/// submit-on-arrival driver over `step_round` produces the identical
/// load count and identical results.
#[test]
fn window_zero_degenerates_to_fifo() {
    let st = store();
    let tr = trace();
    let (report, served_engine) = serve(&st, &tr, 0.0);

    // Hand-rolled FIFO: admit everything due, run one round, repeat.
    let mut engine = Engine::new(Arc::clone(&st), EngineConfig::default());
    let mut arrivals = trace_arrivals::<Engine>(&tr, SPH, 64);
    arrivals.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite"));
    let mut pending = arrivals.into_iter().peekable();
    let mut clock = 0.0f64;
    loop {
        while pending.peek().is_some_and(|a| a.at <= clock) {
            let a = pending.next().expect("peeked");
            let ts = a.bind_timestamp();
            a.submit(&mut engine, ts);
        }
        let before = engine.pipeline_seconds();
        if engine.step_round() {
            clock += engine.pipeline_seconds() - before;
            continue;
        }
        match pending.peek() {
            Some(a) => clock = clock.max(a.at),
            None => break,
        }
    }
    assert_eq!(report.loads, engine.total_loads(), "FIFO load-for-load");
    for j in 0..tr.len() as u32 {
        assert_eq!(
            served_engine.job_iterations(j),
            engine.job_iterations(j),
            "job {j} iteration count"
        );
    }
}

/// Jobs arriving mid-run produce identical algorithm results at every
/// admission window and on the streaming FIFO baseline — admission
/// changes latency and sharing, never results (binding is by arrival).
#[test]
fn engines_agree_under_mid_run_arrivals() {
    let st = store();
    // A fixed four-kind burst with staggered arrivals keeps the typed
    // result extraction simple: trace order is PageRank, SSSP, WCC, BFS.
    let tr: Vec<JobSpan> = (0..8)
        .map(|i| JobSpan {
            submit_hour: i as f64 * 0.2,
            end_hour: i as f64 * 0.2 + 1.0,
            kind: cgraph::trace::JobKind::ROTATION[i % 4],
        })
        .collect();
    let (_, fifo) = serve(&st, &tr, 0.0);
    let (_, windowed) = serve(&st, &tr, 0.05);
    let mut stream = FifoServe::new(
        StreamEngine::new(Arc::clone(&st), StreamConfig::default()),
        1.0,
    );
    stream.offer_all(trace_arrivals(&tr, SPH, 64));
    stream.serve();
    let stream = stream.into_engine();

    for base in [0u32, 4] {
        let pr = fifo.results::<PageRank>(base).unwrap();
        assert_ranks_close(
            &pr,
            &windowed.results::<PageRank>(base).unwrap(),
            "windowed",
        );
        assert_ranks_close(&pr, &stream.results::<PageRank>(base).unwrap(), "stream");
        let ss = fifo.results::<Sssp>(base + 1).unwrap();
        assert_eq!(ss, windowed.results::<Sssp>(base + 1).unwrap());
        assert_eq!(ss, stream.results::<Sssp>(base + 1).unwrap());
        let wc = fifo.results::<Wcc>(base + 2).unwrap();
        assert_eq!(wc, windowed.results::<Wcc>(base + 2).unwrap());
        assert_eq!(wc, stream.results::<Wcc>(base + 2).unwrap());
        let bf = fifo.results::<Bfs>(base + 3).unwrap();
        assert_eq!(bf, windowed.results::<Bfs>(base + 3).unwrap());
        assert_eq!(bf, stream.results::<Bfs>(base + 3).unwrap());
    }
}

/// Binding is by *arrival*, not admission: on an evolving store, a job
/// arriving after a snapshot observes it even when a wide window delays
/// its execution, and a job arriving before never does.
#[test]
fn deferred_jobs_keep_their_arrival_snapshot() {
    let el = generate::cycle(32);
    let mut st = SnapshotStore::new(VertexCutPartitioner::new(8).partition(&el));
    // Snapshot at virtual-second 1 (bind key 1): shortcut edge 0→16.
    st.apply(1, &GraphDelta::adding([Edge::unit(0, 16)]))
        .unwrap();
    let st = Arc::new(st);
    // Two BFS jobs from vertex 0: one arrives before the snapshot, one
    // after; both defer in a wide window.
    let tr = [
        JobSpan { submit_hour: 0.0, end_hour: 1.0, kind: cgraph::trace::JobKind::Bfs },
        JobSpan { submit_hour: 2.0, end_hour: 3.0, kind: cgraph::trace::JobKind::Bfs },
    ];
    // 1 trace hour = 1 virtual second here so arrivals land at ts 0 and 2.
    let (report, engine) = {
        let e = Engine::new(Arc::clone(&st), EngineConfig::default());
        let mut sl = ServeLoop::new(
            e,
            ServeConfig { admission_window: 10.0, time_scale: 1.0, ..ServeConfig::default() },
        );
        sl.offer_all(trace_arrivals(&tr, 1.0, 1));
        let r = sl.serve();
        (r, sl.into_engine())
    };
    assert_eq!(report.jobs.len(), 2);
    let before = engine.results::<Bfs>(0).unwrap();
    let after = engine.results::<Bfs>(1).unwrap();
    assert_eq!(before[16], 16, "pre-snapshot job never sees the shortcut");
    assert_eq!(after[16], 1, "post-snapshot job binds the new snapshot");
}

/// The acceptance pin: on a `generate_trace` workload, version-keyed
/// admission with a nonzero window beats FIFO admission (window 0) by
/// at least 10% in spared partition loads.
#[test]
fn windowed_admission_spares_at_least_10_percent_of_loads() {
    let st = store();
    let tr = trace();
    let (fifo, _) = serve(&st, &tr, 0.0);
    let (windowed, _) = serve(&st, &tr, 0.02);
    assert_eq!(fifo.jobs.len(), windowed.jobs.len());
    let spared = windowed.spared_loads_vs(&fifo);
    assert!(
        spared >= 0.10,
        "windowed admission must spare ≥10% of FIFO's loads: {} vs {} ({:.1}%)",
        windowed.loads,
        fifo.loads,
        spared * 100.0
    );
    // The tradeoff is real: batching defers execution, so waits grow.
    assert!(windowed.mean_wait() >= fifo.mean_wait());
}

/// The engine's `max_loads` valve applies while serving too: serving
/// stops between rounds once the budget is spent, reports
/// `completed = false`, and keeps unadmitted arrivals queued.
#[test]
fn serve_honors_max_loads_valve() {
    let st = store();
    let tr = trace();
    let engine = Engine::new(
        Arc::clone(&st),
        EngineConfig { max_loads: 20, ..EngineConfig::default() },
    );
    let mut sl = ServeLoop::new(
        engine,
        ServeConfig { admission_window: 0.0, time_scale: 1.0, ..ServeConfig::default() },
    );
    sl.offer_all(trace_arrivals(&tr, SPH, 64));
    let report = sl.serve();
    assert!(!report.completed, "valve must truncate this stream");
    assert!(report.loads >= 20, "valve trips only after the budget");
    assert!(
        report.loads < 100,
        "a tripped valve must stop promptly: {} loads",
        report.loads
    );
    for j in &report.jobs {
        assert!(j.completed.is_finite(), "truncated jobs still resolve");
    }
}

/// The CGraph serving layer also spares loads against the streaming
/// FIFO baseline, which shares cache residency but never loads.
#[test]
fn serving_beats_stream_fifo_denominator() {
    let st = store();
    let tr = trace();
    let (windowed, _) = serve(&st, &tr, 0.02);
    let mut stream = FifoServe::new(
        StreamEngine::new(Arc::clone(&st), StreamConfig::default()),
        1.0,
    );
    stream.offer_all(trace_arrivals(&tr, SPH, 64));
    let baseline = stream.serve();
    assert_eq!(baseline.jobs.len(), windowed.jobs.len());
    assert!(
        windowed.spared_loads_vs(&baseline) > 0.10,
        "CGraph serving {} loads vs stream FIFO {}",
        windowed.loads,
        baseline.loads
    );
}

/// Scheduler lookahead is results-transparent and plans no worse a
/// schedule: identical algorithm outputs, load count within the greedy
/// plan's, and the default-off path untouched.
#[test]
fn lookahead_agrees_on_results() {
    let run = |lookahead: bool| {
        let st = store();
        let mut e = Engine::new(
            Arc::clone(&st),
            EngineConfig { wavefront: 4, lookahead, ..EngineConfig::default() },
        );
        let pr = e.submit_program(PageRank::default());
        let bf = e.submit_program(Bfs::new(0));
        let ss = e.submit_program(Sssp::new(3));
        let report = e.run();
        assert!(report.completed);
        (
            e.results::<PageRank>(pr).unwrap(),
            e.results::<Bfs>(bf).unwrap(),
            e.results::<Sssp>(ss).unwrap(),
            report.loads,
        )
    };
    let (pr_g, bf_g, ss_g, loads_greedy) = run(false);
    let (pr_l, bf_l, ss_l, loads_look) = run(true);
    assert_ranks_close(&pr_g, &pr_l, "lookahead PageRank");
    assert_eq!(bf_g, bf_l);
    assert_eq!(ss_g, ss_l);
    // Overlap-first planning may reorder rounds but must not blow up
    // the load count.
    assert!(
        (loads_look as f64) <= loads_greedy as f64 * 1.05,
        "lookahead {loads_look} vs greedy {loads_greedy}"
    );
    assert!(!EngineConfig::default().lookahead, "lookahead defaults off");
}

/// Shard placement is transparent to execution at *every* variant —
/// round-robin, hash, and a locality table profiled from a prior run —
/// on an evolving store with jobs bound to old and new snapshots:
/// identical results, loads, and global counters, with the engine's
/// lanes always following the store's placement.  A capacity-tight
/// store additionally serves bit-identical results while pricing its
/// spill re-fetches (so only the traffic counters may move).
#[test]
fn placement_serves_identically() {
    let el = generate::rmat(9, 6, generate::RmatParams::default(), 77);
    let ps = VertexCutPartitioner::new(12).partition(&el);
    let evolve = |st: &mut SnapshotStore| {
        for i in 1..=10u64 {
            let k = i as u32;
            // Repeatedly re-override the same few partitions (vertices
            // 0..96 span ~2 of the 12) so pre-checkpoint records hold
            // *stale* versions — the only state capacity can spill:
            // payloads a checkpoint still shares never leave residency.
            let (s, d) = (
                k.wrapping_mul(7) % 96,
                k.wrapping_mul(13).wrapping_add(1) % 96,
            );
            st.apply(
                i,
                &GraphDelta::adding([Edge::unit(s, if d == s { d + 1 } else { d })]),
            )
            .unwrap();
        }
    };
    let run = |placement: ShardPlacement, capacity: ShardCapacity| {
        let mut st = SnapshotStore::with_placement(ps.clone(), 4, placement)
            .with_compaction(cgraph::graph::CompactionPolicy::EveryK(3))
            .with_capacity(capacity);
        evolve(&mut st);
        let st = Arc::new(st);
        let mut e = Engine::new(
            Arc::clone(&st),
            EngineConfig { wavefront: 2, prefetch_depth: 1, ..EngineConfig::default() },
        );
        // One job bound mid-stream (its historical walks reach spilled
        // pre-checkpoint records; the very first record often stays
        // resident — its payload may still anchor the newest
        // checkpoint), one on the latest.
        let old = e.submit_at(Bfs::new(0), 5);
        let new = e.submit_program(Bfs::new(3));
        let report = e.run();
        assert!(report.completed);
        for pid in 0..12u32 {
            assert_eq!(
                e.prefetch_queue().lane_of(pid),
                st.shard_of(pid),
                "engine lanes must follow store placement"
            );
        }
        (
            (
                e.results::<Bfs>(old).unwrap(),
                e.results::<Bfs>(new).unwrap(),
            ),
            report.metrics,
            report.loads,
            e.spill_fetch_bytes().iter().sum::<u64>(),
            e.footprint_profile(),
        )
    };
    let unlimited = ShardCapacity::UNLIMITED;
    let (res_rr, m_rr, loads_rr, spill_rr, profile) = run(ShardPlacement::RoundRobin, unlimited);
    assert_eq!(spill_rr, 0, "unlimited capacity never spills");
    let locality = ShardPlacement::locality(&profile, ps.num_partitions(), 4);
    for placement in [ShardPlacement::Hash, locality.clone()] {
        let (res, m, loads, spill, _) = run(placement.clone(), unlimited);
        assert_eq!(res_rr, res, "{placement:?}");
        assert_eq!(loads_rr, loads, "{placement:?}");
        assert_eq!(
            m_rr, m,
            "global counters must not depend on shard placement ({placement:?})"
        );
        assert_eq!(spill, 0);
    }
    // Tight capacity: same results and schedule, but historic reads of
    // spilled records now carry a priced re-fetch.
    for placement in [ShardPlacement::RoundRobin, locality] {
        let (res, m, loads, spill, _) = run(placement.clone(), ShardCapacity::bytes(4096));
        assert_eq!(
            res_rr, res,
            "capacity is cost, never results ({placement:?})"
        );
        assert_eq!(loads_rr, loads, "{placement:?}");
        assert!(spill > 0, "tight capacity must price spill re-fetches");
        assert_eq!(
            m.bytes_disk_to_mem,
            m_rr.bytes_disk_to_mem + spill,
            "spill re-fetches are exactly the extra disk traffic"
        );
    }
}

/// A killed serving loop resumes mid-trace through its completion
/// journal: re-offering the same trace skips every job a previous
/// incarnation genuinely finished (zero re-runs, zero double-charged
/// engine work), replays a torn journal tail safely, and the combined
/// report covers the whole trace exactly once.
#[test]
fn killed_serve_loop_resumes_without_rerunning_finished_jobs() {
    use cgraph::graph::fault;

    let st = store();
    let tr = trace();
    let dir = std::env::temp_dir().join(format!("cgraph-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.seg");
    let cfg = ServeConfig { admission_window: 0.0, time_scale: 1.0, ..ServeConfig::default() };

    // Reference: one uninterrupted serve, no journal.
    let (full, _) = serve(&st, &tr, 0.0);

    // A journal over a fresh file must not perturb serving at all.
    {
        let probe = dir.join("probe.seg");
        let engine = Engine::new(Arc::clone(&st), EngineConfig::default());
        let mut sl = ServeLoop::with_journal(engine, cfg, &probe).unwrap();
        sl.offer_all(trace_arrivals(&tr, SPH, 64));
        let report = sl.serve();
        assert!(sl.journal_error().is_none());
        assert_eq!(sl.resumed(), 0);
        assert_eq!(report, full, "journaling must be invisible to the schedule");
    }

    // Incarnation 1: the load valve kills the loop mid-trace.
    let engine = Engine::new(
        Arc::clone(&st),
        EngineConfig { max_loads: full.loads / 2, ..EngineConfig::default() },
    );
    let mut sl = ServeLoop::with_journal(engine, cfg, &path).unwrap();
    sl.offer_all(trace_arrivals(&tr, SPH, 64));
    let first = sl.serve();
    assert!(!first.completed, "the valve must truncate this serve");
    assert!(sl.journal_error().is_none());
    drop(sl);

    // The kill may land mid-append: chop into the journal's last frame.
    // The torn tail must be truncated away on reopen — that one job
    // simply re-runs (it was never acknowledged durable).
    let len = fault::file_len(&path).unwrap();
    fault::truncate_at(&path, len - 3).unwrap();

    // Incarnation 2: fresh engine, same journal, same trace re-offered.
    let engine = Engine::new(Arc::clone(&st), EngineConfig::default());
    let mut sl = ServeLoop::with_journal(engine, cfg, &path).unwrap();
    sl.offer_all(trace_arrivals(&tr, SPH, 64));
    let resumed = sl.resumed() as usize;
    assert!(
        resumed > 0 && resumed < tr.len(),
        "valve must land mid-trace (resumed {resumed} of {})",
        tr.len()
    );
    let second = sl.serve();
    assert!(second.completed, "restart must finish the trace");
    assert!(sl.journal_error().is_none());
    assert_eq!(
        second.jobs.len(),
        tr.len(),
        "combined report covers the whole trace exactly once"
    );
    assert_eq!(
        resumed + sl.engine().num_jobs(),
        tr.len(),
        "no journaled job may be resubmitted (double-charged) after restart"
    );

    // Every resumed lifecycle is reported verbatim from incarnation 1.
    for replayed in &second.jobs[..resumed] {
        assert!(
            first.jobs.iter().any(|j| {
                j.name == replayed.name
                    && j.arrival == replayed.arrival
                    && j.admitted == replayed.admitted
                    && j.completed == replayed.completed
            }),
            "resumed job {replayed:?} must match a first-incarnation completion"
        );
    }

    // Serving again over the finished journal is a pure replay: nothing
    // admitted, nothing executed.
    let engine = Engine::new(Arc::clone(&st), EngineConfig::default());
    let mut sl = ServeLoop::with_journal(engine, cfg, &path).unwrap();
    sl.offer_all(trace_arrivals(&tr, SPH, 64));
    assert_eq!(sl.resumed() as usize, tr.len(), "whole trace journaled");
    let third = sl.serve();
    assert_eq!(third.jobs.len(), tr.len());
    assert_eq!(sl.engine().num_jobs(), 0, "pure replay runs no engine work");
    assert_eq!(third.loads, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (ISSUE 10 satellite): latency statistics must be computed
/// over **completed** rows only.  A quarantined or truncated job's
/// `completed` field is the quarantine/stop clock — treating it as a
/// real completion silently skews means and percentiles (here the
/// quarantined row's stamp would dominate every percentile).
#[test]
fn latency_stats_exclude_quarantined_and_truncated_rows() {
    let row = |job, latency: f64, outcome| JobLatency {
        job,
        name: "row",
        arrival: 0.0,
        admitted: latency / 2.0,
        completed: latency,
        outcome,
    };
    let jobs = vec![
        row(0, 1.0, JobOutcome::Completed),
        row(1, 2.0, JobOutcome::Completed),
        row(2, 3.0, JobOutcome::Completed),
        row(3, 1000.0, JobOutcome::Quarantined),
        row(4, 500.0, JobOutcome::Truncated),
    ];
    let report = ServeReport::new("test", 0.0, jobs, 1, 1, 0, 0.0, false);

    assert_eq!(report.mean_latency(), 2.0, "mean over completed rows only");
    assert_eq!(report.mean_wait(), 1.0, "wait over completed rows only");
    assert_eq!(report.latency_percentile(50.0), 2.0);
    assert_eq!(
        report.latency_percentile(99.0),
        3.0,
        "p99 must not see the quarantine stamp"
    );

    // No completed rows at all: every statistic is 0, never a stale
    // stamp and never a divide-by-zero.
    let report = ServeReport::new(
        "test",
        0.0,
        vec![row(0, 7.0, JobOutcome::Quarantined)],
        1,
        1,
        0,
        0.0,
        false,
    );
    assert_eq!(report.mean_latency(), 0.0);
    assert_eq!(report.mean_wait(), 0.0);
    assert_eq!(report.latency_percentile(99.0), 0.0);
}
