//! Concurrent-executor differential stress: the channel-staged pipeline
//! (`EngineConfig::io_workers`) must be bit-identical to the fork-join
//! executor at every I/O-worker count, prefetch depth, and channel
//! capacity — including capacity 1, where any ordering bug in the
//! dispatch loop shows up as a deadlock (caught by CI's per-binary
//! timeout) instead of a wrong answer.
//!
//! The mix uses integer-valued programs only (BFS, SSSP, WCC,
//! reachability): their accumulators are exact min/or folds, so results,
//! traffic counters, *and* the modeled-seconds bit pattern must all
//! match exactly.  CI runs this binary with default threading and with
//! `--test-threads=1`.

use std::sync::Arc;

use cgraph::algos::{Bfs, Reachability, Sssp, Wcc};
use cgraph::core::{Engine, EngineConfig, ExecError, FaultConfig, FaultPlane};
use cgraph::graph::snapshot::SnapshotStore;
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Partitioner};
use cgraph::memsim::{HierarchyConfig, Metrics};
use cgraph_bench::ingest_stream_spread;

const SHARDS: usize = 4;

/// One shared evolving store: a 4-shard chain with enough deltas that
/// jobs arriving at different timestamps bind to different snapshot
/// versions, so waves mix partition versions and spread across lanes.
fn shared_store() -> Arc<SnapshotStore> {
    let el = generate::rmat(9, 4, generate::RmatParams::default(), 2024);
    let n = el.num_vertices();
    let ps = VertexCutPartitioner::new(16).partition(&el);
    let mut store = SnapshotStore::with_shards(ps, SHARDS);
    for (i, delta) in ingest_stream_spread(n, 24, 48, 4).iter().enumerate() {
        store
            .apply((i as u64 + 1) * 10, delta)
            .expect("evolving delta applies");
    }
    Arc::new(store)
}

/// Everything one run can observe, flattened for exact comparison.
#[derive(PartialEq, Debug)]
struct RunDigest {
    bfs: Vec<u32>,
    /// SSSP distances are f32 min-folds: exactly commutative, so even
    /// these compare bit-for-bit across executors.
    sssp: Vec<f32>,
    wcc: Vec<u32>,
    reach: Vec<bool>,
    late_bfs: Vec<u32>,
    loads: u64,
    metrics: Metrics,
    /// Bit pattern of the modeled pipeline seconds: the concurrent
    /// executor must reproduce the serial charge/accumulation order
    /// exactly, so even the float result is bit-identical.
    modeled_bits: u64,
}

/// Tight enough that loads actually rotate through the cache.
fn tight_hierarchy(store: &Arc<SnapshotStore>) -> HierarchyConfig {
    let view = store.base_view();
    let total: u64 = (0..view.num_partitions() as u32)
        .map(|pid| view.partition(pid).structure_bytes())
        .sum();
    HierarchyConfig { cache_bytes: (total / 4).max(1), memory_bytes: total * 4 }
}

fn run_cfg(
    store: &Arc<SnapshotStore>,
    io_workers: usize,
    depth: usize,
    capacity: usize,
) -> RunDigest {
    let hierarchy = tight_hierarchy(store);
    let mut engine = Engine::new(
        Arc::clone(store),
        EngineConfig {
            workers: 2,
            wavefront: 4,
            prefetch_depth: depth,
            io_workers,
            channel_capacity: capacity,
            hierarchy,
            ..EngineConfig::default()
        },
    );
    // Arrivals spread over the chain: jobs bind to distinct snapshots.
    let bfs = engine.submit_at(Bfs::new(0), 0);
    let sssp = engine.submit_at(Sssp::new(1), 50);
    let wcc = engine.submit_at(Wcc, 120);
    let reach = engine.submit_at(Reachability::new(0), 180);
    let late_bfs = engine.submit_at(Bfs::new(3), 240);
    let report = engine.run();
    assert!(report.completed, "stress run must converge");
    RunDigest {
        bfs: engine.results::<Bfs>(bfs).unwrap(),
        sssp: engine.results::<Sssp>(sssp).unwrap(),
        wcc: engine.results::<Wcc>(wcc).unwrap(),
        reach: engine.results::<Reachability>(reach).unwrap(),
        late_bfs: engine.results::<Bfs>(late_bfs).unwrap(),
        loads: report.loads,
        metrics: report.metrics,
        modeled_bits: report.modeled_seconds.to_bits(),
    }
}

#[test]
fn channel_pipeline_matches_serial_at_every_worker_count_and_depth() {
    let store = shared_store();
    for depth in [0usize, 2, 4] {
        let serial = run_cfg(&store, 0, depth, 2);
        for io in [1usize, 2, 4, 8] {
            let concurrent = run_cfg(&store, io, depth, 2);
            assert_eq!(
                concurrent, serial,
                "io_workers={io} depth={depth} diverged from fork-join"
            );
        }
    }
}

#[test]
fn capacity_one_channels_neither_deadlock_nor_diverge() {
    // Capacity 1 maximally stresses the dispatch loop's no-blocking
    // invariant: a full fetch queue must stash-and-drain, never block.
    let store = shared_store();
    for depth in [0usize, 2, 4] {
        let serial = run_cfg(&store, 0, depth, 1);
        for io in [1usize, 4, 8] {
            let concurrent = run_cfg(&store, io, depth, 1);
            assert_eq!(
                concurrent, serial,
                "io_workers={io} depth={depth} capacity=1 diverged"
            );
        }
    }
}

#[test]
fn racing_engines_on_one_shared_store_stay_deterministic() {
    // Several concurrent engines — different I/O-worker counts, depths,
    // and channel bounds — race on the same Arc'd store from separate
    // OS threads; every one must land on the serial digest.
    let store = shared_store();
    let serial = run_cfg(&store, 0, 2, 2);
    std::thread::scope(|scope| {
        let handles: Vec<_> = [(1usize, 1usize), (2, 2), (4, 1), (8, 4)]
            .into_iter()
            .map(|(io, capacity)| {
                let store = Arc::clone(&store);
                scope.spawn(move || run_cfg(&store, io, 2, capacity))
            })
            .collect();
        for handle in handles {
            let digest = handle.join().expect("racing engine run panicked");
            assert_eq!(digest, serial, "racing engine diverged from serial");
        }
    });
}

#[test]
fn width_one_waves_stay_on_the_legacy_path() {
    // A single-slot wave has nothing to pipeline: io_workers must be
    // ignored and the classic executor reproduced exactly.
    let store = shared_store();
    let run = |io: usize| {
        let mut engine = Engine::new(
            Arc::clone(&store),
            EngineConfig {
                workers: 2,
                wavefront: 1,
                io_workers: io,
                hierarchy: tight_hierarchy(&store),
                ..EngineConfig::default()
            },
        );
        let b = engine.submit(Bfs::new(0));
        let s = engine.submit(Sssp::new(1));
        let report = engine.run();
        assert!(report.completed);
        (
            engine.results::<Bfs>(b).unwrap(),
            engine.results::<Sssp>(s).unwrap(),
            report.loads,
            report.metrics,
            report.modeled_seconds.to_bits(),
        )
    };
    assert_eq!(run(8), run(0));
}

#[test]
fn injected_worker_panic_surfaces_typed_without_hanging() {
    // The fault plane's worker-death drill: a panic injected into the
    // crew's trigger stage at a fixed (partition, chunk) coordinate must
    // travel the same unwind-guard path as crashing user code — a typed
    // `ExecError::WorkerPanic` parked on the engine, run not completed,
    // no hang even at channel capacity 1 (CI's per-binary timeout is the
    // deadlock detector).
    let store = shared_store();
    let plane = FaultPlane::new(FaultConfig {
        // Chunk 0 of partition 0 is processed by every run that touches
        // the partition, so the drill always fires.
        panic_chunk: Some((0, 0)),
        ..FaultConfig::default()
    });
    let mut engine = Engine::new(
        Arc::clone(&store),
        EngineConfig {
            workers: 2,
            wavefront: 4,
            io_workers: 2,
            channel_capacity: 1,
            hierarchy: tight_hierarchy(&store),
            faults: Some(plane),
            ..EngineConfig::default()
        },
    );
    engine.submit_at(Bfs::new(0), 0);
    engine.submit_at(Sssp::new(1), 50);
    let report = engine.run();
    assert!(
        !report.completed,
        "a dead worker must not report completion"
    );
    assert_eq!(
        engine.exec_error(),
        Some(ExecError::WorkerPanic(
            "process_chunk panicked in a trigger worker"
        )),
        "the injected panic must surface as the typed crew fault"
    );
    // The engine parked the fault: further stepping refuses instead of
    // hanging or re-panicking over the half-dead pipeline.
    assert!(!engine.step_round(), "faulted engine must refuse rounds");
}
