//! The multi-node store differential stress suite: concurrent per-shard
//! apply is bit-identical to serial apply under thread contention,
//! capacity eviction only ever spills checkpoint-covered records (and
//! its re-fetches are charged on the owning shard's lane), and locality
//! placement cuts cross-shard fetch traffic without changing anything a
//! view or a schedule observes.
//!
//! CI runs this binary both on the default parallel test harness and
//! under `cargo test -q -- --test-threads=1`, so ordering-dependent
//! flakiness in the concurrent-apply path shows up as a diff between
//! the two runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cgraph::algos::{Bfs, Sssp};
use cgraph::baselines::{StreamConfig, StreamEngine};
use cgraph::core::{Engine, EngineConfig};
use cgraph::graph::snapshot::{
    CompactionPolicy, GraphDelta, ShardCapacity, ShardPlacement, ShardedSnapshotStore,
};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, PartitionSet, Partitioner, VersionId, VertexId};
use cgraph_bench::{
    community_graph, ingest_stream_spread, out_of_core_hierarchy, submit_community_jobs,
};

const VERTICES: u32 = 4096;
const PARTITIONS: usize = 32;
const DELTAS: usize = 200;

fn base() -> PartitionSet {
    VertexCutPartitioner::new(PARTITIONS).partition(&generate::cycle(VERTICES))
}

fn stream() -> Vec<GraphDelta> {
    ingest_stream_spread(VERTICES, DELTAS, 32, 8)
}

/// Everything a view can observe at one timestamp, flattened for
/// differential comparison.
#[derive(PartialEq, Debug)]
struct ViewDigest {
    ts: u64,
    versions: Vec<VersionId>,
    edges: Vec<(VertexId, VertexId)>,
    masters: Vec<u32>,
    degrees: Vec<(u32, u32)>,
}

fn digest(store: &Arc<ShardedSnapshotStore>, ts: u64) -> ViewDigest {
    let v = store.view_at(ts);
    let mut edges: Vec<(VertexId, VertexId)> = v
        .edges_global()
        .edges()
        .iter()
        .map(|e| (e.src, e.dst))
        .collect();
    edges.sort_unstable();
    ViewDigest {
        ts,
        versions: (0..PARTITIONS as u32).map(|p| v.version_of(p)).collect(),
        edges,
        masters: (0..VERTICES).step_by(37).map(|x| v.master_of(x)).collect(),
        degrees: (0..VERTICES).step_by(37).map(|x| v.degree_of(x)).collect(),
    }
}

fn digests(store: &Arc<ShardedSnapshotStore>) -> Vec<ViewDigest> {
    [0u64, 490, 990, 1490, 2000]
        .into_iter()
        .map(|ts| digest(store, ts))
        .collect()
}

fn apply_all(mut store: ShardedSnapshotStore, stream: &[GraphDelta]) -> Arc<ShardedSnapshotStore> {
    for (i, d) in stream.iter().enumerate() {
        store.apply((i as u64 + 1) * 10, d).expect("stream applies");
    }
    Arc::new(store)
}

/// N writer threads, each driving its own store through the same
/// 200-delta stream under a different {shards × apply workers ×
/// placement} configuration, all racing at once: every final chain must
/// be bit-identical to the single-threaded serial reference, view by
/// historical view.
#[test]
fn concurrent_apply_stress_matches_serial() {
    let ps = base();
    let stream = stream();
    let reference = digests(&apply_all(
        ShardedSnapshotStore::with_shards(ps.clone(), 4),
        &stream,
    ));

    let configs: Vec<(usize, usize, ShardPlacement)> = vec![
        (1, 4, ShardPlacement::RoundRobin),
        (4, 2, ShardPlacement::RoundRobin),
        (4, 4, ShardPlacement::RoundRobin),
        (8, 4, ShardPlacement::Hash),
        (4, 4, {
            let mut profile = cgraph::graph::FootprintProfile::new();
            for c in 0..4u32 {
                profile.record((0..PARTITIONS as u32).filter(|p| p % 4 == c));
            }
            ShardPlacement::locality(&profile, PARTITIONS, 4)
        }),
    ];
    let results: Vec<(usize, usize, Vec<ViewDigest>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .into_iter()
            .map(|(shards, workers, placement)| {
                let ps = ps.clone();
                let stream = &stream;
                scope.spawn(move || {
                    let store = apply_all(
                        ShardedSnapshotStore::with_placement(ps, shards, placement)
                            .with_apply_workers(workers)
                            // The fixture's deltas are small; disable
                            // the work-size clamp so the concurrent
                            // rebuild path is what this suite races.
                            .with_apply_threshold(0),
                        stream,
                    );
                    (shards, workers, digests(&store))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("writer"))
            .collect()
    });
    for (shards, workers, got) in results {
        assert_eq!(
            got, reference,
            "shards={shards} workers={workers} diverged from serial apply"
        );
    }
}

/// Writers interleaving applies on ONE shared store (a ticket per delta
/// keeps the global timestamp order; each holder fans its apply out on
/// 4 workers) must produce exactly the serial chain — and must not
/// deadlock under lock contention.
#[test]
fn interleaved_writers_on_shared_store_stay_serializable() {
    let ps = base();
    let stream = stream();
    let reference = digests(&apply_all(
        ShardedSnapshotStore::with_shards(ps.clone(), 4),
        &stream,
    ));

    const WRITERS: usize = 4;
    let store = Mutex::new(Some(
        ShardedSnapshotStore::with_shards(ps, 4)
            .with_apply_workers(4)
            .with_apply_threshold(0),
    ));
    let turn = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let store = &store;
            let turn = &turn;
            let stream = &stream;
            scope.spawn(move || {
                // Writer `w` owns deltas w, w + WRITERS, w + 2·WRITERS, …
                for (i, d) in stream.iter().enumerate().skip(w).step_by(WRITERS) {
                    while turn.load(Ordering::Acquire) != i {
                        std::thread::yield_now();
                    }
                    let mut guard = store.lock().expect("store lock");
                    let s = guard.as_mut().expect("store present");
                    s.apply((i as u64 + 1) * 10, d).expect("stream applies");
                    drop(guard);
                    turn.store(i + 1, Ordering::Release);
                }
            });
        }
    });
    let shared = Arc::new(store.into_inner().expect("lock").expect("store"));
    assert_eq!(
        digests(&shared),
        reference,
        "interleaved writers diverged from serial apply"
    );
}

/// Capacity eviction invariants under a long stream: every spilled
/// record sits strictly below its shard's newest checkpoint (so no
/// historical walk can dangle — it always terminates on resident
/// state), the post-install resident bytes respect the budget whenever
/// anything evictable remains, and the capped store stays bit-identical
/// to the uncapped one.
#[test]
fn capacity_eviction_invariants() {
    let ps = base();
    let stream = stream();
    let uncapped = apply_all(
        ShardedSnapshotStore::with_shards(ps.clone(), 4)
            .with_compaction(CompactionPolicy::EveryK(8)),
        &stream,
    );
    let cap = (0..4)
        .map(|s| uncapped.shard_resident_bytes(s))
        .max()
        .unwrap()
        * 6
        / 10;
    let capped = apply_all(
        ShardedSnapshotStore::with_shards(ps, 4)
            .with_compaction(CompactionPolicy::EveryK(8))
            .with_capacity(ShardCapacity::bytes(cap)),
        &stream,
    );
    assert!(capped.has_spills(), "a 40% cut must force spills");
    for s in 0..4 {
        let shard = capped.shard(s);
        let spilled = shard.spilled_indices();
        if spilled.is_empty() {
            continue;
        }
        let horizon = shard
            .newest_checkpoint()
            .expect("spills require a checkpoint");
        for i in &spilled {
            assert!(
                *i < horizon,
                "shard {s}: spilled record {i} not covered by checkpoint {horizon}"
            );
        }
        // Budget: under cap, or nothing evictable remains (the refusal
        // case — the resident floor is the head plus checkpoint-shared
        // payloads, which spilling could never free).
        let resident = capped.shard_resident_bytes(s);
        assert!(
            resident <= cap || !capped.shard_has_evictable(s),
            "shard {s}: resident {resident} over cap {cap} with evictable records left"
        );
    }
    assert!(
        capped.override_bytes() < uncapped.override_bytes(),
        "spilling must shrink the resident override accounting"
    );
    assert_eq!(
        digests(&capped),
        digests(&uncapped),
        "capacity is cost, never semantics"
    );
}

/// Eviction + re-fetch round-trips are charged on the correct shard
/// lane: with deltas confined to one shard's partitions, only that
/// shard spills, and a historic-bound job's spill re-fetches land on
/// exactly that lane — in both the CGraph engine and the streaming
/// baseline.
#[test]
fn spill_refetches_charge_the_owning_lane() {
    let ps = VertexCutPartitioner::new(8).partition(&generate::cycle(256));
    // Partitions are contiguous 32-vertex ranges; round-robin over 2
    // shards puts even pids on shard 0.  Edges among partition 0's
    // vertices keep every delta (and so every spill) on shard 0.
    let mut store =
        ShardedSnapshotStore::with_shards(ps, 2).with_compaction(CompactionPolicy::EveryK(4));
    for i in 1..=40u64 {
        let v = (i % 30) as u32;
        store
            .apply(
                i,
                &GraphDelta::adding([cgraph::graph::Edge::unit(v, (v + 2) % 31)]),
            )
            .unwrap();
    }
    let cap = store.shard_resident_bytes(0) / 2;
    let mut store = store.with_capacity(ShardCapacity::bytes(cap));
    // Keep evolving so enforcement runs through apply too.
    for i in 41..=48u64 {
        let v = (i % 30) as u32;
        store
            .apply(
                i,
                &GraphDelta::adding([cgraph::graph::Edge::unit(v, (v + 5) % 31)]),
            )
            .unwrap();
    }
    assert!(store.shard(0).num_spilled() > 0, "shard 0 must spill");
    assert_eq!(store.shard(1).num_spilled(), 0, "shard 1 never changes");
    let store = Arc::new(store);

    // A job bound to an early snapshot walks the spilled history.
    let mut engine = Engine::new(Arc::clone(&store), EngineConfig::default());
    engine.submit_at(Bfs::new(0), 1);
    assert!(engine.run().completed);
    let lanes = engine.spill_fetch_bytes();
    assert!(
        lanes.first().copied().unwrap_or(0) > 0,
        "historic reads must be priced as spill re-fetches: {lanes:?}"
    );
    assert!(
        lanes.iter().skip(1).all(|&b| b == 0),
        "spill charges must stay on the owning lane: {lanes:?}"
    );

    let mut baseline = StreamEngine::new(Arc::clone(&store), StreamConfig::default());
    baseline.submit_at(Bfs::new(0), 1);
    assert!(baseline.run().completed);
    let lanes = baseline.spill_fetch_bytes();
    assert!(
        lanes.first().copied().unwrap_or(0) > 0,
        "baseline prices spills too"
    );
    assert!(
        lanes.iter().skip(1).all(|&b| b == 0),
        "baseline lane attribution: {lanes:?}"
    );

    // A latest-bound job never touches spilled state: the current index
    // is always resident.
    let mut fresh = Engine::new(Arc::clone(&store), EngineConfig::default());
    fresh.submit(Bfs::new(0));
    assert!(fresh.run().completed);
    assert!(
        fresh.spill_fetch_bytes().iter().all(|&b| b == 0),
        "latest views resolve from the resident current index"
    );
}

/// The acceptance pin for locality placement: on the community workload
/// (disjoint job footprints), profiling a round-robin run and replaying
/// under the profiled locality table cuts cross-shard fetch bytes by at
/// least 15% — here it should approach 100% — while results, loads, and
/// total traffic stay identical.
#[test]
fn locality_placement_cuts_cross_shard_fetch_bytes() {
    const COMMUNITIES: usize = 4;
    const BLOCK: u32 = 1 << 8;
    let el = community_graph(COMMUNITIES, 8, 6, 0xC0FFEE);
    let ps = VertexCutPartitioner::new(16).partition(&el);
    let h = out_of_core_hierarchy(&ps);
    let run = |placement: ShardPlacement| {
        let store = Arc::new(ShardedSnapshotStore::with_placement(
            ps.clone(),
            4,
            placement,
        ));
        let mut e = Engine::new(
            Arc::clone(&store),
            EngineConfig {
                workers: 2,
                hierarchy: h,
                wavefront: 4,
                prefetch_depth: 2,
                ..EngineConfig::default()
            },
        );
        submit_community_jobs(&mut e, COMMUNITIES, BLOCK);
        let report = e.run();
        assert!(report.completed);
        let results: Vec<Vec<u32>> = (0..COMMUNITIES as u32)
            .map(|c| e.results::<Bfs>(c * 2).unwrap())
            .collect();
        let sssp: Vec<Vec<f32>> = (0..COMMUNITIES as u32)
            .map(|c| e.results::<Sssp>(c * 2 + 1).unwrap())
            .collect();
        (
            results,
            sssp,
            report.loads,
            e.shard_fetch_bytes().iter().sum::<u64>(),
            e.cross_shard_fetch_bytes(),
            e.footprint_profile(),
        )
    };
    let (res_rr, sssp_rr, loads_rr, total_rr, cross_rr, profile) = run(ShardPlacement::RoundRobin);
    let locality = ShardPlacement::locality(&profile, ps.num_partitions(), 4);
    let (res_loc, sssp_loc, loads_loc, total_loc, cross_loc, _) = run(locality);
    assert_eq!(res_rr, res_loc, "placement never changes results");
    assert_eq!(sssp_rr, sssp_loc);
    assert_eq!(loads_rr, loads_loc, "placement never changes the schedule");
    assert_eq!(total_rr, total_loc, "placement never changes total traffic");
    assert!(cross_rr > 0, "round-robin scatters community footprints");
    assert!(
        (cross_loc as f64) <= 0.85 * cross_rr as f64,
        "locality must cut cross-shard fetch bytes >=15%: {cross_loc} vs {cross_rr}"
    );
}
