//! O(Δ) snapshot ingest: layered delta-chain records keep `apply` cost
//! flat in chain length, and checkpoint compaction bounds historical
//! walks — without either ever changing what any view observes.

use std::sync::{Arc, Mutex, MutexGuard};

use cgraph::graph::snapshot::{CompactionPolicy, GraphDelta, SnapshotStore};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, PartitionSet, Partitioner};
use cgraph_bench::{ingest_run, ingest_stream, IngestRun};

const VERTICES: u32 = 4096;
const PARTITIONS: usize = 128;
const DELTAS: usize = 200;
const EDGES_PER_DELTA: usize = 32;

/// Serializes the wall-clock-sensitive tests in this binary: cargo runs
/// test fns on parallel threads by default, and a concurrent 200-apply
/// stream would perturb another test's timing margins.
fn timing_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The pinned constant-size stream: clustered sources (few bounded
/// partition rebuilds per delta) with scattered destinations (the
/// accumulated vertex-override state keeps growing — exactly what the
/// pre-layering layout recloned per apply).
fn stream() -> Vec<GraphDelta> {
    ingest_stream(VERTICES, DELTAS, EDGES_PER_DELTA)
}

fn base_partitions() -> PartitionSet {
    VertexCutPartitioner::new(PARTITIONS).partition(&generate::cycle(VERTICES))
}

fn base_store(policy: CompactionPolicy) -> SnapshotStore {
    SnapshotStore::new(base_partitions()).with_compaction(policy)
}

/// Streams the pinned deltas through the shared bench harness,
/// sampling at the full chain length.
fn run(policy: CompactionPolicy) -> IngestRun {
    ingest_run("test", policy, &base_partitions(), &stream(), &[DELTAS])
}

/// The acceptance pin: a 200-delta stream of constant-size deltas must
/// cost the same per apply at the end of the chain as at the start
/// (within 2×).  Under the pre-layering cumulative-clone layout this
/// ratio exceeds 10×.
#[test]
fn apply_cost_is_flat_in_chain_length() {
    let _serial = timing_lock();
    let layered = run(CompactionPolicy::default());
    let first = layered.mean_us(0..50);
    let last = layered.mean_us(DELTAS - 50..DELTAS);
    assert!(
        last <= 2.0 * first,
        "ingest is not O(Δ): first-50 mean {first:.1}µs, last-50 mean {last:.1}µs"
    );
    assert_eq!(layered.apply_us.len(), DELTAS);
}

/// The layered chain beats the cumulative layout (`EveryK(1)`, which
/// reproduces the pre-layering representation: full state on every
/// record) on total ingest time and resident override bytes.  The wall
/// bound is loose — debug builds spend most of each apply rebuilding
/// partitions, work both layouts share; `bench_ingest` pins the ~5×
/// release-mode gap — but the resident-bytes win is deterministic.
#[test]
fn layered_ingest_beats_cumulative_layout() {
    let _serial = timing_lock();
    let layered = run(CompactionPolicy::default());
    let cumulative = run(CompactionPolicy::EveryK(1));
    assert!(
        layered.total_us() * 1.1 <= cumulative.total_us(),
        "expected a total ingest win, got layered {:.0}µs vs cumulative {:.0}µs",
        layered.total_us(),
        cumulative.total_us()
    );
    let (lb, cb) = (
        layered.points[0].override_bytes,
        cumulative.points[0].override_bytes,
    );
    assert!(
        lb * 4 <= cb,
        "layered chain should be ≥4× smaller: {lb} vs {cb} bytes"
    );
}

/// Latest-view lookups resolve through the current-state index: the
/// per-lookup cost after 200 deltas matches the cost after 25 (O(1) in
/// chain length, not a chain walk), measured by the same probe the
/// ingest bench samples.
#[test]
fn latest_view_lookups_stay_constant_time() {
    let _serial = timing_lock();
    let probe = ingest_run(
        "probe",
        CompactionPolicy::Off,
        &base_partitions(),
        &stream(),
        &[25, DELTAS],
    );
    let short = probe.points[0].latest_lookup_ns;
    let long = probe.points[1].latest_lookup_ns;
    // Generous bound: a chain walk would scale ~8× between these points.
    assert!(
        long <= 4.0 * short,
        "latest-view lookup not O(1): {short:.0}ns at 25 deltas vs {long:.0}ns at 200"
    );
}

/// Historical views stay correct and bounded under compaction: every
/// 25th snapshot of the stream observes exactly the edges applied up to
/// it, whichever policy laid out the chain.
#[test]
fn historical_views_identical_across_policies() {
    let stores: Vec<Arc<SnapshotStore>> = [
        CompactionPolicy::Off,
        CompactionPolicy::EveryK(4),
        CompactionPolicy::default(),
    ]
    .into_iter()
    .map(|policy| {
        let mut s = base_store(policy);
        for (i, d) in stream().iter().enumerate() {
            s.apply((i as u64 + 1) * 10, d).unwrap();
        }
        Arc::new(s)
    })
    .collect();
    let reference = &stores[0];
    for ts in (0..=DELTAS as u64).step_by(25).map(|i| i * 10) {
        let expect = reference.view_at(ts);
        let expected_len = expect.edges_global().len();
        for other in &stores[1..] {
            let got = other.view_at(ts);
            assert_eq!(got.timestamp(), expect.timestamp());
            assert_eq!(got.edges_global().len(), expected_len, "ts {ts}");
            for pid in (0..PARTITIONS as u32).step_by(7) {
                assert_eq!(got.version_of(pid), expect.version_of(pid), "ts {ts}");
                assert_eq!(
                    got.partition(pid).edges_global(),
                    expect.partition(pid).edges_global(),
                    "ts {ts} pid {pid}"
                );
            }
            for v in (0..VERTICES).step_by(101) {
                assert_eq!(got.master_of(v), expect.master_of(v), "ts {ts} v {v}");
                assert_eq!(got.replicas_of(v), expect.replicas_of(v), "ts {ts} v {v}");
                assert_eq!(got.degree_of(v), expect.degree_of(v), "ts {ts} v {v}");
            }
        }
    }
}
