//! Concurrency must never change results: jobs running together on the
//! CGraph engine produce exactly what they produce in isolation, including
//! the multi-phase SCC driver interleaved with other jobs.

use cgraph::algos::{reference, run_scc, Bfs, Katz, PageRank, Reachability, Sssp, Sswp, Wcc};
use cgraph::core::{Engine, EngineConfig};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Csr, PartitionSet, Partitioner};

fn partitions(seed: u64) -> PartitionSet {
    let el = generate::rmat(9, 4, generate::RmatParams::default(), seed);
    VertexCutPartitioner::new(10).partition(&el)
}

fn engine(ps: &PartitionSet) -> Engine {
    Engine::from_partitions(ps.clone(), EngineConfig::default())
}

#[test]
fn eight_concurrent_jobs_match_isolated_runs() {
    let ps = partitions(31);

    // Isolated runs first.
    let mut iso = Vec::new();
    for src in [0u32, 1] {
        let mut e = engine(&ps);
        let a = e.submit(Sssp::new(src));
        let b = e.submit(Bfs::new(src));
        e.run();
        iso.push((e.results::<Sssp>(a).unwrap(), e.results::<Bfs>(b).unwrap()));
    }
    let mut e = engine(&ps);
    let pr_iso_id = e.submit(PageRank::new(0.85, 1e-7));
    e.run();
    let pr_iso = e.results::<PageRank>(pr_iso_id).unwrap();

    // Now everything together: 2x SSSP, 2x BFS, PR, WCC, SSWP, Reach.
    let mut e = engine(&ps);
    let s0 = e.submit(Sssp::new(0));
    let b0 = e.submit(Bfs::new(0));
    let pr = e.submit(PageRank::new(0.85, 1e-7));
    let s1 = e.submit(Sssp::new(1));
    let wc = e.submit(Wcc);
    let b1 = e.submit(Bfs::new(1));
    let sw = e.submit(Sswp::new(0));
    let rc = e.submit(Reachability::new(0));
    let report = e.run();
    assert!(report.completed);

    assert_eq!(e.results::<Sssp>(s0).unwrap(), iso[0].0);
    assert_eq!(e.results::<Bfs>(b0).unwrap(), iso[0].1);
    assert_eq!(e.results::<Sssp>(s1).unwrap(), iso[1].0);
    assert_eq!(e.results::<Bfs>(b1).unwrap(), iso[1].1);
    let pr_con = e.results::<PageRank>(pr).unwrap();
    for v in 0..pr_con.len() {
        assert!((pr_con[v] - pr_iso[v]).abs() < 1e-9, "PR diverged at v{v}");
    }
    // Reachability must agree with BFS-from-0 reachability.
    let reach = e.results::<Reachability>(rc).unwrap();
    for (v, &reachable) in reach.iter().enumerate() {
        assert_eq!(reachable, iso[0].1[v] != u32::MAX, "reach v{v}");
    }
    let _ = (wc, sw);
}

#[test]
fn scc_driver_interleaved_with_other_jobs() {
    let el = generate::rmat(8, 5, generate::RmatParams::default(), 77);
    let ps = VertexCutPartitioner::new(8).partition(&el);
    let mut e = Engine::from_partitions(ps, EngineConfig::default());

    // PageRank runs concurrently with every SCC phase.
    let pr = e.submit(PageRank::new(0.85, 1e-7));
    let scc_ids = run_scc(&mut e);
    e.run();

    // SCC equals Tarjan (up to relabeling).
    let tarjan = reference::scc(&el);
    let canon = |ids: &[u32]| -> Vec<u32> {
        let mut min_of = std::collections::HashMap::new();
        for (v, &id) in ids.iter().enumerate() {
            let e = min_of.entry(id).or_insert(v as u32);
            *e = (*e).min(v as u32);
        }
        ids.iter().map(|id| min_of[id]).collect()
    };
    assert_eq!(canon(&scc_ids), canon(&tarjan));

    // And PageRank still equals its isolated value.
    let csr = Csr::from_edges(&el);
    let pr_ref = reference::pagerank(&csr, 0.85, 1e-9, 100_000);
    let pr_got = e.results::<PageRank>(pr).unwrap();
    for v in 0..pr_got.len() {
        assert!(
            (pr_got[v] - pr_ref[v]).abs() < 1e-3 * pr_ref[v].max(1.0),
            "PR v{v} drifted under SCC interleaving"
        );
    }
}

#[test]
fn katz_concurrent_with_pagerank() {
    let el = generate::rmat(8, 4, generate::RmatParams::default(), 13);
    let ps = VertexCutPartitioner::new(8).partition(&el);
    let mut e = Engine::from_partitions(ps, EngineConfig::default());
    let ka = e.submit(Katz::new(0.002, 1e-10));
    let pr = e.submit(PageRank::new(0.85, 1e-8));
    e.run();
    let csr = Csr::from_edges(&el);
    let ka_ref = reference::katz(&csr, 0.002, 1e-12, 100_000);
    let got = e.results::<Katz>(ka).unwrap();
    for v in 0..got.len() {
        assert!(
            (got[v] - ka_ref[v]).abs() < 1e-6 * ka_ref[v].max(1.0),
            "katz v{v}"
        );
    }
    assert!(e.job_done(pr));
}

#[test]
fn jobs_submitted_between_runs_are_picked_up() {
    let ps = partitions(91);
    let mut e = engine(&ps);
    let b0 = e.submit(Bfs::new(0));
    e.run();
    assert!(e.job_done(b0));
    // Late registration, as the paper's Alg. 3 allows.
    let b1 = e.submit(Bfs::new(1));
    let report = e.run();
    assert!(report.completed);
    assert!(e.job_done(b1));
    assert!(e.results::<Bfs>(b1).is_some());
}

#[test]
fn many_jobs_batching_exceeds_worker_count() {
    // 12 jobs on 2 workers forces |J| > N batching per partition.
    let ps = partitions(101);
    let mut e = Engine::from_partitions(
        ps.clone(),
        EngineConfig { workers: 2, ..EngineConfig::default() },
    );
    let mut ids = Vec::new();
    for src in 0..12u32 {
        ids.push(e.submit(Bfs::new(src % 4)));
    }
    assert!(e.run().completed);
    // Jobs with the same source agree exactly.
    let d0 = e.results::<Bfs>(ids[0]).unwrap();
    let d4 = e.results::<Bfs>(ids[4]).unwrap();
    let d8 = e.results::<Bfs>(ids[8]).unwrap();
    assert_eq!(d0, d4);
    assert_eq!(d4, d8);
}
