//! Observability differential + schema suite.
//!
//! Four guarantees, per the `core::obs` contract:
//!
//! 1. **Read-only tracing** — running the executor-stress configs and a
//!    serve loop with a live [`Observer`] changes no result bit, no
//!    traffic counter, and no modeled-seconds bit versus the disabled
//!    (and absent) observer.
//! 2. **Histogram honesty** — log-bucketed quantiles stay within the
//!    documented `[oracle, oracle * (1 + 1/16)]` envelope of the exact
//!    nearest-rank quantile, under proptest.
//! 3. **Bounded rings** — overflow drops the *oldest* events, keeps the
//!    newest, and reports the loss through `dropped_events()` and the
//!    trace export rather than silently.
//! 4. **Export schemas** — Chrome `trace_event` JSON, JSONL, and the
//!    metrics snapshot all round-trip through the strict JSON parser
//!    with the fields dashboards and `about://tracing` rely on.

use std::sync::Arc;

use proptest::prelude::*;

use cgraph::algos::{trace_arrivals, Bfs, Reachability, Sssp, Wcc};
use cgraph::core::obs::{parse_json, EventKind, Histogram, JsonValue, NONE};
use cgraph::core::{Engine, EngineConfig, Observer, ServeConfig, ServeLoop, ServeReport};
use cgraph::graph::snapshot::SnapshotStore;
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Partitioner};
use cgraph::memsim::{HierarchyConfig, Metrics};
use cgraph::trace::{generate_trace, TraceConfig};
use cgraph_bench::ingest_stream_spread;

/// The executor-stress store: a 4-shard evolving chain so waves mix
/// snapshot versions and spread across I/O lanes.
fn shared_store() -> Arc<SnapshotStore> {
    let el = generate::rmat(9, 4, generate::RmatParams::default(), 2024);
    let n = el.num_vertices();
    let ps = VertexCutPartitioner::new(16).partition(&el);
    let mut store = SnapshotStore::with_shards(ps, 4);
    for (i, delta) in ingest_stream_spread(n, 24, 48, 4).iter().enumerate() {
        store
            .apply((i as u64 + 1) * 10, delta)
            .expect("evolving delta applies");
    }
    Arc::new(store)
}

fn tight_hierarchy(store: &Arc<SnapshotStore>) -> HierarchyConfig {
    let view = store.base_view();
    let total: u64 = (0..view.num_partitions() as u32)
        .map(|pid| view.partition(pid).structure_bytes())
        .sum();
    HierarchyConfig { cache_bytes: (total / 4).max(1), memory_bytes: total * 4 }
}

/// Everything a run can observe, flattened for exact comparison (same
/// digest as `tests/executor_stress.rs`).
#[derive(PartialEq, Debug)]
struct RunDigest {
    bfs: Vec<u32>,
    sssp: Vec<f32>,
    wcc: Vec<u32>,
    reach: Vec<bool>,
    loads: u64,
    metrics: Metrics,
    modeled_bits: u64,
}

fn run_cfg(
    store: &Arc<SnapshotStore>,
    io_workers: usize,
    depth: usize,
    observer: Option<Arc<Observer>>,
) -> RunDigest {
    let mut engine = Engine::new(
        Arc::clone(store),
        EngineConfig {
            workers: 2,
            wavefront: 4,
            prefetch_depth: depth,
            io_workers,
            hierarchy: tight_hierarchy(store),
            observer,
            ..EngineConfig::default()
        },
    );
    let bfs = engine.submit_at(Bfs::new(0), 0);
    let sssp = engine.submit_at(Sssp::new(1), 50);
    let wcc = engine.submit_at(Wcc, 120);
    let reach = engine.submit_at(Reachability::new(0), 180);
    let report = engine.run();
    assert!(report.completed, "stress run must converge");
    RunDigest {
        bfs: engine.results::<Bfs>(bfs).unwrap(),
        sssp: engine.results::<Sssp>(sssp).unwrap(),
        wcc: engine.results::<Wcc>(wcc).unwrap(),
        reach: engine.results::<Reachability>(reach).unwrap(),
        loads: report.loads,
        metrics: report.metrics,
        modeled_bits: report.modeled_seconds.to_bits(),
    }
}

#[test]
fn tracing_changes_no_bit_on_executor_stress_configs() {
    let store = shared_store();
    for (io, depth) in [(0usize, 0usize), (0, 2), (2, 2), (4, 2), (4, 4)] {
        let plain = run_cfg(&store, io, depth, None);
        let disabled = run_cfg(&store, io, depth, Some(Observer::disabled()));
        let traced_obs = Observer::enabled();
        let traced = run_cfg(&store, io, depth, Some(Arc::clone(&traced_obs)));
        assert_eq!(
            plain, disabled,
            "io={io} depth={depth}: disabled observer diverged"
        );
        assert_eq!(
            plain, traced,
            "io={io} depth={depth}: live observer diverged"
        );
        // The traced run must actually have traced: spans in the rings,
        // metrics in the registry.
        let dump = traced_obs.dump();
        assert!(
            !dump.events.is_empty(),
            "io={io} depth={depth}: no events captured"
        );
        assert!(dump.events.iter().any(|e| e.kind == EventKind::Install));
        assert!(traced_obs.registry().counter("rounds").get() > 0);
    }
}

fn serve_report(store: &Arc<SnapshotStore>, observer: Option<Arc<Observer>>) -> ServeReport {
    let trace = generate_trace(&TraceConfig {
        hours: 4,
        base_rate: 2.0,
        peak_rate: 6.0,
        mean_duration: 1.0,
        seed: 99,
    });
    let engine = Engine::new(
        Arc::clone(store),
        EngineConfig {
            workers: 2,
            wavefront: 4,
            io_workers: 2,
            hierarchy: tight_hierarchy(store),
            observer,
            ..EngineConfig::default()
        },
    );
    let mut serve = ServeLoop::new(
        engine,
        ServeConfig { admission_window: 0.01, time_scale: 1.0, ..ServeConfig::default() },
    );
    serve.offer_all(trace_arrivals(&trace, 0.02, 64));
    serve.serve()
}

#[test]
fn tracing_changes_no_bit_on_the_serve_loop() {
    let store = shared_store();
    let plain = serve_report(&store, None);
    let obs = Observer::enabled();
    let traced = serve_report(&store, Some(Arc::clone(&obs)));
    // ServeReport is PartialEq over every field, including each job's
    // f64 arrival/admitted/completed stamps.
    assert_eq!(plain, traced, "live observer changed the serve outcome");
    assert_eq!(plain.per_job(), traced.per_job());
    // And the serve-layer signals were really recorded.
    assert!(obs.registry().counter("serve_arrivals").get() > 0);
    assert!(obs.registry().histogram("serve_queue_wait_us").count() > 0);
    assert!(obs
        .dump()
        .events
        .iter()
        .any(|e| e.kind == EventKind::AdmitRelease));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Log-bucketed quantiles vs the exact sorted-sample oracle: for
    /// any sample set and any q, the estimate brackets the nearest-rank
    /// value within the documented 1/16 relative error.
    #[test]
    fn histogram_quantiles_bracket_the_oracle(
        raw in proptest::collection::vec((0u64..(1u64 << 40), 0u32..40), 1..300),
        qs in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        // Right-shifting by a per-sample amount mixes magnitudes from
        // the exact unit buckets up through wide log buckets.
        let samples: Vec<u64> = raw.iter().map(|&(v, s)| v >> s).collect();
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for q in qs.iter().copied().chain([1.0]) {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let est = h.quantile(q);
            prop_assert!(est >= oracle, "q={}: est {} below oracle {}", q, est, oracle);
            prop_assert!(
                est as f64 <= oracle as f64 * (1.0 + 1.0 / 16.0),
                "q={}: est {} above the 1/16 envelope of oracle {}",
                q, est, oracle
            );
        }
    }
}

#[test]
fn ring_overflow_drops_oldest_and_reports_the_loss() {
    // Capacity rounds up to a power of two (min 8): ask for 8, push 20.
    let obs = Observer::with_ring_capacity(8);
    let rec = obs.recorder("burst");
    for i in 0..20u64 {
        rec.instant(EventKind::Push, NONE, NONE, 0, i);
    }
    assert_eq!(obs.dropped_events(), 12);
    let dump = obs.dump();
    assert_eq!(dump.dropped_events, 12);
    assert_eq!(dump.events.len(), 8);
    // The oldest 12 are gone; the newest 8 survive in recording order.
    let values: Vec<u64> = dump.events.iter().map(|e| e.value).collect();
    assert_eq!(values, (12..20).collect::<Vec<u64>>());
    // The loss is visible in the Chrome export too.
    let v = parse_json(&dump.chrome_json()).expect("chrome trace parses");
    assert_eq!(
        v.get("otherData")
            .unwrap()
            .get("dropped_events")
            .unwrap()
            .as_f64(),
        Some(12.0)
    );
}

/// A small traced engine run whose dump exercises every export path.
fn traced_dump() -> (Arc<Observer>, cgraph::core::TraceDump) {
    let store = shared_store();
    let obs = Observer::enabled();
    run_cfg(&store, 2, 2, Some(Arc::clone(&obs)));
    let dump = obs.dump();
    (obs, dump)
}

#[test]
fn chrome_trace_json_round_trips_the_schema() {
    let (obs, dump) = traced_dump();
    assert!(!dump.events.is_empty());
    let v = parse_json(&dump.chrome_json()).expect("chrome trace is valid JSON");
    assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ns"));
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    // One thread_name metadata record per registered thread, then one
    // record per span.
    assert_eq!(events.len(), dump.threads.len() + dump.events.len());
    let mut metadata = 0;
    for ev in events {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        assert!(ev.get("name").unwrap().as_str().is_some());
        assert!(ev.get("pid").unwrap().as_f64().is_some());
        let tid = ev.get("tid").unwrap().as_f64().unwrap() as usize;
        assert!(
            tid < dump.threads.len(),
            "tid {tid} has no thread_name record"
        );
        match ph {
            "M" => {
                metadata += 1;
                let name = ev
                    .get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap();
                assert_eq!(name, dump.threads[tid]);
            }
            "X" => {
                assert!(ev.get("ts").unwrap().as_f64().unwrap() >= 0.0);
                assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
                assert!(ev
                    .get("args")
                    .unwrap()
                    .get("value")
                    .unwrap()
                    .as_f64()
                    .is_some());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(metadata, dump.threads.len());

    // JSONL: every line parses and names a known thread and event kind.
    for line in dump.jsonl().lines() {
        let ev = parse_json(line).expect("jsonl line parses");
        let thread = ev.get("thread").unwrap().as_str().unwrap();
        assert!(dump.threads.iter().any(|t| t == thread));
        assert!(ev.get("kind").unwrap().as_str().is_some());
        assert!(ev.get("start_ns").unwrap().as_f64().is_some());
    }

    // Metrics snapshot: the three sections, with full quantile rows on
    // every histogram.
    let m = parse_json(&obs.registry().metrics_json()).expect("metrics snapshot parses");
    let sections: Vec<&str> = m
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(sections, vec!["counters", "gauges", "histograms"]);
    let hists = m.get("histograms").unwrap().as_object().unwrap();
    assert!(!hists.is_empty());
    for (name, h) in hists {
        for field in ["count", "sum", "max", "mean", "p50", "p90", "p99"] {
            assert!(
                matches!(h.get(field), Some(JsonValue::Num(_))),
                "histogram {name} missing numeric {field}"
            );
        }
    }

    // Prometheus page: every line is a comment or `name value` /
    // `name{quantile="q"} value`.
    let page = obs.registry().prometheus_text();
    assert!(page.contains("# TYPE rounds counter"));
    assert!(page.contains("install_us{quantile=\"0.99\"}"));
    for line in page.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample in {line:?}"
        );
    }
}
