//! Every engine — CGraph (both schedulers, both sync strategies) and all
//! five baselines — must produce identical algorithm results, because they
//! drive the same job runtimes.  Only access patterns may differ.

use cgraph::algos::{reference, Bfs, PageRank, Sssp, Wcc};
use cgraph::baselines::BaselinePreset;
use cgraph::core::{Engine, EngineConfig, JobEngine, SchedulerKind, SyncStrategy};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Csr, EdgeList, Partitioner, PartitionSet};
use cgraph::memsim::HierarchyConfig;

fn graph() -> (EdgeList, PartitionSet) {
    let el = generate::rmat(9, 5, generate::RmatParams::default(), 2024);
    let ps = VertexCutPartitioner::new(12).partition(&el);
    (el, ps)
}

fn tight_hierarchy(ps: &PartitionSet) -> HierarchyConfig {
    let total: u64 = ps.partitions().iter().map(|p| p.structure_bytes()).sum();
    HierarchyConfig { cache_bytes: (total / 6).max(1), memory_bytes: total * 2 }
}

/// Runs the 4-program mix on any engine and returns all results.
fn run_all<E: JobEngine>(engine: &mut E) -> (Vec<f64>, Vec<f32>, Vec<u32>, Vec<u32>) {
    let pr = engine.submit_program(PageRank::new(0.85, 1e-7));
    let ss = engine.submit_program(Sssp::new(0));
    let bf = engine.submit_program(Bfs::new(0));
    let wc = engine.submit_program(Wcc);
    let report = engine.run_jobs();
    assert!(report.completed, "engine must converge");
    (
        engine.typed_results::<PageRank>(pr).unwrap(),
        engine.typed_results::<Sssp>(ss).unwrap(),
        engine.typed_results::<Bfs>(bf).unwrap(),
        engine.typed_results::<Wcc>(wc).unwrap(),
    )
}

fn assert_matches_reference(
    el: &EdgeList,
    (pr, ss, bf, wc): &(Vec<f64>, Vec<f32>, Vec<u32>, Vec<u32>),
    engine_name: &str,
) {
    let csr = Csr::from_edges(el);
    let pr_ref = reference::pagerank(&csr, 0.85, 1e-9, 100_000);
    let ss_ref = reference::sssp(&csr, 0);
    let bf_ref = reference::bfs(&csr, 0);
    let wc_ref = reference::wcc(el);
    for v in 0..el.num_vertices() as usize {
        assert!(
            (pr[v] - pr_ref[v]).abs() < 1e-3 * pr_ref[v].max(1.0),
            "{engine_name}: PageRank v{v}: {} vs {}",
            pr[v],
            pr_ref[v]
        );
        assert!(
            (ss[v].is_infinite() && ss_ref[v].is_infinite())
                || (ss[v] - ss_ref[v]).abs() < 1e-3,
            "{engine_name}: SSSP v{v}: {} vs {}",
            ss[v],
            ss_ref[v]
        );
        assert_eq!(bf[v], bf_ref[v], "{engine_name}: BFS v{v}");
        assert_eq!(wc[v], wc_ref[v], "{engine_name}: WCC v{v}");
    }
}

#[test]
fn cgraph_priority_scheduler_matches_reference() {
    let (el, ps) = graph();
    let mut e = Engine::from_partitions(
        ps.clone(),
        EngineConfig { hierarchy: tight_hierarchy(&ps), ..EngineConfig::default() },
    );
    let out = run_all(&mut e);
    assert_matches_reference(&el, &out, "cgraph/priority");
}

#[test]
fn cgraph_fixed_order_matches_reference() {
    let (el, ps) = graph();
    let mut e = Engine::from_partitions(
        ps.clone(),
        EngineConfig {
            scheduler: SchedulerKind::FixedOrder,
            hierarchy: tight_hierarchy(&ps),
            ..EngineConfig::default()
        },
    );
    let out = run_all(&mut e);
    assert_matches_reference(&el, &out, "cgraph/fixed-order");
}

#[test]
fn cgraph_immediate_sync_matches_reference() {
    let (el, ps) = graph();
    let mut e = Engine::from_partitions(
        ps.clone(),
        EngineConfig {
            sync: SyncStrategy::Immediate,
            hierarchy: tight_hierarchy(&ps),
            ..EngineConfig::default()
        },
    );
    let out = run_all(&mut e);
    assert_matches_reference(&el, &out, "cgraph/immediate-sync");
}

#[test]
fn cgraph_single_worker_matches_reference() {
    let (el, ps) = graph();
    let mut e = Engine::from_partitions(
        ps.clone(),
        EngineConfig { workers: 1, hierarchy: tight_hierarchy(&ps), ..EngineConfig::default() },
    );
    let out = run_all(&mut e);
    assert_matches_reference(&el, &out, "cgraph/1-worker");
}

#[test]
fn all_baselines_match_reference() {
    let (el, ps) = graph();
    let h = tight_hierarchy(&ps);
    for preset in BaselinePreset::ALL {
        let mut e = preset.build_static(ps.clone(), 4, h);
        let out = run_all(&mut e);
        assert_matches_reference(&el, &out, preset.name());
    }
}

#[test]
fn all_engines_agree_pairwise() {
    let (_, ps) = graph();
    let h = tight_hierarchy(&ps);
    let mut cg = Engine::from_partitions(
        ps.clone(),
        EngineConfig { hierarchy: h, ..EngineConfig::default() },
    );
    let golden = run_all(&mut cg);
    for preset in BaselinePreset::ALL {
        let mut e = preset.build_static(ps.clone(), 2, h);
        let out = run_all(&mut e);
        assert_eq!(out.2, golden.2, "{}: BFS mismatch", preset.name());
        assert_eq!(out.3, golden.3, "{}: WCC mismatch", preset.name());
        for v in 0..golden.0.len() {
            assert!(
                (out.0[v] - golden.0[v]).abs() < 2e-3 * golden.0[v].max(1.0),
                "{}: PR v{v}",
                preset.name()
            );
        }
    }
}
