//! Per-test configuration and the deterministic case RNG.

/// Controls how many cases a [`crate::proptest!`] test runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep offline CI quick
    /// while still exercising varied inputs.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG handed to strategies (SplitMix64 seeded from the
/// test identity and case index, so failures reproduce exactly).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case `case` of the test identified by `test_hash`.
    pub fn for_case(test_hash: u64, case: u64) -> Self {
        TestRng { state: test_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
