//! Minimal API-compatible stand-in for the `proptest` crate.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(..)]` header, range / tuple / [`collection::vec`]
//! strategies, [`Strategy::prop_map`], and the `prop_assert*` macros.
//!
//! Failing inputs are *not* shrunk; instead every case's RNG seed is
//! derived deterministically from the test's module path and the case
//! index, so a failure reproduces identically on re-run and the panic
//! message names the failing case.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// FNV-1a hash used to derive per-test RNG seeds (stable across runs).
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body for `config.cases` generated
/// inputs.  The body may use `prop_assert!` / `prop_assert_eq!` /
/// `prop_assert_ne!`, which abort just the failing case with a message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..(config.cases as u64) {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        message
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the whole process) with an explanatory message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq!({}, {}): {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne!({}, {}): both {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(v in 5u32..25, f in 0.0f64..1.0) {
            prop_assert!((5..25).contains(&v));
            prop_assert!((0.0..1.0).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..10, 0u64..10), e in evens()) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(42, 3);
        let mut b = crate::test_runner::TestRng::for_case(42, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case(42, 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
