//! Value-generation strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
///
/// Unlike upstream proptest there is no shrinking: `generate` draws one
/// value directly from the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
