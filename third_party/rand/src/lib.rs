//! Minimal API-compatible stand-in for the `rand` crate.
//!
//! Provides the surface this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] —
//! over a SplitMix64 core.  Deterministic per seed; the output stream
//! differs from the real `rand` crate, which is fine because all in-repo
//! consumers assert reproducibility and distributional properties, never
//! specific sampled values.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the spans used here
                // (all far below 2^32) and irrelevant to correctness.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let frac: $t = Standard::sample(rng);
                let v = self.start + frac * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: SplitMix64
    /// (Steele, Lea & Flood 2014) — tiny state, passes BigCrush on the
    /// scales used here, and is fully portable.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Alias: the shim has a single generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(1.0f32..10.0);
            assert!((1.0..10.0).contains(&f));
            let d = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&d));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
