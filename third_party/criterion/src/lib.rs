//! Minimal API-compatible stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`Bencher::iter`] and
//! [`black_box`] — backed by plain `std::time::Instant` wall-clock
//! sampling with a median/mean summary printed per benchmark.  No
//! statistical analysis, plotting, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples; 20 keeps the offline shim
        // quick while still smoothing scheduler noise.
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.default_sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id printed as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples (plus one
    /// untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.recorded.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.recorded.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, recorded: Vec::new() };
    f(&mut bencher);
    if bencher.recorded.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    bencher.recorded.sort_unstable();
    let median = bencher.recorded[bencher.recorded.len() / 2];
    let total: Duration = bencher.recorded.iter().sum();
    let mean = total / bencher.recorded.len() as u32;
    println!(
        "{label}: median {} | mean {} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        bencher.recorded.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("pagerank", "rmat11");
        assert_eq!(id.id, "pagerank/rmat11");
    }
}
