//! Minimal API-compatible stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives and strips lock poisoning (a poisoned
//! lock is re-entered rather than propagated), matching `parking_lot`'s
//! panic-transparent locking semantics that the workspace relies on:
//! `lock()` returns the guard directly, not a `Result`.

use std::fmt;

/// A mutual-exclusion lock whose `lock` never fails.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.  Poisoning is
    /// ignored: a panic in another holder does not propagate here.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock whose acquisitions never fail.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
