//! The unit of simulated cache residency.

use cgraph_graph::{PartitionId, VersionId};

/// A job identifier as seen by the memory simulator.
pub type JobTag = u32;

/// Something that can live in the simulated cache/memory tiers.
///
/// The distinction between [`Structure`](CacheObject::Structure) and
/// [`JobStructure`](CacheObject::JobStructure) is the crux of the paper:
/// CGraph keys structure partitions *globally* (one copy serves every job),
/// while per-job engines (CLIP, Nxgraph) key them by job, so the same bytes
/// occupy the tiers once per job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheObject {
    /// A shared graph-structure partition at a snapshot version.
    Structure {
        /// Partition id.
        pid: PartitionId,
        /// Snapshot version (two jobs share residency only when their
        /// snapshot versions of the partition match).
        version: VersionId,
    },
    /// A per-job copy of a structure partition (engines without sharing).
    JobStructure {
        /// Owning job.
        job: JobTag,
        /// Partition id.
        pid: PartitionId,
        /// Snapshot version.
        version: VersionId,
    },
    /// A job's private vertex-state table for one partition.
    PrivateTable {
        /// Owning job.
        job: JobTag,
        /// Partition id.
        pid: PartitionId,
    },
}

impl CacheObject {
    /// Whether this object is graph-structure data (shared or per-job),
    /// as opposed to job-specific vertex state.
    pub fn is_structure(&self) -> bool {
        matches!(
            self,
            CacheObject::Structure { .. } | CacheObject::JobStructure { .. }
        )
    }

    /// The partition this object belongs to.
    pub fn partition(&self) -> PartitionId {
        match *self {
            CacheObject::Structure { pid, .. }
            | CacheObject::JobStructure { pid, .. }
            | CacheObject::PrivateTable { pid, .. } => pid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_and_per_job_structure_are_distinct_keys() {
        let shared = CacheObject::Structure { pid: 1, version: 0 };
        let per_job = CacheObject::JobStructure { job: 0, pid: 1, version: 0 };
        assert_ne!(shared, per_job);
        assert!(shared.is_structure());
        assert!(per_job.is_structure());
    }

    #[test]
    fn versions_separate_residency() {
        let v0 = CacheObject::Structure { pid: 3, version: 0 };
        let v1 = CacheObject::Structure { pid: 3, version: 1 };
        assert_ne!(v0, v1);
        assert_eq!(v0.partition(), v1.partition());
    }

    #[test]
    fn private_tables_are_not_structure() {
        let t = CacheObject::PrivateTable { job: 2, pid: 0 };
        assert!(!t.is_structure());
        assert_eq!(t.partition(), 0);
    }
}
