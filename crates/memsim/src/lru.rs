//! One simulated storage tier with LRU eviction and pinning.

use std::collections::HashMap;

use crate::object::CacheObject;

#[derive(Clone, Copy, Debug)]
struct Entry {
    bytes: u64,
    last_used: u64,
    /// Pin reference count: the object is evictable only at zero.
    pins: u32,
}

/// A byte-capacity tier holding [`CacheObject`]s with least-recently-used
/// eviction.
///
/// Objects can be *pinned* while a batch of jobs processes them (the paper
/// fixes a loaded structure partition in cache while rotating private
/// tables, §3.2.3); pinned objects are never evicted.  Pins are
/// reference-counted so a wavefront of concurrently loaded slots can pin
/// and unpin structures with overlapping lifetimes.  Eviction scans for
/// the minimum timestamp, which is plenty at partition granularity (tens to
/// a few thousand resident objects).
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: u64,
    used: u64,
    clock: u64,
    entries: HashMap<CacheObject, Entry>,
}

impl LruCache {
    /// Creates a tier with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        LruCache { capacity, used: 0, clock: 0, entries: HashMap::new() }
    }

    /// Tier capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `obj` is resident (does not touch recency).
    pub fn contains(&self, obj: &CacheObject) -> bool {
        self.entries.contains_key(obj)
    }

    /// Touches `obj`, refreshing its recency.  Returns `true` if resident.
    pub fn touch(&mut self, obj: &CacheObject) -> bool {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(obj) {
            Some(e) => {
                e.last_used = clock;
                true
            }
            None => false,
        }
    }

    /// Inserts `obj`, evicting LRU victims until it fits.
    ///
    /// Objects larger than the whole tier stream through: they are counted
    /// by the caller but never become resident (and evict nothing).
    /// Returns the evicted objects.
    pub fn insert(&mut self, obj: CacheObject, bytes: u64) -> Vec<CacheObject> {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&obj) {
            // Size update for an already-resident object; growth may
            // require evictions like a fresh insert would.
            self.used = self.used - e.bytes + bytes;
            e.bytes = bytes;
            e.last_used = self.clock;
            let mut evicted = Vec::new();
            while self.used > self.capacity {
                match self.lru_victim() {
                    // The resized entry is MRU, so it is never the victim
                    // unless it is the only entry left.
                    Some(victim) if victim != obj => {
                        self.remove(&victim);
                        evicted.push(victim);
                    }
                    _ => break,
                }
            }
            return evicted;
        }
        if bytes > self.capacity {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + bytes > self.capacity {
            match self.lru_victim() {
                Some(victim) => {
                    self.remove(&victim);
                    evicted.push(victim);
                }
                // Everything left is pinned; over-commit rather than fail —
                // the hierarchy's accounting still charges the transfer.
                None => break,
            }
        }
        self.entries
            .insert(obj, Entry { bytes, last_used: self.clock, pins: 0 });
        self.used += bytes;
        evicted
    }

    /// Removes `obj` if resident, returning its size.
    pub fn remove(&mut self, obj: &CacheObject) -> Option<u64> {
        self.entries.remove(obj).map(|e| {
            self.used -= e.bytes;
            e.bytes
        })
    }

    /// Pins `obj`, incrementing its pin count (no-op if absent).  Pinned
    /// objects are never evicted.
    pub fn pin(&mut self, obj: &CacheObject) {
        if let Some(e) = self.entries.get_mut(obj) {
            e.pins += 1;
        }
    }

    /// Releases one pin of `obj` (no-op if absent or already unpinned).
    /// The object becomes evictable when its count returns to zero.
    pub fn unpin(&mut self, obj: &CacheObject) {
        if let Some(e) = self.entries.get_mut(obj) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Current pin count of `obj` (0 if absent or unpinned).
    pub fn pin_count(&self, obj: &CacheObject) -> u32 {
        self.entries.get(obj).map_or(0, |e| e.pins)
    }

    /// Total bytes currently pinned (the wavefront's resident footprint).
    pub fn pinned_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.pins > 0)
            .map(|e| e.bytes)
            .sum()
    }

    /// Drops every resident object (e.g. between independent experiments).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }

    /// Removes all objects matching a predicate (e.g. one job's tables when
    /// the job completes).
    pub fn retain(&mut self, mut keep: impl FnMut(&CacheObject) -> bool) {
        let mut freed = 0;
        self.entries.retain(|obj, e| {
            if keep(obj) {
                true
            } else {
                freed += e.bytes;
                false
            }
        });
        self.used -= freed;
    }

    fn lru_victim(&self) -> Option<CacheObject> {
        self.entries
            .iter()
            .filter(|(_, e)| e.pins == 0)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(o, _)| *o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pid: u32) -> CacheObject {
        CacheObject::Structure { pid, version: 0 }
    }

    #[test]
    fn inserts_until_capacity_then_evicts_lru() {
        let mut c = LruCache::new(100);
        assert!(c.insert(obj(0), 40).is_empty());
        assert!(c.insert(obj(1), 40).is_empty());
        // Touch 0 so 1 becomes LRU.
        assert!(c.touch(&obj(0)));
        let evicted = c.insert(obj(2), 40);
        assert_eq!(evicted, vec![obj(1)]);
        assert!(c.contains(&obj(0)));
        assert!(c.contains(&obj(2)));
        assert!(c.used() <= c.capacity());
    }

    #[test]
    fn pinned_objects_survive_eviction() {
        let mut c = LruCache::new(100);
        c.insert(obj(0), 60);
        c.pin(&obj(0));
        c.insert(obj(1), 60);
        assert!(c.contains(&obj(0)), "pinned object evicted");
        c.unpin(&obj(0));
        c.insert(obj(2), 60);
        assert!(!c.contains(&obj(0)) || !c.contains(&obj(1)));
    }

    #[test]
    fn oversized_objects_stream_through() {
        let mut c = LruCache::new(50);
        c.insert(obj(0), 30);
        let evicted = c.insert(obj(1), 500);
        assert!(evicted.is_empty());
        assert!(!c.contains(&obj(1)));
        assert!(c.contains(&obj(0)));
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = LruCache::new(100);
        c.insert(obj(0), 40);
        c.insert(obj(0), 70);
        assert_eq!(c.used(), 70);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_frees_bytes() {
        let mut c = LruCache::new(100);
        c.insert(obj(0), 40);
        assert_eq!(c.remove(&obj(0)), Some(40));
        assert_eq!(c.used(), 0);
        assert_eq!(c.remove(&obj(0)), None);
    }

    #[test]
    fn retain_drops_matching() {
        let mut c = LruCache::new(1000);
        c.insert(CacheObject::PrivateTable { job: 0, pid: 0 }, 10);
        c.insert(CacheObject::PrivateTable { job: 1, pid: 0 }, 10);
        c.retain(|o| !matches!(o, CacheObject::PrivateTable { job: 0, .. }));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 10);
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(100);
        c.insert(obj(0), 10);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn nested_pins_require_matching_unpins() {
        let mut c = LruCache::new(100);
        c.insert(obj(0), 60);
        // Two concurrent slots pin the same structure.
        c.pin(&obj(0));
        c.pin(&obj(0));
        assert_eq!(c.pin_count(&obj(0)), 2);
        assert_eq!(c.pinned_bytes(), 60);
        c.unpin(&obj(0));
        // One slot still holds it: eviction must not touch it.
        c.insert(obj(1), 60);
        assert!(c.contains(&obj(0)), "object evicted while still pinned");
        c.unpin(&obj(0));
        assert_eq!(c.pin_count(&obj(0)), 0);
        c.insert(obj(2), 60);
        assert!(
            !c.contains(&obj(0)),
            "fully unpinned object stays evictable"
        );
    }

    #[test]
    fn unpin_of_absent_or_unpinned_is_noop() {
        let mut c = LruCache::new(100);
        c.unpin(&obj(9));
        c.insert(obj(0), 10);
        c.unpin(&obj(0));
        assert_eq!(c.pin_count(&obj(0)), 0);
        c.pin(&obj(0));
        assert_eq!(c.pin_count(&obj(0)), 1);
    }

    #[test]
    fn all_pinned_overcommits_rather_than_fails() {
        let mut c = LruCache::new(100);
        c.insert(obj(0), 80);
        c.pin(&obj(0));
        c.insert(obj(1), 80);
        assert!(c.contains(&obj(0)));
        assert!(c.contains(&obj(1)));
        assert!(c.used() > c.capacity());
    }
}
