//! The two-tier (LLC + memory) hierarchy over an infinite disk.

use crate::lru::LruCache;
use crate::metrics::Metrics;
use crate::object::CacheObject;

/// Capacities for the two simulated tiers.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// Simulated LLC capacity in bytes (the paper's testbed had a 20 MB
    /// LLC per socket; experiments scale this with the shrunken datasets).
    pub cache_bytes: u64,
    /// Simulated main-memory capacity in bytes (graphs larger than this
    /// incur disk I/O, reproducing the paper's out-of-core regime for
    /// hyperlink14).
    pub memory_bytes: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig { cache_bytes: 4 << 20, memory_bytes: 256 << 20 }
    }
}

/// Where an access was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Served from the cache tier without a transfer.
    pub cache_hit: bool,
    /// On a cache miss, whether the object was at least memory-resident.
    pub memory_hit: bool,
    /// Bytes transferred memory → cache by this access.
    pub bytes_from_memory: u64,
    /// Bytes transferred disk → memory by this access.
    pub bytes_from_disk: u64,
}

/// LLC + memory tiers with byte-accurate transfer accounting.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    cache: LruCache,
    memory: LruCache,
    metrics: Metrics,
}

impl MemoryHierarchy {
    /// Creates a hierarchy with the given tier capacities.
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryHierarchy {
            cache: LruCache::new(config.cache_bytes),
            memory: LruCache::new(config.memory_bytes),
            metrics: Metrics::default(),
        }
    }

    /// Accesses `obj` (`bytes` big), simulating the transfers a real
    /// hierarchy would perform and updating the counters.
    pub fn access(&mut self, obj: CacheObject, bytes: u64) -> AccessOutcome {
        self.metrics.cache_accesses += 1;
        if self.cache.touch(&obj) {
            return AccessOutcome {
                cache_hit: true,
                memory_hit: true,
                bytes_from_memory: 0,
                bytes_from_disk: 0,
            };
        }
        self.metrics.cache_misses += 1;
        self.metrics.bytes_mem_to_cache += bytes;
        let memory_hit = self.memory.touch(&obj);
        let mut from_disk = 0;
        if !memory_hit {
            self.metrics.memory_misses += 1;
            self.metrics.bytes_disk_to_mem += bytes;
            from_disk = bytes;
            self.memory.insert(obj, bytes);
        }
        self.cache.insert(obj, bytes);
        AccessOutcome {
            cache_hit: false,
            memory_hit,
            bytes_from_memory: bytes,
            bytes_from_disk: from_disk,
        }
    }

    /// Pins `obj` in the cache tier (reference-counted; see
    /// [`LruCache::pin`]).
    pub fn pin(&mut self, obj: &CacheObject) {
        self.cache.pin(obj);
    }

    /// Releases one pin of `obj` in the cache tier.
    pub fn unpin(&mut self, obj: &CacheObject) {
        self.cache.unpin(obj);
    }

    /// Bytes the cache tier currently holds pinned — the concurrent
    /// wavefront's resident structure footprint.
    pub fn pinned_bytes(&self) -> u64 {
        self.cache.pinned_bytes()
    }

    /// Whether `obj` is cache-resident.
    pub fn in_cache(&self, obj: &CacheObject) -> bool {
        self.cache.contains(obj)
    }

    /// Whether `obj` is memory-resident.
    pub fn in_memory(&self, obj: &CacheObject) -> bool {
        self.memory.contains(obj)
    }

    /// Drops all state belonging to a finished job from both tiers.
    pub fn evict_job(&mut self, job: u32) {
        let keep = |o: &CacheObject| match *o {
            CacheObject::PrivateTable { job: j, .. } | CacheObject::JobStructure { job: j, .. } => {
                j != job
            }
            CacheObject::Structure { .. } => true,
        };
        self.cache.retain(keep);
        self.memory.retain(keep);
    }

    /// Invalidate one object everywhere (e.g. a re-versioned partition).
    pub fn invalidate(&mut self, obj: &CacheObject) {
        self.cache.remove(obj);
        self.memory.remove(obj);
    }

    /// Accumulated counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable counters (engines add compute/sync ops here).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The cache tier (read-only, for inspection in tests).
    pub fn cache(&self) -> &LruCache {
        &self.cache
    }

    /// Resets counters but keeps residency (for warm-cache intervals).
    pub fn reset_metrics(&mut self) {
        self.metrics = Metrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pid: u32) -> CacheObject {
        CacheObject::Structure { pid, version: 0 }
    }

    fn small() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig { cache_bytes: 100, memory_bytes: 300 })
    }

    #[test]
    fn cold_access_goes_to_disk() {
        let mut h = small();
        let out = h.access(obj(0), 50);
        assert!(!out.cache_hit);
        assert!(!out.memory_hit);
        assert_eq!(out.bytes_from_disk, 50);
        assert_eq!(h.metrics().bytes_disk_to_mem, 50);
        assert_eq!(h.metrics().bytes_mem_to_cache, 50);
    }

    #[test]
    fn second_access_hits_cache() {
        let mut h = small();
        h.access(obj(0), 50);
        let out = h.access(obj(0), 50);
        assert!(out.cache_hit);
        assert_eq!(h.metrics().cache_misses, 1);
        assert_eq!(h.metrics().cache_accesses, 2);
    }

    #[test]
    fn cache_evicted_but_memory_resident_avoids_disk() {
        let mut h = small();
        h.access(obj(0), 60);
        h.access(obj(1), 60); // evicts 0 from cache, both fit in memory
        let out = h.access(obj(0), 60);
        assert!(!out.cache_hit);
        assert!(out.memory_hit, "object should still be memory-resident");
        assert_eq!(h.metrics().bytes_disk_to_mem, 120);
    }

    #[test]
    fn memory_pressure_reaches_disk_again() {
        let mut h = small();
        for pid in 0..6 {
            h.access(obj(pid), 60); // 360 bytes > 300 memory
        }
        let before = h.metrics().bytes_disk_to_mem;
        h.access(obj(0), 60); // evicted from memory by now
        assert_eq!(h.metrics().bytes_disk_to_mem, before + 60);
    }

    #[test]
    fn evict_job_keeps_shared_structure() {
        let mut h = small();
        h.access(CacheObject::PrivateTable { job: 1, pid: 0 }, 10);
        h.access(obj(0), 10);
        h.evict_job(1);
        assert!(h.in_cache(&obj(0)));
        assert!(!h.in_cache(&CacheObject::PrivateTable { job: 1, pid: 0 }));
    }

    #[test]
    fn invalidate_removes_from_both_tiers() {
        let mut h = small();
        h.access(obj(0), 10);
        h.invalidate(&obj(0));
        assert!(!h.in_cache(&obj(0)));
        assert!(!h.in_memory(&obj(0)));
    }

    #[test]
    fn miss_rate_tracks_interference() {
        // Two "jobs" alternating over a working set twice the cache size
        // must thrash; a single job half the size must not.
        let mut h =
            MemoryHierarchy::new(HierarchyConfig { cache_bytes: 100, memory_bytes: 10_000 });
        for _ in 0..10 {
            for pid in 0..4 {
                h.access(obj(pid), 50);
            }
        }
        let thrash = h.metrics().cache_miss_rate();
        let mut h2 =
            MemoryHierarchy::new(HierarchyConfig { cache_bytes: 100, memory_bytes: 10_000 });
        for _ in 0..10 {
            for pid in 0..2 {
                h2.access(obj(pid), 50);
            }
        }
        assert!(thrash > h2.metrics().cache_miss_rate());
    }

    #[test]
    fn reset_metrics_keeps_residency() {
        let mut h = small();
        h.access(obj(0), 50);
        h.reset_metrics();
        assert_eq!(h.metrics().cache_accesses, 0);
        assert!(h.access(obj(0), 50).cache_hit);
    }
}
