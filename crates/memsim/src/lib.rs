//! Memory-hierarchy simulator for the CGraph reproduction.
//!
//! The paper's evaluation is dominated by *where data moves*: LLC miss rates
//! (Fig. 11/18), bytes swapped into the cache (Fig. 12), disk I/O (Fig. 13)
//! and the resulting data-access-to-computation ratio (Fig. 10/17).  A real
//! hardware cache cannot be measured deterministically in CI, so every
//! engine in this workspace routes its partition-granular loads through this
//! simulator instead:
//!
//! * [`CacheObject`] — the unit of residency: a shared structure partition
//!   at a version, a per-job structure copy, or a per-job private state
//!   table.  Partition granularity is the granularity the paper itself
//!   reasons at ("assume that the cache can only store a partition").
//! * [`LruCache`] — one tier with byte capacity, LRU eviction and pinning.
//! * [`MemoryHierarchy`] — LLC + main-memory tiers over an infinite disk,
//!   charging `memory → cache` and `disk → memory` transfers.
//! * [`Metrics`] / [`CostModel`] — counters and the bandwidth/latency model
//!   that converts them into modeled seconds, so "execution time" figures
//!   are reproducible on any host.
//!
//! # Examples
//!
//! ```
//! use cgraph_memsim::{CacheObject, HierarchyConfig, MemoryHierarchy};
//!
//! let mut hier = MemoryHierarchy::new(HierarchyConfig {
//!     cache_bytes: 1 << 14,
//!     memory_bytes: 1 << 20,
//! });
//! let obj = CacheObject::Structure { pid: 0, version: 0 };
//! let first = hier.access(obj, 4096);
//! assert!(!first.cache_hit);
//! let second = hier.access(obj, 4096);
//! assert!(second.cache_hit);
//! ```

pub mod cost;
pub mod hierarchy;
pub mod lru;
pub mod metrics;
pub mod object;

pub use cost::{CostModel, StageTimes};
pub use hierarchy::{AccessOutcome, HierarchyConfig, MemoryHierarchy};
pub use lru::LruCache;
pub use metrics::{JobMetrics, Metrics};
pub use object::CacheObject;
