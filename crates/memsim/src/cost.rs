//! The bandwidth/latency model converting [`Metrics`] into modeled time.
//!
//! Every engine pays the same per-byte and per-op prices, so *relative*
//! results — who wins, by what factor, where crossovers fall — are
//! preserved even though absolute numbers differ from the paper's Xeon
//! testbed.

use crate::metrics::{JobMetrics, Metrics};

/// The three pipeline stage times of one metrics interval, as charged by
/// the wavefront executor's cost model:
///
/// 1. **fetch** — disk → memory transfer time.  The slowest resource
///    (`disk_bandwidth`), but shardable: each snapshot-store shard is an
///    independent I/O lane, so fetches of slots on distinct shards
///    proceed in parallel when a prefetch queue issues them early.
/// 2. **install** — memory → cache transfer time plus per-miss latency,
///    serialized on the one shared memory channel.
/// 3. **compute** — Trigger work, divided across the worker cores.
///
/// `fetch + install` is exactly the old two-stage "access" leg, so a
/// pipeline that fuses the first two stages reproduces the two-stage
/// flow-shop model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimes {
    /// Stage one: disk → memory fetch seconds (per-shard I/O lanes).
    pub fetch: f64,
    /// Stage two: memory → cache install seconds (shared channel).
    pub install: f64,
    /// Stage three: parallelized compute seconds (worker cores).
    pub compute: f64,
}

impl StageTimes {
    /// The fused data-access leg (`fetch + install`) — the stage-one
    /// time of the two-stage model.
    pub fn access(&self) -> f64 {
        self.fetch + self.install
    }

    /// Linear (no-overlap) total of all three stages.
    pub fn total(&self) -> f64 {
        self.fetch + self.install + self.compute
    }
}

/// Cost parameters, loosely calibrated to the paper's platform (4-way
/// 8-core Xeon E5-2670, 64 GB RAM, magnetic disk).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Memory → LLC bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Disk → memory bandwidth in bytes/second.
    pub disk_bandwidth: f64,
    /// Fixed latency per cache miss, in seconds.
    pub miss_latency: f64,
    /// Compute cost per edge operation, in seconds.
    pub edge_op: f64,
    /// Compute cost per vertex operation, in seconds.
    pub vertex_op: f64,
    /// Cost per synchronization record, in seconds.
    pub sync_op: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mem_bandwidth: 20.0e9, // ~20 GB/s effective per-channel
            disk_bandwidth: 0.5e9, // sequential streaming from disk/RAID
            miss_latency: 80e-9,
            edge_op: 4e-9,
            vertex_op: 8e-9,
            sync_op: 10e-9,
        }
    }
}

impl CostModel {
    /// Modeled data-access time: transfer time plus per-miss latency.
    pub fn access_seconds(&self, m: &Metrics) -> f64 {
        m.bytes_mem_to_cache as f64 / self.mem_bandwidth
            + m.bytes_disk_to_mem as f64 / self.disk_bandwidth
            + m.cache_misses as f64 * self.miss_latency
    }

    /// Modeled compute time (single-threaded total work).
    pub fn compute_seconds(&self, m: &Metrics) -> f64 {
        m.edge_ops as f64 * self.edge_op
            + m.vertex_ops as f64 * self.vertex_op
            + m.sync_ops as f64 * self.sync_op
    }

    /// Modeled makespan with `workers` cores: compute parallelizes across
    /// workers; data access serializes on the shared channel (the paper's
    /// bandwidth wall).
    pub fn total_seconds(&self, m: &Metrics, workers: usize) -> f64 {
        self.access_seconds(m) + self.compute_seconds(m) / workers.max(1) as f64
    }

    /// The three stage times of a metrics interval — disk fetch, memory
    /// install, and Trigger compute — the legs the pipelined executor
    /// overlaps (see [`StageTimes`]).  `fetch + install` equals
    /// [`access_seconds`](Self::access_seconds) and the three-way total
    /// equals [`total_seconds`](Self::total_seconds) for the same
    /// interval (up to float regrouping).
    pub fn stage_seconds(&self, m: &Metrics, workers: usize) -> StageTimes {
        StageTimes {
            fetch: m.bytes_disk_to_mem as f64 / self.disk_bandwidth,
            install: m.bytes_mem_to_cache as f64 / self.mem_bandwidth
                + m.cache_misses as f64 * self.miss_latency,
            compute: self.compute_seconds(m) / workers.max(1) as f64,
        }
    }

    /// Modeled CPU utilization in `[0, 1]`: useful compute over total
    /// core-time during the makespan (the paper's Fig. 15).
    pub fn utilization(&self, m: &Metrics, workers: usize) -> f64 {
        let total = self.total_seconds(m, workers);
        if total <= 0.0 {
            return 0.0;
        }
        self.compute_seconds(m) / (workers.max(1) as f64 * total)
    }

    /// Per-job modeled time from attributed metrics: amortized access cost
    /// plus the job's own compute.
    ///
    /// `sharers` is the number of jobs contending for the data-access
    /// channel while this job runs (1 when jobs run sequentially): each
    /// job sees `1/sharers` of the bandwidth, which is what prolongs
    /// per-job time under concurrency in the paper's Fig. 2 — unless, as
    /// in CGraph, sharing shrinks the attributed bytes to compensate.
    pub fn job_seconds(&self, j: &JobMetrics, workers: usize, sharers: usize) -> f64 {
        let access = self.job_access_seconds(j, sharers);
        let compute = j.edge_ops as f64 * self.edge_op
            + j.vertex_ops as f64 * self.vertex_op
            + j.sync_ops as f64 * self.sync_op;
        access + compute / workers.max(1) as f64
    }

    /// The access component of [`job_seconds`](Self::job_seconds).
    pub fn job_access_seconds(&self, j: &JobMetrics, sharers: usize) -> f64 {
        let sharers = sharers.max(1) as f64;
        (j.attributed_bytes / self.mem_bandwidth + j.attributed_misses * self.miss_latency)
            * sharers
    }

    /// Per-job access share of total modeled time in `[0, 1]`
    /// (Fig. 10's breakdown).
    pub fn job_access_ratio(&self, j: &JobMetrics, workers: usize, sharers: usize) -> f64 {
        let total = self.job_seconds(j, workers, sharers);
        if total <= 0.0 {
            return 0.0;
        }
        self.job_access_seconds(j, sharers) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_traffic_dominates_memory_traffic() {
        let cm = CostModel::default();
        let mem_only = Metrics { bytes_mem_to_cache: 1 << 30, ..Metrics::default() };
        let disk = Metrics {
            bytes_mem_to_cache: 1 << 30,
            bytes_disk_to_mem: 1 << 30,
            ..Metrics::default()
        };
        assert!(cm.access_seconds(&disk) > 10.0 * cm.access_seconds(&mem_only));
    }

    #[test]
    fn compute_parallelizes_access_does_not() {
        let cm = CostModel::default();
        let m =
            Metrics { edge_ops: 1_000_000_000, bytes_mem_to_cache: 1 << 30, ..Metrics::default() };
        let t1 = cm.total_seconds(&m, 1);
        let t8 = cm.total_seconds(&m, 8);
        assert!(t8 < t1);
        assert!(t8 > cm.access_seconds(&m), "access floor must remain");
    }

    #[test]
    fn stage_seconds_sum_to_total() {
        let cm = CostModel::default();
        let m = Metrics {
            edge_ops: 1_000_000,
            vertex_ops: 10_000,
            sync_ops: 500,
            cache_misses: 200,
            bytes_mem_to_cache: 1 << 24,
            bytes_disk_to_mem: 1 << 20,
            ..Metrics::default()
        };
        for w in [1, 4, 16] {
            let st = cm.stage_seconds(&m, w);
            assert!((st.access() + st.compute - cm.total_seconds(&m, w)).abs() < 1e-12);
            assert!((st.total() - cm.total_seconds(&m, w)).abs() < 1e-12);
            assert!(st.fetch > 0.0 && st.install > 0.0 && st.compute > 0.0);
        }
    }

    #[test]
    fn stage_split_separates_disk_from_memory() {
        let cm = CostModel::default();
        let disk_only = Metrics { bytes_disk_to_mem: 1 << 30, ..Metrics::default() };
        let st = cm.stage_seconds(&disk_only, 4);
        assert!(st.fetch > 0.0);
        assert_eq!(st.install, 0.0);
        assert_eq!(st.compute, 0.0);
        let mem_only = Metrics { bytes_mem_to_cache: 1 << 30, ..Metrics::default() };
        let st = cm.stage_seconds(&mem_only, 4);
        assert_eq!(st.fetch, 0.0);
        assert!(st.install > 0.0);
        // Disk is the order-of-magnitude slower stage for equal bytes.
        assert!(
            cm.stage_seconds(&disk_only, 4).fetch > 10.0 * st.install,
            "disk fetch must dominate memory install"
        );
    }

    #[test]
    fn utilization_bounded() {
        let cm = CostModel::default();
        let m = Metrics { edge_ops: 1000, bytes_mem_to_cache: 10_000, ..Metrics::default() };
        for w in [1, 2, 8, 32] {
            let u = cm.utilization(&m, w);
            assert!((0.0..=1.0).contains(&u), "w={w} u={u}");
        }
        assert_eq!(cm.utilization(&Metrics::default(), 4), 0.0);
    }

    #[test]
    fn utilization_falls_with_more_access_traffic() {
        let cm = CostModel::default();
        let light =
            Metrics { edge_ops: 1_000_000, bytes_mem_to_cache: 1 << 20, ..Metrics::default() };
        let heavy =
            Metrics { edge_ops: 1_000_000, bytes_mem_to_cache: 1 << 28, ..Metrics::default() };
        assert!(cm.utilization(&light, 4) > cm.utilization(&heavy, 4));
    }

    #[test]
    fn job_access_ratio_bounded() {
        let cm = CostModel::default();
        let j = JobMetrics {
            edge_ops: 500,
            attributed_bytes: 1e6,
            attributed_misses: 10.0,
            ..JobMetrics::default()
        };
        let r = cm.job_access_ratio(&j, 4, 1);
        assert!((0.0..=1.0).contains(&r));
        assert_eq!(cm.job_access_ratio(&JobMetrics::default(), 4, 1), 0.0);
    }

    #[test]
    fn contention_prolongs_per_job_time() {
        let cm = CostModel::default();
        let j = JobMetrics {
            edge_ops: 1000,
            attributed_bytes: 1e8,
            attributed_misses: 100.0,
            ..JobMetrics::default()
        };
        let alone = cm.job_seconds(&j, 4, 1);
        let crowded = cm.job_seconds(&j, 4, 8);
        assert!(crowded > alone);
        assert!(cm.job_access_ratio(&j, 4, 8) > cm.job_access_ratio(&j, 4, 1));
    }
}
