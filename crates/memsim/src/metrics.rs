//! Access and compute counters.

/// Counters accumulated by a [`crate::MemoryHierarchy`] plus the compute
/// work reported by an engine.
///
/// All "time" figures in the experiment harness derive from these via
/// [`crate::CostModel`], making runs reproducible across hosts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Object accesses that consulted the cache tier.
    pub cache_accesses: u64,
    /// Accesses that missed the cache tier.
    pub cache_misses: u64,
    /// Cache misses that also missed the memory tier (went to disk).
    pub memory_misses: u64,
    /// Bytes transferred memory → cache on misses
    /// (the paper's Fig. 12 "volume of data swapped into the cache").
    pub bytes_mem_to_cache: u64,
    /// Bytes transferred disk → memory (the paper's Fig. 13 I/O overhead).
    pub bytes_disk_to_mem: u64,
    /// Edge-scale compute operations (scatter along one edge).
    pub edge_ops: u64,
    /// Vertex-scale compute operations (consume/fold one vertex).
    pub vertex_ops: u64,
    /// State-synchronization records handled in Push.
    pub sync_ops: u64,
}

impl Metrics {
    /// Cache miss rate in `[0, 1]` (0 when nothing was accessed).
    pub fn cache_miss_rate(&self) -> f64 {
        if self.cache_accesses == 0 {
            0.0
        } else {
            self.cache_misses as f64 / self.cache_accesses as f64
        }
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &Metrics) {
        self.cache_accesses += other.cache_accesses;
        self.cache_misses += other.cache_misses;
        self.memory_misses += other.memory_misses;
        self.bytes_mem_to_cache += other.bytes_mem_to_cache;
        self.bytes_disk_to_mem += other.bytes_disk_to_mem;
        self.edge_ops += other.edge_ops;
        self.vertex_ops += other.vertex_ops;
        self.sync_ops += other.sync_ops;
    }

    /// Component-wise difference (`self - earlier`), for interval readings.
    pub fn since(&self, earlier: &Metrics) -> Metrics {
        Metrics {
            cache_accesses: self.cache_accesses - earlier.cache_accesses,
            cache_misses: self.cache_misses - earlier.cache_misses,
            memory_misses: self.memory_misses - earlier.memory_misses,
            bytes_mem_to_cache: self.bytes_mem_to_cache - earlier.bytes_mem_to_cache,
            bytes_disk_to_mem: self.bytes_disk_to_mem - earlier.bytes_disk_to_mem,
            edge_ops: self.edge_ops - earlier.edge_ops,
            vertex_ops: self.vertex_ops - earlier.vertex_ops,
            sync_ops: self.sync_ops - earlier.sync_ops,
        }
    }
}

/// Per-job attribution of work and (amortized) access traffic.
///
/// When a shared structure partition is loaded once and triggers `k` jobs,
/// each job is attributed `1/k` of the transfer — the amortization at the
/// heart of the paper's throughput gains (Fig. 10's per-job breakdown).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JobMetrics {
    /// Edge-scale compute operations performed by this job.
    pub edge_ops: u64,
    /// Vertex-scale compute operations performed by this job.
    pub vertex_ops: u64,
    /// Synchronization records pushed by this job.
    pub sync_ops: u64,
    /// Bytes of structure + private data attributed to this job.
    pub attributed_bytes: f64,
    /// Cache accesses attributed to this job.
    pub attributed_accesses: f64,
    /// Cache misses attributed to this job.
    pub attributed_misses: f64,
    /// Iterations the job ran until convergence.
    pub iterations: u64,
}

impl JobMetrics {
    /// Component-wise sum.
    pub fn add(&mut self, other: &JobMetrics) {
        self.edge_ops += other.edge_ops;
        self.vertex_ops += other.vertex_ops;
        self.sync_ops += other.sync_ops;
        self.attributed_bytes += other.attributed_bytes;
        self.attributed_accesses += other.attributed_accesses;
        self.attributed_misses += other.attributed_misses;
        self.iterations += other.iterations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero() {
        assert_eq!(Metrics::default().cache_miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_ratio() {
        let m = Metrics { cache_accesses: 10, cache_misses: 3, ..Metrics::default() };
        assert!((m.cache_miss_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn add_and_since_are_inverse() {
        let a = Metrics {
            cache_accesses: 5,
            cache_misses: 2,
            bytes_mem_to_cache: 100,
            edge_ops: 7,
            ..Metrics::default()
        };
        let mut b = a;
        let extra = Metrics { cache_accesses: 3, edge_ops: 1, ..Metrics::default() };
        b.add(&extra);
        assert_eq!(b.since(&a), extra);
    }

    #[test]
    fn job_metrics_accumulate() {
        let mut a = JobMetrics { edge_ops: 1, attributed_bytes: 0.5, ..JobMetrics::default() };
        a.add(&JobMetrics { edge_ops: 2, attributed_bytes: 1.5, ..JobMetrics::default() });
        assert_eq!(a.edge_ops, 3);
        assert!((a.attributed_bytes - 2.0).abs() < 1e-12);
    }
}
