//! Incremental recomputation: monotone vertex programs resume from a
//! prior converged result at O(Δ) cost.
//!
//! # Why resuming is sound
//!
//! A [`VertexProgram`] whose `acc` is an idempotent lattice meet/join
//! (min, max, or) computes the *least fixpoint* of its edge
//! constraints: at convergence every vertex holds the best value any
//! path can derive, and adding edges can only *improve* values further
//! (monotonicity).  So a converged result on snapshot `S` is a valid
//! over-approximation on `S + additions`: re-deriving it only needs the
//! prior values re-scattered across the vertices whose edge sets
//! changed.  [`TypedJob::resume_from`](crate::TypedJob::resume_from)
//! seeds exactly that state:
//!
//! * a **frontier** vertex (incident to an added edge) starts at
//!   `(bottom, prior)` — active, so its first Trigger re-derives
//!   `prior` and scatters it along *all* its edges, including the new
//!   ones (re-sending along old edges is harmless: neighbors already
//!   hold at-least-as-good values and the idempotent `acc` discards
//!   the duplicate);
//! * every other vertex starts at `(prior, identity)` — inactive until
//!   a genuine improvement reaches it through normal delta propagation.
//!
//! The engine then runs the ordinary Load–Trigger–Push rounds: work is
//! proportional to the region the new edges actually improve, not the
//! graph.  Because the accumulators are exact (no float summation
//! reordering — `min`/`max`/`or` only ever *select* a candidate), the
//! resumed fixpoint is bit-for-bit the from-scratch fixpoint, which the
//! `tests/incremental.rs` proptests pin across executor and store
//! configurations.
//!
//! # The removal fallback rule
//!
//! A removed edge can *shrink* what is derivable (a shorter path
//! disappears, a component splits), and a monotone program has no way
//! to retract an already-propagated value.  So a resume is attempted
//! only over addition-only delta ranges:
//! [`Engine::submit_resumed_at`](crate::Engine::submit_resumed_at)
//! consults [`SnapshotStore::delta_summary`] and falls back to a
//! from-scratch submission whenever the range carries any removal (or
//! the prior binds a newer snapshot than the target).  Results are
//! identical either way; only the cost differs.
//!
//! # Standing jobs
//!
//! A [`Standing`] runner owns one program plus its latest harvested
//! result and re-emits through the serve loop once per store version
//! (see [`ServeLoop::add_standing`](crate::ServeLoop::add_standing)):
//! each emission resumes from the previous one's result where the
//! delta range allows, and every emission journals like an ordinary
//! served job, so a killed loop replays finished emissions verbatim
//! and re-runs only the tail.  A journal-skipped emission's result is
//! unknown to the new incarnation, so the runner's prior is
//! [invalidated](StandingRunner::invalidate) and the next live
//! emission recomputes from scratch — correctness never depends on the
//! resume path being taken.

use crate::engine::Engine;
use crate::job::JobId;
use crate::program::VertexProgram;

/// A [`VertexProgram`] whose converged results may seed a later run on
/// a grown graph (see the [module docs](self) for the argument).
///
/// Implement this only for *monotone* programs: `acc` must be an
/// idempotent selection (min / max / or) and `edge_contrib` must be
/// monotone in its basis, so that added edges can only improve values.
/// Programs that sum contributions (e.g. PageRank) must **not**
/// implement it.
pub trait IncrementalProgram: VertexProgram {
    /// The "no information" value: `acc(bottom, x) == x`, and a vertex
    /// at `(bottom, prior)` re-derives exactly `prior` on its first
    /// Trigger.  For the lattice programs this is the `acc` identity,
    /// the default.
    fn bottom(&self) -> Self::Value {
        self.identity()
    }
}

/// What [`Engine::submit_resumed_at`](crate::Engine::submit_resumed_at)
/// did with a prior result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumeSubmit {
    /// The submitted job's id (seeded or not, it runs like any other).
    pub job: JobId,
    /// `true` when the job was seeded from the prior result; `false`
    /// when a removal (or a backwards range) forced the from-scratch
    /// fallback.
    pub seeded: bool,
}

/// Object-safe face of one standing job, as driven by the serve loop:
/// re-submit one emission per store version, harvest its result as the
/// next emission's prior, and forget the prior when a journal replay
/// skips an emission this incarnation never saw the result of.
pub trait StandingRunner: Send {
    /// Display name for report rows.
    fn name(&self) -> &'static str;
    /// Submits the emission bound at snapshot timestamp `ts`, resuming
    /// from the harvested prior when one is held.
    fn resubmit(&mut self, engine: &mut Engine, ts: u64) -> JobId;
    /// Harvests a converged emission (submitted at `ts`) as the prior
    /// for the next one.
    fn harvest(&mut self, engine: &Engine, job: JobId, ts: u64);
    /// Drops the held prior: a journal replay skipped an emission whose
    /// result this incarnation does not have, so the next live emission
    /// must recompute from scratch.
    fn invalidate(&mut self);
    /// Emissions whose submission was seeded incrementally so far.
    fn seeded(&self) -> u64;
    /// Emissions submitted (journal-skipped replays not counted).
    fn emitted(&self) -> u64;
}

/// The typed standing job: one cloneable [`IncrementalProgram`] plus
/// the latest harvested `(bind timestamp, values)` prior.
pub struct Standing<P: IncrementalProgram + Clone> {
    name: &'static str,
    program: P,
    prior: Option<(u64, Vec<P::Value>)>,
    seeded: u64,
    emitted: u64,
}

impl<P: IncrementalProgram + Clone> Standing<P> {
    /// A standing job re-emitting `program` once per store version.
    pub fn new(name: &'static str, program: P) -> Self {
        Standing { name, program, prior: None, seeded: 0, emitted: 0 }
    }

    /// Boxes the runner for [`ServeLoop::add_standing`](crate::ServeLoop::add_standing).
    pub fn boxed(self) -> Box<dyn StandingRunner> {
        Box::new(self)
    }
}

impl<P: IncrementalProgram + Clone> StandingRunner for Standing<P> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn resubmit(&mut self, engine: &mut Engine, ts: u64) -> JobId {
        self.emitted += 1;
        match &self.prior {
            Some((prior_ts, values)) => {
                let r = engine.submit_resumed_at(self.program.clone(), ts, *prior_ts, values);
                if r.seeded {
                    self.seeded += 1;
                }
                r.job
            }
            None => engine.submit_at(self.program.clone(), ts),
        }
    }

    fn harvest(&mut self, engine: &Engine, job: JobId, ts: u64) {
        if let Some(values) = engine.results::<P>(job) {
            self.prior = Some((ts, values));
        }
    }

    fn invalidate(&mut self) {
        self.prior = None;
    }

    fn seeded(&self) -> u64 {
        self.seeded
    }

    fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VertexInfo;
    use cgraph_graph::Weight;

    /// Minimal monotone min-propagation program.
    #[derive(Clone)]
    struct MinProg;

    impl VertexProgram for MinProg {
        type Value = u32;

        fn init(&self, info: &VertexInfo) -> (u32, u32) {
            if info.vid == 0 {
                (u32::MAX, 0)
            } else {
                (u32::MAX, u32::MAX)
            }
        }

        fn identity(&self) -> u32 {
            u32::MAX
        }

        fn acc(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn is_active(&self, value: &u32, delta: &u32) -> bool {
            delta < value
        }

        fn compute(&self, _i: &VertexInfo, value: u32, delta: u32) -> (u32, Option<u32>) {
            if delta < value {
                (delta, Some(delta))
            } else {
                (value, None)
            }
        }

        fn edge_contrib(&self, basis: u32, _w: Weight, _i: &VertexInfo) -> u32 {
            basis.saturating_add(1)
        }
    }

    impl IncrementalProgram for MinProg {}

    #[test]
    fn bottom_defaults_to_the_acc_identity() {
        assert_eq!(MinProg.bottom(), MinProg.identity());
    }

    #[test]
    fn standing_runner_tracks_prior_and_counters() {
        let mut s = Standing::new("min", MinProg);
        assert_eq!(s.name(), "min");
        assert_eq!((s.seeded(), s.emitted()), (0, 0));
        s.prior = Some((3, vec![0, 1]));
        s.invalidate();
        assert!(s.prior.is_none(), "invalidate drops the prior");
    }
}
