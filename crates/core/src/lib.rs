//! The CGraph LTP (Load–Trigger–Push) execution engine.
//!
//! This crate is the paper's primary contribution: an execution model that
//! lets many **C**oncurrent iterative **G**raph **P**rocessing jobs share
//! the graph-structure data — and the *accesses* to it — by exploiting the
//! spatial and temporal correlations between their data accesses.
//!
//! * [`VertexProgram`] — the three-function user API
//!   (`IsNotConvergent` / `Compute` / `Acc`, paper §3.4) expressed as a
//!   typed delta-accumulator program.
//! * [`TypedJob`] / [`JobRuntime`] — one running job: private state tables
//!   decoupled from the shared structure (§3.1), Trigger (Alg. 1) and the
//!   batched sorted Push (Alg. 2).
//! * [`Engine`] — the executor (Alg. 3): loads a scheduler-planned
//!   wavefront of structure partitions once per round through the
//!   simulated memory hierarchy, triggers every interested job (in
//!   batches, with straggler splitting, one shared chunk-task drain per
//!   round), then runs each finishing job's Push.
//! * [`exec`] — the layered execution core the engine composes: the
//!   incrementally maintained slot planner, the unified charge ledger,
//!   and the pipelined wavefront round executor.
//! * [`scheduler`] — the correlations-aware priority scheduler
//!   (`Pri(P) = N(P) + θ·D(P)·C(P)`, Eq. 1) and the fixed-order ablation,
//!   extended to plan multi-slot wavefronts (optionally with whole-wave
//!   shared-job lookahead, `EngineConfig::lookahead`).
//! * [`serve`] — the online serving layer: an admission-controlled
//!   arrival stream released as version-keyed waves, interleaved with
//!   execution round by round through [`Engine::step_round`].
//! * [`incr`] — incremental recomputation: monotone programs resume
//!   from a prior converged result at O(Δ) cost, and [`Standing`] jobs
//!   re-emit one result per store version through the serve loop.
//! * [`obs`] — zero-cost-when-disabled tracing and metrics: per-thread
//!   lock-free event rings, a counter/gauge/histogram registry, and
//!   Chrome-trace / JSONL / Prometheus exporters.
//! * [`fault`] — the seeded, deterministic fault plane: typed
//!   transient/permanent faults and modeled latency spikes injected at
//!   every I/O boundary from a reproducible schedule, with retries,
//!   per-lane circuit breakers, and quarantine instead of engine abort.
//!
//! Concrete algorithms (PageRank, SSSP, BFS, WCC, SCC, …) live in
//! `cgraph-algos`; baseline engines that drive the *same* job runtimes with
//! per-job access patterns live in `cgraph-baselines`.

pub mod api;
pub mod engine;
pub mod exec;
pub mod fault;
pub mod incr;
pub mod job;
pub mod obs;
pub mod program;
pub mod scheduler;
pub mod serve;
pub mod state;
pub mod workers;

pub use api::JobEngine;
pub use engine::{Engine, EngineConfig, RunReport, SchedulerKind, SyncStrategy};
pub use exec::{ChargeLedger, ExecError, JobTiming, PrefetchQueue, SlotPlanner};
pub use fault::{
    BreakerConfig, FaultBoundary, FaultConfig, FaultError, FaultKind, FaultPlane, FaultStats,
    FetchAdmission, RetryPolicy,
};
pub use incr::{IncrementalProgram, ResumeSubmit, Standing, StandingRunner};
pub use job::{JobId, JobRuntime, ProcessStats, PushStats, TypedJob};
pub use obs::{Observer, Recorder, Registry, TraceDump};
pub use program::{EdgeDirection, VertexInfo, VertexProgram};
pub use scheduler::{OrderScheduler, PriorityScheduler, Scheduler, SlotInfo};
pub use serve::{
    AdmissionController, Arrival, JobLatency, JobOutcome, JobRow, ServeConfig, ServeJournal,
    ServeLoop, ServeReport,
};
