//! The user-facing vertex-program abstraction.
//!
//! The paper's programming interface is three functions —
//! `IsNotConvergent()`, `Compute()` and `Acc()` (§3.4, Fig. 7).  This trait
//! is the same contract factored for a typed engine: `Compute()` splits
//! into its value-update half ([`VertexProgram::compute`]) and its per-edge
//! half ([`VertexProgram::edge_contrib`]) so the engine can parallelize the
//! scatter without re-entering user code for bookkeeping.

use cgraph_graph::{VertexId, Weight};

/// Which adjacency a program traverses when scattering contributions.
///
/// Every structure partition stores both CSR orientations over its edge
/// share, so backward-traversing phases (e.g. SCC's backward reachability)
/// run on the *same* shared partitions as forward jobs — no second graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeDirection {
    /// Scatter along out-edges (source → destination).
    Out,
    /// Scatter along in-edges (destination → source).
    In,
    /// Scatter along both orientations (undirected semantics, e.g. WCC).
    Both,
}

/// Static per-vertex information available to a program.
#[derive(Clone, Copy, Debug)]
pub struct VertexInfo {
    /// Global vertex id.
    pub vid: VertexId,
    /// Whole-graph out-degree.
    pub out_degree: u32,
    /// Whole-graph in-degree.
    pub in_degree: u32,
}

/// A delta-accumulator vertex program (one CGP job's logic).
///
/// # Semantics
///
/// Each vertex carries a `(value, delta)` pair of type
/// [`Value`](VertexProgram::Value).  Within an iteration, for every vertex
/// whose pending delta is *active* ([`is_active`](VertexProgram::is_active)
/// — the paper's `IsNotConvergent`), the engine:
///
/// 1. calls [`compute`](VertexProgram::compute) to fold the delta into the
///    value and obtain an optional *scatter basis*;
/// 2. for each local edge, calls [`edge_contrib`](VertexProgram::edge_contrib)
///    and accumulates the contribution into the neighbor's incoming delta
///    with [`acc`](VertexProgram::acc) (the paper's `Acc`).
///
/// New deltas become visible at the next iteration, after the Push stage
/// synchronizes replicas.  `acc` must be commutative and associative and
/// [`identity`](VertexProgram::identity) must be its identity element —
/// results are then independent of partition processing order.
pub trait VertexProgram: Send + Sync + 'static {
    /// The per-vertex state (and delta) type.
    type Value: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static;

    /// Human-readable job name for reports.
    fn name(&self) -> String {
        "job".to_string()
    }

    /// Traversal direction (default forward).
    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    /// Initial `(value, delta)` for a vertex.
    fn init(&self, info: &VertexInfo) -> (Self::Value, Self::Value);

    /// The identity element of [`acc`](Self::acc); a delta equal to this is
    /// "no pending work".
    fn identity(&self) -> Self::Value;

    /// Commutative, associative accumulation of two deltas.
    fn acc(&self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// The paper's `IsNotConvergent`: must the vertex be processed given
    /// its current value and pending delta?
    fn is_active(&self, value: &Self::Value, delta: &Self::Value) -> bool;

    /// Folds a pending delta into the value.
    ///
    /// Returns the new value and, if the change must propagate, the scatter
    /// basis passed to [`edge_contrib`](Self::edge_contrib).
    fn compute(
        &self,
        info: &VertexInfo,
        value: Self::Value,
        delta: Self::Value,
    ) -> (Self::Value, Option<Self::Value>);

    /// The contribution this vertex sends a neighbor over one edge.
    fn edge_contrib(&self, basis: Self::Value, weight: Weight, info: &VertexInfo) -> Self::Value;

    /// Magnitude of a delta, used by the scheduler's `C(P)` term (Eq. 1).
    /// The default treats every activation as magnitude 1.
    fn delta_magnitude(&self, _delta: &Self::Value) -> f64 {
        1.0
    }

    /// Final readout: fold any residual (inactive) delta into the value.
    /// The default re-uses [`compute`](Self::compute).
    fn finalize(&self, info: &VertexInfo, value: Self::Value, delta: Self::Value) -> Self::Value {
        if delta == self.identity() {
            value
        } else {
            self.compute(info, value, delta).0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal min-propagation program for trait-default tests.
    struct MinProg;

    impl VertexProgram for MinProg {
        type Value = u32;

        fn init(&self, info: &VertexInfo) -> (u32, u32) {
            if info.vid == 0 {
                (u32::MAX, 0)
            } else {
                (u32::MAX, u32::MAX)
            }
        }

        fn identity(&self) -> u32 {
            u32::MAX
        }

        fn acc(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn is_active(&self, value: &u32, delta: &u32) -> bool {
            delta < value
        }

        fn compute(&self, _info: &VertexInfo, value: u32, delta: u32) -> (u32, Option<u32>) {
            if delta < value {
                (delta, Some(delta))
            } else {
                (value, None)
            }
        }

        fn edge_contrib(&self, basis: u32, _w: Weight, _info: &VertexInfo) -> u32 {
            basis.saturating_add(1)
        }
    }

    #[test]
    fn default_name_and_direction() {
        let p = MinProg;
        assert_eq!(p.name(), "job");
        assert_eq!(p.direction(), EdgeDirection::Out);
    }

    #[test]
    fn finalize_folds_residual_delta() {
        let p = MinProg;
        let info = VertexInfo { vid: 1, out_degree: 0, in_degree: 0 };
        assert_eq!(p.finalize(&info, 10, 3), 3);
        assert_eq!(p.finalize(&info, 10, u32::MAX), 10);
    }

    #[test]
    fn default_magnitude_is_one() {
        assert_eq!(MinProg.delta_magnitude(&5), 1.0);
    }
}
