//! Partition-loading schedulers (paper §3.3, Eq. 1).

use cgraph_graph::{PartitionId, VersionId};

/// Everything the scheduler may consider about one loadable slot — a
/// `(partition, snapshot version)` pair needed by at least one job.
#[derive(Clone, Copy, Debug)]
pub struct SlotInfo {
    /// Partition id.
    pub pid: PartitionId,
    /// Snapshot version of the partition.
    pub version: VersionId,
    /// The snapshot-store shard (stage-one I/O lane) the partition is
    /// placed on; slots on distinct shards can fetch in parallel.
    pub shard: usize,
    /// `N(P)`: jobs that will process this slot now (temporal correlation).
    pub num_jobs: usize,
    /// `D(P)`: average whole-graph degree of the partition's replicas.
    pub avg_degree: f64,
    /// `C(P)`: average state-change magnitude at the previous iteration,
    /// averaged over the interested jobs.
    pub avg_change: f64,
}

/// Chooses which pending slot(s) to load next.
pub trait Scheduler: Send {
    /// Returns the index of the chosen slot.  `slots` is never empty.
    fn pick(&mut self, slots: &[SlotInfo]) -> usize;

    /// Plans a wavefront of up to `width` distinct slots, most urgent
    /// first.  `slots` is never empty; the result is non-empty, has no
    /// duplicates, and `plan(slots, 1)` equals `[pick(slots)]`.
    ///
    /// The default implementation picks greedily: it calls [`pick`]
    /// (Self::pick) on the not-yet-chosen remainder once per wave slot,
    /// so every existing scheduler keeps its exact single-slot semantics
    /// and gains a consistent multi-slot extension for free.
    fn plan(&mut self, slots: &[SlotInfo], width: usize) -> Vec<usize> {
        let width = width.clamp(1, slots.len());
        if width == 1 {
            return vec![self.pick(slots)];
        }
        let mut remaining: Vec<usize> = (0..slots.len()).collect();
        let mut chosen = Vec::with_capacity(width);
        for _ in 0..width {
            let view: Vec<SlotInfo> = remaining.iter().map(|&i| slots[i]).collect();
            let local = self.pick(&view);
            chosen.push(remaining.remove(local));
        }
        chosen
    }

    /// Plans a wavefront like [`plan`](Self::plan), additionally given
    /// each slot's interested-job list (`slot_jobs[i]` is ascending and
    /// aligned with `slots[i]`) so the scheduler can score candidate
    /// waves by whole-wave job overlap.  The default implementation
    /// ignores the job lists and delegates to `plan`, so schedulers
    /// without a lookahead policy behave identically either way.
    fn plan_with_jobs(
        &mut self,
        slots: &[SlotInfo],
        slot_jobs: &[&[usize]],
        width: usize,
    ) -> Vec<usize> {
        debug_assert_eq!(slots.len(), slot_jobs.len());
        let _ = slot_jobs;
        self.plan(slots, width)
    }

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;
}

/// Number of common elements of two ascending job lists (merge count).
fn shared_jobs(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The paper's correlations-aware priority scheduler:
/// `Pri(P) = N(P) + θ·D(P)·C(P)` with `0 ≤ θ < 1/(Dmax·Cmax)` so the
/// job-count term dominates and the degree/change product breaks ties.
///
/// `theta` here is the *fraction* of the admissible range: the effective
/// θ is `theta / (Dmax·Cmax)`, re-derived from the live slot set exactly as
/// the paper's runtime system derives it from profiled maxima.
#[derive(Clone, Copy, Debug)]
pub struct PriorityScheduler {
    /// Fraction of the admissible θ range, in `[0, 1)`.
    pub theta: f64,
}

impl PriorityScheduler {
    /// Creates a scheduler with the given θ fraction.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is outside `[0, 1)`.
    pub fn new(theta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&theta),
            "theta fraction must be in [0, 1)"
        );
        PriorityScheduler { theta }
    }

    /// The priority of a slot given the live maxima.
    pub fn priority(&self, slot: &SlotInfo, dmax: f64, cmax: f64) -> f64 {
        let scale = dmax * cmax;
        let theta_eff = if scale > 0.0 { self.theta / scale } else { 0.0 };
        slot.num_jobs as f64 + theta_eff * slot.avg_degree * slot.avg_change
    }
}

impl Scheduler for PriorityScheduler {
    /// Greedy repeated `pick`, with a shard-aware tie-break: among slots
    /// of exactly the winning priority, prefer one on a shard the wave
    /// has not claimed yet, so the prefetch pipeline's stage-one I/O
    /// lanes stay busy instead of queueing behind one shard.  With one
    /// shard (or no exact ties) this reduces to the default greedy plan,
    /// keeping the single-shard schedule bit-for-bit.
    fn plan(&mut self, slots: &[SlotInfo], width: usize) -> Vec<usize> {
        let width = width.clamp(1, slots.len());
        let mut remaining: Vec<usize> = (0..slots.len()).collect();
        let mut chosen = Vec::with_capacity(width);
        let mut used_shards: Vec<usize> = Vec::with_capacity(width);
        for _ in 0..width {
            // The maxima are re-derived from the live remainder exactly
            // as `pick` would, so the first strict maximum matches it.
            let dmax = remaining
                .iter()
                .map(|&i| slots[i].avg_degree)
                .fold(0.0, f64::max);
            let cmax = remaining
                .iter()
                .map(|&i| slots[i].avg_change)
                .fold(0.0, f64::max);
            // One pass: track `pick`'s answer (first strict maximum) and
            // the first same-priority slot on a shard the wave has not
            // claimed — spreading ties across shards costs no priority.
            let mut best = 0usize;
            let mut best_pri = f64::NEG_INFINITY;
            let mut tied_unused: Option<usize> = None;
            for (pos, &i) in remaining.iter().enumerate() {
                let pri = self.priority(&slots[i], dmax, cmax);
                let unused = || !used_shards.contains(&slots[i].shard);
                if pri > best_pri {
                    best_pri = pri;
                    best = pos;
                    tied_unused = if unused() { Some(pos) } else { None };
                } else if pri == best_pri && tied_unused.is_none() && unused() {
                    tied_unused = Some(pos);
                }
            }
            let local = tied_unused.unwrap_or(best);
            used_shards.push(slots[remaining[local]].shard);
            chosen.push(remaining.remove(local));
        }
        chosen
    }

    /// Whole-wave lookahead (`EngineConfig::lookahead`): the first slot
    /// is exactly [`pick`](Self::pick), then each further slot maximizes
    /// the number of its jobs already riding the wave — so two slots
    /// serving the same job pair are planned together even when a
    /// disjoint slot carries equal priority — with `Pri(P)` breaking
    /// overlap ties and first-maximum (key order) breaking exact ties.
    fn plan_with_jobs(
        &mut self,
        slots: &[SlotInfo],
        slot_jobs: &[&[usize]],
        width: usize,
    ) -> Vec<usize> {
        debug_assert_eq!(slots.len(), slot_jobs.len());
        let width = width.clamp(1, slots.len());
        let mut remaining: Vec<usize> = (0..slots.len()).collect();
        let first = self.pick(slots);
        let mut chosen = vec![first];
        remaining.retain(|&i| i != first);
        // The wave's job union, kept ascending for merge counting.
        let mut wave_jobs: Vec<usize> = slot_jobs[first].to_vec();
        while chosen.len() < width {
            let dmax = remaining
                .iter()
                .map(|&i| slots[i].avg_degree)
                .fold(0.0, f64::max);
            let cmax = remaining
                .iter()
                .map(|&i| slots[i].avg_change)
                .fold(0.0, f64::max);
            let mut best = 0usize;
            let mut best_score = (0usize, f64::NEG_INFINITY);
            for (pos, &i) in remaining.iter().enumerate() {
                let score = (
                    shared_jobs(slot_jobs[i], &wave_jobs),
                    self.priority(&slots[i], dmax, cmax),
                );
                if score.0 > best_score.0 || (score.0 == best_score.0 && score.1 > best_score.1) {
                    best_score = score;
                    best = pos;
                }
            }
            let slot = remaining.remove(best);
            wave_jobs.extend_from_slice(slot_jobs[slot]);
            wave_jobs.sort_unstable();
            wave_jobs.dedup();
            chosen.push(slot);
        }
        chosen
    }

    fn pick(&mut self, slots: &[SlotInfo]) -> usize {
        let dmax = slots.iter().map(|s| s.avg_degree).fold(0.0, f64::max);
        let cmax = slots.iter().map(|s| s.avg_change).fold(0.0, f64::max);
        let mut best = 0;
        let mut best_pri = f64::NEG_INFINITY;
        for (i, s) in slots.iter().enumerate() {
            let pri = self.priority(s, dmax, cmax);
            // Strict `>` keeps the lowest (pid, version) on ties because
            // the engine presents slots in sorted order.
            if pri > best_pri {
                best_pri = pri;
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "priority"
    }
}

/// Fixed-order loading (lowest partition id first): the `CGraph-without`
/// ablation of the paper's Fig. 8 — the LTP sharing remains, the
/// correlations-aware ordering does not.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrderScheduler;

impl Scheduler for OrderScheduler {
    fn pick(&mut self, slots: &[SlotInfo]) -> usize {
        let mut best = 0;
        for (i, s) in slots.iter().enumerate() {
            if (s.pid, s.version) < (slots[best].pid, slots[best].version) {
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "fixed-order"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(pid: u32, jobs: usize, deg: f64, chg: f64) -> SlotInfo {
        SlotInfo { pid, version: 0, shard: 0, num_jobs: jobs, avg_degree: deg, avg_change: chg }
    }

    fn sharded(pid: u32, shard: usize, jobs: usize) -> SlotInfo {
        SlotInfo { pid, version: 0, shard, num_jobs: jobs, avg_degree: 1.0, avg_change: 1.0 }
    }

    #[test]
    fn job_count_dominates_priority() {
        let mut s = PriorityScheduler::new(0.9);
        // Slot 1 has one more job but minimal degree/change; it must win
        // regardless of slot 0's huge degree.
        let slots = [slot(0, 2, 1000.0, 1000.0), slot(1, 3, 0.1, 0.1)];
        assert_eq!(s.pick(&slots), 1);
    }

    #[test]
    fn degree_change_product_breaks_ties() {
        let mut s = PriorityScheduler::new(0.5);
        let slots = [slot(0, 2, 5.0, 1.0), slot(1, 2, 50.0, 1.0)];
        assert_eq!(s.pick(&slots), 1);
    }

    #[test]
    fn theta_zero_reduces_to_job_count() {
        let mut s = PriorityScheduler::new(0.0);
        let slots = [slot(0, 2, 1.0, 1.0), slot(1, 2, 99.0, 99.0)];
        // Equal N, theta 0: first (lowest pid) wins.
        assert_eq!(s.pick(&slots), 0);
    }

    #[test]
    #[should_panic(expected = "theta fraction")]
    fn theta_out_of_range_rejected() {
        PriorityScheduler::new(1.0);
    }

    #[test]
    fn order_scheduler_ignores_priorities() {
        let mut s = OrderScheduler;
        let slots = [slot(3, 9, 9.0, 9.0), slot(1, 1, 0.0, 0.0)];
        assert_eq!(s.pick(&slots), 1);
    }

    #[test]
    fn priority_value_matches_formula() {
        let s = PriorityScheduler::new(0.5);
        let sl = slot(0, 4, 10.0, 2.0);
        // dmax=10, cmax=2 -> theta_eff = 0.5/20; pri = 4 + 0.025*20 = 4.5.
        let pri = s.priority(&sl, 10.0, 2.0);
        assert!((pri - 4.5).abs() < 1e-12);
    }

    #[test]
    fn zero_maxima_safe() {
        let s = PriorityScheduler::new(0.5);
        let sl = slot(0, 1, 0.0, 0.0);
        assert_eq!(s.priority(&sl, 0.0, 0.0), 1.0);
    }

    #[test]
    fn plan_width_one_equals_pick() {
        let slots = [
            slot(0, 2, 5.0, 1.0),
            slot(1, 3, 0.1, 0.1),
            slot(2, 3, 9.0, 2.0),
        ];
        let mut pri = PriorityScheduler::new(0.7);
        assert_eq!(pri.plan(&slots, 1), vec![pri.pick(&slots)]);
        let mut ord = OrderScheduler;
        assert_eq!(ord.plan(&slots, 1), vec![ord.pick(&slots)]);
    }

    #[test]
    fn plan_returns_distinct_urgent_first() {
        let slots = [
            slot(0, 1, 1.0, 1.0),
            slot(1, 5, 1.0, 1.0),
            slot(2, 3, 1.0, 1.0),
        ];
        let mut s = PriorityScheduler::new(0.0);
        let wave = s.plan(&slots, 2);
        assert_eq!(wave, vec![1, 2], "most jobs first, then next best");
        let full = s.plan(&slots, 3);
        assert_eq!(full, vec![1, 2, 0]);
    }

    /// When priorities tie exactly, the wave spreads across shards so
    /// stage-one I/O lanes fetch in parallel — without ever outranking a
    /// strictly higher-priority slot.
    #[test]
    fn plan_interleaves_shards_on_ties() {
        let mut s = PriorityScheduler::new(0.0);
        // pids 0..3 on shards 0,0,1,1, all tied at 2 jobs.
        let slots = [
            sharded(0, 0, 2),
            sharded(1, 0, 2),
            sharded(2, 1, 2),
            sharded(3, 1, 2),
        ];
        let wave = s.plan(&slots, 4);
        // First the pick (pid 0, shard 0), then the tie on the unused
        // shard 1 (pid 2), then fall back to first-max order.
        assert_eq!(wave, vec![0, 2, 1, 3]);
        // A strictly higher-priority slot still wins regardless of shard;
        // the tie behind it then prefers the unclaimed shard.
        let slots = [sharded(0, 0, 2), sharded(1, 0, 5), sharded(2, 1, 2)];
        let wave = s.plan(&slots, 3);
        assert_eq!(wave, vec![1, 2, 0], "priority first, then shard spread");
    }

    #[test]
    fn shared_jobs_counts_merge_overlap() {
        assert_eq!(shared_jobs(&[0, 2, 5], &[1, 2, 5, 9]), 2);
        assert_eq!(shared_jobs(&[], &[1, 2]), 0);
        assert_eq!(shared_jobs(&[3], &[3]), 1);
    }

    /// With job lists in play, the lookahead wave plans the slot sharing
    /// the pick's jobs ahead of an equal-priority disjoint slot — the
    /// whole-wave `N(P)` overlap the greedy repeated pick cannot see.
    #[test]
    fn lookahead_prefers_shared_jobs_over_disjoint_ties() {
        let mut s = PriorityScheduler::new(0.0);
        // Slot 0: jobs {0,1} (the pick, 2 jobs).  Slot 1: jobs {2,3}
        // (2 jobs, disjoint).  Slot 2: jobs {0,1} (2 jobs, shared).
        let slots = [
            slot(0, 2, 1.0, 1.0),
            slot(1, 2, 1.0, 1.0),
            slot(2, 2, 1.0, 1.0),
        ];
        let jobs: [&[usize]; 3] = [&[0, 1], &[2, 3], &[0, 1]];
        // Greedy repeated pick takes key order on the tie: 0 then 1.
        assert_eq!(s.plan(&slots, 2), vec![0, 1]);
        // Lookahead keeps the shared pair together: 0 then 2.
        assert_eq!(s.plan_with_jobs(&slots, &jobs, 2), vec![0, 2]);
        // Full width still covers every slot exactly once.
        let full = s.plan_with_jobs(&slots, &jobs, 3);
        assert_eq!(full[0], 0);
        let mut sorted = full.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    /// A strictly higher-priority slot still opens the wave, and overlap
    /// only reorders the remainder.
    #[test]
    fn lookahead_first_slot_is_the_pick() {
        let mut s = PriorityScheduler::new(0.0);
        let slots = [
            slot(0, 1, 1.0, 1.0),
            slot(1, 5, 1.0, 1.0),
            slot(2, 1, 1.0, 1.0),
        ];
        let jobs: [&[usize]; 3] = [&[7], &[0, 1, 2, 3, 4], &[0, 2]];
        let wave = s.plan_with_jobs(&slots, &jobs, 2);
        assert_eq!(wave[0], s.pick(&slots));
        assert_eq!(wave, vec![1, 2], "overlap with the pick beats key order");
    }

    /// Schedulers without a lookahead policy fall back to `plan`.
    #[test]
    fn default_plan_with_jobs_delegates_to_plan() {
        let slots = [slot(3, 9, 9.0, 9.0), slot(1, 1, 0.0, 0.0)];
        let jobs: [&[usize]; 2] = [&[0], &[1]];
        let mut s = OrderScheduler;
        assert_eq!(s.plan_with_jobs(&slots, &jobs, 2), s.plan(&slots, 2));
    }

    #[test]
    fn plan_clamps_width_to_slot_count() {
        let slots = [slot(4, 1, 1.0, 1.0), slot(7, 1, 1.0, 1.0)];
        let mut s = OrderScheduler;
        assert_eq!(s.plan(&slots, 10), vec![0, 1]);
        assert_eq!(s.plan(&slots, 0), vec![0], "width 0 coerces to 1");
    }
}
