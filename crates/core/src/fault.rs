//! `core::fault` — the seeded, deterministic fault-injection plane.
//!
//! Production log-analysis pipelines live or die by how they degrade:
//! a transient I/O error must be retried, a failing shard must be
//! routed around, and a flash crowd must be shed — not crash the
//! engine.  This module makes every I/O boundary in the workspace
//! fallible *on demand*, from a reproducible schedule:
//!
//! * **Shard fetch** (the engine's Load stage, fork-join and concurrent
//!   crew alike) — the fallible boundary.  Each planned slot's fetch is
//!   admitted through [`FaultPlane::admit_fetch`] on the main thread
//!   before the round executes: transient faults are retried under the
//!   [`RetryPolicy`] (exponential backoff, deterministic jitter,
//!   per-attempt timeout, all in *modeled* seconds), retries are
//!   charged into the `ChargeLedger` as disk re-reads, and an
//!   exhausted budget surfaces as a typed [`FaultError`] that
//!   quarantines the slot's jobs instead of aborting the engine.
//! * **Store boundaries** (WAL append/fsync, spill rehydrate, apply
//!   rebuild) — fail-open.  The plane implements
//!   [`cgraph_graph::fault::FaultInjector`]; attach it with
//!   `ShardedSnapshotStore::with_faults` and every durable operation
//!   draws its fault schedule, accounting retries and modeled latency
//!   spikes without ever failing the operation (read paths are
//!   infallible by contract, and a permanent WAL fault models a crash —
//!   the recovery suite's territory, driven by the file harness
//!   re-exported below).
//! * **Trigger workers** — [`FaultConfig::panic_chunk`] injects a panic
//!   into a chosen `process_chunk` call inside the concurrent crew,
//!   exercising the worker-death path (`Engine::exec_error`) end to
//!   end.
//!
//! # Determinism
//!
//! Every fault decision is a *pure stateless hash* of
//! `(seed, boundary, stable coordinates, attempt)` — SplitMix64-style
//! mixing, no shared counters, no wall clock.  Two runs with the same
//! seed and the same workload draw identical schedules regardless of
//! thread interleaving, channel capacities, or shard counts, so the
//! chaos differential suite can require completed-job results to be
//! bit-identical to a fault-free run.  Backoff, jitter, and latency
//! spikes are modeled (virtual) seconds folded into the engine's
//! pipeline clock — never `thread::sleep`.
//!
//! # Circuit breakers
//!
//! Per-lane breakers guard the fetch boundary: after
//! [`BreakerConfig::trip_after`] consecutive faulty fetches a lane's
//! breaker opens and fetches are *rerouted* — priced as spill/disk
//! re-fetches that always succeed — for
//! [`BreakerConfig::cooldown_ops`] operations, then a half-open probe
//! lets one real draw through: success closes the breaker, a fault
//! reopens it.  Breakers convert fault storms into latency instead of
//! quarantine storms.
//!
//! # Zero cost when disabled
//!
//! [`FaultPlane::disabled`] (and an engine config with no plane, the
//! default) reduces every injection site to one branch on an
//! always-`None` option — the same idiom as [`crate::obs`] — so every
//! pinned bit-for-bit suite and both tracing-overhead gates are
//! untouched (pinned by `tests/chaos.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cgraph_graph::fault::{FaultInjector, StoreFaultBoundary};
use parking_lot::Mutex;

pub use cgraph_graph::fault::{file_len, flip_bit, truncate_at, FaultPlan, FaultyFile};

/// Which I/O boundary a fault was injected at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultBoundary {
    /// The engine's Load stage: one planned slot's structure fetch.
    ShardFetch,
    /// A spilled payload read back through the shard segment.
    SpillRehydrate,
    /// A WAL segment append.
    WalAppend,
    /// A WAL segment fsync.
    WalFsync,
    /// One snapshot-store apply (record append + index rebuild).
    ApplyRebuild,
}

impl FaultBoundary {
    /// Stable human-readable name for reports and stats.
    pub fn name(self) -> &'static str {
        match self {
            FaultBoundary::ShardFetch => "shard_fetch",
            FaultBoundary::SpillRehydrate => "spill_rehydrate",
            FaultBoundary::WalAppend => "wal_append",
            FaultBoundary::WalFsync => "wal_fsync",
            FaultBoundary::ApplyRebuild => "apply_rebuild",
        }
    }

    /// Domain-separation tag folded into every hash draw, so the same
    /// coordinates at different boundaries draw independent schedules.
    fn tag(self) -> u64 {
        match self {
            FaultBoundary::ShardFetch => 0x5348_4644, // "SHFD"
            FaultBoundary::SpillRehydrate => 0x5245_4859,
            FaultBoundary::WalAppend => 0x5741_5041,
            FaultBoundary::WalFsync => 0x5741_4653,
            FaultBoundary::ApplyRebuild => 0x4150_4C59,
        }
    }
}

/// The kind of an injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Would have succeeded on retry; fatal only when the retry budget
    /// is exhausted.
    Transient,
    /// Unretryable: fails the operation on the first draw.
    Permanent,
}

/// Typed error for an operation the fault plane failed: either a
/// permanent fault fired, or every attempt of the retry budget drew a
/// transient fault.  At the fetch boundary this quarantines the slot's
/// jobs; store boundaries are fail-open and never surface it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultError {
    /// The boundary that failed.
    pub boundary: FaultBoundary,
    /// Transient-exhausted or permanent.
    pub kind: FaultKind,
    /// Attempts made (1 for a permanent fault).
    pub attempts: u32,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultKind::Transient => write!(
                f,
                "injected transient fault at {} exhausted {} attempts",
                self.boundary.name(),
                self.attempts
            ),
            FaultKind::Permanent => {
                write!(f, "injected permanent fault at {}", self.boundary.name())
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Retry behaviour applied at every fallible boundary.  All durations
/// are modeled (virtual) seconds — the plane never sleeps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total tries per operation, the first included; clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in modeled seconds.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff per further retry.
    pub backoff_mult: f64,
    /// Fraction of each backoff drawn as deterministic jitter: the
    /// modeled wait is `backoff * (1 - jitter + jitter * u)` with `u`
    /// a per-attempt unit hash.  0 = no jitter.
    pub jitter: f64,
    /// Modeled seconds a faulted attempt burns before it is declared
    /// failed (the per-attempt timeout).
    pub attempt_timeout: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: 1e-3,
            backoff_mult: 2.0,
            jitter: 0.5,
            attempt_timeout: 5e-3,
        }
    }
}

impl RetryPolicy {
    /// Modeled wait before retry `attempt` (1-based), jittered by the
    /// unit hash `u` in `[0, 1)`.
    fn backoff_seconds(&self, attempt: u32, u: f64) -> f64 {
        let base = self.backoff_base * self.backoff_mult.powi(attempt.saturating_sub(1) as i32);
        base * (1.0 - self.jitter + self.jitter * u)
    }
}

/// Per-lane circuit-breaker tuning for the fetch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faulty fetches on one lane before its breaker opens
    /// (0 disables breakers entirely).
    pub trip_after: u32,
    /// Fetches rerouted (spill-priced, always succeeding) while open
    /// before the breaker half-opens for a probe.
    pub cooldown_ops: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip_after: 4, cooldown_ops: 8 }
    }
}

/// Full fault-plane configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Root of every hash draw; same seed + same workload = same
    /// schedule, bit for bit.
    pub seed: u64,
    /// Probability a fetch attempt draws a transient fault.
    pub fetch_rate: f64,
    /// Probability a fetch *operation* draws a permanent fault
    /// (checked once, before the transient loop).
    pub permanent_rate: f64,
    /// Probability a store-side operation attempt (WAL append/fsync,
    /// rehydrate, apply) draws a transient fault.  Fail-open: retried
    /// to success with retry/latency accounting only.
    pub store_rate: f64,
    /// Probability an otherwise-clean attempt draws a modeled latency
    /// spike of [`spike_seconds`](Self::spike_seconds).
    pub spike_rate: f64,
    /// Modeled seconds one latency spike adds.
    pub spike_seconds: f64,
    /// Retry behaviour at every boundary.
    pub retry: RetryPolicy,
    /// Per-lane fetch circuit breakers.
    pub breaker: BreakerConfig,
    /// Inject a panic into the concurrent crew's trigger stage when it
    /// processes `(partition, chunk)` — the worker-death drill.
    pub panic_chunk: Option<(u32, usize)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            fetch_rate: 0.0,
            permanent_rate: 0.0,
            store_rate: 0.0,
            spike_rate: 0.0,
            spike_seconds: 0.0,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            panic_chunk: None,
        }
    }
}

/// Point-in-time copy of the plane's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient faults injected (every faulted attempt, all
    /// boundaries).
    pub injected: u64,
    /// Retries performed after a transient fault (= faulted attempts
    /// that were followed by another try).
    pub retries: u64,
    /// Operations that exhausted their retry budget or drew a
    /// permanent fault.  Fetch-side these quarantine jobs; store-side
    /// they are absorbed (fail-open) and only counted.
    pub exhausted: u64,
    /// Latency spikes injected.
    pub spikes: u64,
    /// Fetches rerouted to spill pricing by an open breaker.
    pub rerouted: u64,
    /// Breaker open transitions.
    pub breaker_trips: u64,
    /// Half-open probes that closed a breaker again.
    pub breaker_recoveries: u64,
    /// Modeled delay injected across all boundaries, in microseconds
    /// (backoff + attempt timeouts + spikes).
    pub delay_micros: u64,
}

#[derive(Default)]
struct AtomicStats {
    injected: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
    spikes: AtomicU64,
    rerouted: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_recoveries: AtomicU64,
    delay_micros: AtomicU64,
}

/// One lane's breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Breaker {
    Closed { consecutive: u32 },
    Open { remaining: u32 },
    HalfOpen,
}

/// What [`FaultPlane::admit_fetch`] granted: the fetch proceeds, with
/// this much injected friction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FetchAdmission {
    /// Retries the fetch burned before succeeding.
    pub retries: u32,
    /// Modeled seconds of injected delay (timeouts + backoff + spike).
    pub delay_seconds: f64,
    /// The lane's breaker was open: the fetch was rerouted to
    /// spill/disk re-fetch pricing without drawing the schedule.
    pub rerouted: bool,
}

/// The seeded, deterministic fault plane.  Construct with
/// [`new`](Self::new), share via `Arc` between `EngineConfig::faults`
/// and `ShardedSnapshotStore::with_faults`, read the damage with
/// [`stats`](Self::stats).
pub struct FaultPlane {
    cfg: FaultConfig,
    enabled: bool,
    stats: AtomicStats,
    /// Per-lane fetch breakers; only the engine main thread touches
    /// them (fetch admission is main-thread), the mutex is for `Sync`.
    breakers: Mutex<Vec<Breaker>>,
}

impl std::fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlane")
            .field("enabled", &self.enabled)
            .field("cfg", &self.cfg)
            .finish()
    }
}

/// SplitMix64 finalizer: the stateless mix behind every draw.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes the draw coordinates into a unit interval value.
#[inline]
fn unit(seed: u64, tag: u64, a: u64, b: u64, c: u64, attempt: u32) -> f64 {
    let mut h = mix64(seed ^ tag.wrapping_mul(0x9E3779B97F4A7C15));
    h = mix64(h ^ a);
    h = mix64(h ^ b.rotate_left(17));
    h = mix64(h ^ c.rotate_left(31));
    h = mix64(h ^ attempt as u64);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlane {
    /// A plane drawing from `cfg`'s schedule.  A configuration that can
    /// never inject anything (all rates zero, no panic coordinate) makes
    /// an inert plane, indistinguishable from [`disabled`](Self::disabled)
    /// — so "clean" control runs can share the chaos construction path.
    pub fn new(cfg: FaultConfig) -> Arc<FaultPlane> {
        let enabled = cfg.fetch_rate > 0.0
            || cfg.permanent_rate > 0.0
            || cfg.store_rate > 0.0
            || cfg.spike_rate > 0.0
            || cfg.panic_chunk.is_some();
        Arc::new(FaultPlane {
            cfg,
            enabled,
            stats: AtomicStats::default(),
            breakers: Mutex::new(Vec::new()),
        })
    }

    /// The inert plane: every injection site reduces to one branch, no
    /// draw ever happens, results are bit-identical to no plane at all.
    pub fn disabled() -> Arc<FaultPlane> {
        Arc::new(FaultPlane {
            cfg: FaultConfig::default(),
            enabled: false,
            stats: AtomicStats::default(),
            breakers: Mutex::new(Vec::new()),
        })
    }

    /// Whether this plane draws at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configuration this plane draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Snapshot of the damage counters so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            injected: self.stats.injected.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            exhausted: self.stats.exhausted.load(Ordering::Relaxed),
            spikes: self.stats.spikes.load(Ordering::Relaxed),
            rerouted: self.stats.rerouted.load(Ordering::Relaxed),
            breaker_trips: self.stats.breaker_trips.load(Ordering::Relaxed),
            breaker_recoveries: self.stats.breaker_recoveries.load(Ordering::Relaxed),
            delay_micros: self.stats.delay_micros.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn add_delay(&self, seconds: f64) {
        if seconds > 0.0 {
            self.stats
                .delay_micros
                .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
        }
    }

    /// Whether the crew's trigger stage must panic on this chunk (the
    /// injected worker-death drill).
    pub(crate) fn should_panic_chunk(&self, pid: u32, chunk: usize) -> bool {
        self.enabled && self.cfg.panic_chunk == Some((pid, chunk))
    }

    /// Runs the transient retry loop for one operation at `boundary`
    /// with stable coordinates `(a, b, c)` and per-attempt fault
    /// probability `rate`.  Returns `Ok((retries, delay))` when an
    /// attempt succeeds, `Err` when the budget is exhausted.
    fn run_attempts(
        &self,
        boundary: FaultBoundary,
        rate: f64,
        a: u64,
        b: u64,
        c: u64,
    ) -> Result<(u32, f64), FaultError> {
        let policy = &self.cfg.retry;
        let max = policy.max_attempts.max(1);
        let tag = boundary.tag();
        let mut delay = 0.0;
        for attempt in 0..max {
            let faulted = rate > 0.0 && unit(self.cfg.seed, tag, a, b, c, attempt) < rate;
            if !faulted {
                // Clean attempt — maybe a latency spike (independent
                // sub-draw, domain-separated by the attempt's high bit).
                if self.cfg.spike_rate > 0.0
                    && unit(self.cfg.seed, tag ^ 0x5350_4B45, a, b, c, attempt)
                        < self.cfg.spike_rate
                {
                    self.stats.spikes.fetch_add(1, Ordering::Relaxed);
                    delay += self.cfg.spike_seconds;
                }
                self.add_delay(delay);
                return Ok((attempt, delay));
            }
            self.stats.injected.fetch_add(1, Ordering::Relaxed);
            delay += policy.attempt_timeout;
            if attempt + 1 < max {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                let u = unit(self.cfg.seed, tag ^ 0x4A49_5454, a, b, c, attempt);
                delay += policy.backoff_seconds(attempt + 1, u);
            }
        }
        self.stats.exhausted.fetch_add(1, Ordering::Relaxed);
        self.add_delay(delay);
        Err(FaultError { boundary, kind: FaultKind::Transient, attempts: max })
    }

    /// Admits one planned slot fetch on `lane` (main thread, before the
    /// round executes).  `pid`/`version`/`round` are the stable draw
    /// coordinates.  Breaker logic wraps the retry loop: an open
    /// breaker reroutes without drawing; an exhausted budget or a
    /// permanent fault trips the lane's consecutive-fault counter and
    /// surfaces a typed [`FaultError`].
    pub(crate) fn admit_fetch(
        &self,
        lane: usize,
        pid: u64,
        version: u64,
        round: u64,
    ) -> Result<FetchAdmission, FaultError> {
        if !self.enabled {
            return Ok(FetchAdmission::default());
        }
        let mut breakers = self.breakers.lock();
        if breakers.len() <= lane {
            breakers.resize(lane + 1, Breaker::Closed { consecutive: 0 });
        }
        let trip_after = self.cfg.breaker.trip_after;
        match breakers[lane] {
            Breaker::Open { remaining } if trip_after > 0 => {
                self.stats.rerouted.fetch_add(1, Ordering::Relaxed);
                breakers[lane] = if remaining <= 1 {
                    Breaker::HalfOpen
                } else {
                    Breaker::Open { remaining: remaining - 1 }
                };
                return Ok(FetchAdmission { retries: 0, delay_seconds: 0.0, rerouted: true });
            }
            _ => {}
        }
        let half_open = matches!(breakers[lane], Breaker::HalfOpen);
        let boundary = FaultBoundary::ShardFetch;
        // Permanent faults fail the operation outright, before retries.
        let permanent = self.cfg.permanent_rate > 0.0
            && unit(
                self.cfg.seed,
                boundary.tag() ^ 0x5045_524D,
                pid,
                version,
                round,
                0,
            ) < self.cfg.permanent_rate;
        let outcome = if permanent {
            self.stats.injected.fetch_add(1, Ordering::Relaxed);
            self.stats.exhausted.fetch_add(1, Ordering::Relaxed);
            Err(FaultError { boundary, kind: FaultKind::Permanent, attempts: 1 })
        } else {
            self.run_attempts(boundary, self.cfg.fetch_rate, pid, version, round)
                .map(|(retries, delay)| FetchAdmission {
                    retries,
                    delay_seconds: delay,
                    rerouted: false,
                })
        };
        match &outcome {
            Ok(adm) => {
                if half_open {
                    // Probe succeeded (possibly after retries): close.
                    self.stats
                        .breaker_recoveries
                        .fetch_add(1, Ordering::Relaxed);
                    breakers[lane] = Breaker::Closed { consecutive: 0 };
                } else if trip_after > 0 {
                    let consecutive = match breakers[lane] {
                        Breaker::Closed { consecutive } if adm.retries > 0 => consecutive + 1,
                        Breaker::Closed { .. } => 0,
                        _ => 0,
                    };
                    breakers[lane] = if consecutive >= trip_after {
                        self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                        Breaker::Open { remaining: self.cfg.breaker.cooldown_ops.max(1) }
                    } else {
                        Breaker::Closed { consecutive }
                    };
                }
            }
            Err(_) if trip_after > 0 => {
                // Exhausted or permanent: trip (or re-trip) the lane.
                self.stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                breakers[lane] = Breaker::Open { remaining: self.cfg.breaker.cooldown_ops.max(1) };
            }
            Err(_) => {}
        }
        outcome
    }
}

/// Store-side boundaries are fail-open: draw the schedule, account
/// retries and modeled latency, but never fail the operation (see the
/// module docs and [`cgraph_graph::fault`]).
impl FaultInjector for FaultPlane {
    fn store_op(&self, boundary: StoreFaultBoundary, shard: Option<usize>, key: u64) {
        if !self.enabled || (self.cfg.store_rate <= 0.0 && self.cfg.spike_rate <= 0.0) {
            return;
        }
        let boundary = match boundary {
            StoreFaultBoundary::WalAppend => FaultBoundary::WalAppend,
            StoreFaultBoundary::WalFsync => FaultBoundary::WalFsync,
            StoreFaultBoundary::Rehydrate => FaultBoundary::SpillRehydrate,
            StoreFaultBoundary::ApplyRebuild => FaultBoundary::ApplyRebuild,
        };
        let shard = shard.map_or(u64::MAX, |s| s as u64);
        // Exhaustion is absorbed (already counted by `run_attempts`):
        // the modeled interpretation is an operation that a crash-
        // consistency mechanism above us must cover, which the recovery
        // suite does with the file harness.
        let _ = self.run_attempts(boundary, self.cfg.store_rate, shard, key, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(fetch_rate: f64, max_attempts: u32) -> Arc<FaultPlane> {
        FaultPlane::new(FaultConfig {
            seed: 7,
            fetch_rate,
            retry: RetryPolicy { max_attempts, ..RetryPolicy::default() },
            breaker: BreakerConfig { trip_after: 0, cooldown_ops: 0 },
            ..FaultConfig::default()
        })
    }

    #[test]
    fn disabled_plane_draws_nothing() {
        let p = FaultPlane::disabled();
        for i in 0..100 {
            let adm = p.admit_fetch(0, i, 1, i).unwrap();
            assert_eq!(adm, FetchAdmission::default());
        }
        p.store_op(StoreFaultBoundary::WalAppend, None, 1);
        assert_eq!(p.stats(), FaultStats::default());
    }

    #[test]
    fn draws_replay_bit_for_bit() {
        let a = plane(0.3, 4);
        let b = plane(0.3, 4);
        for pid in 0..200u64 {
            let ra = a.admit_fetch((pid % 4) as usize, pid, 1, pid / 4);
            let rb = b.admit_fetch((pid % 4) as usize, pid, 1, pid / 4);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().injected > 0, "30% over 200 draws must fault");
    }

    #[test]
    fn interleaving_does_not_change_decisions() {
        // The same coordinates drawn in a different order produce the
        // same per-operation outcomes: decisions are stateless hashes.
        let a = plane(0.25, 3);
        let b = plane(0.25, 3);
        let fwd: Vec<_> = (0..64u64).map(|p| a.admit_fetch(0, p, 1, 0)).collect();
        let rev: Vec<_> = (0..64u64)
            .rev()
            .map(|p| b.admit_fetch(0, p, 1, 0))
            .collect();
        for (p, out) in fwd.iter().enumerate() {
            assert_eq!(*out, rev[63 - p], "pid {p}");
        }
    }

    #[test]
    fn exhaustion_is_typed_transient() {
        // Rate 1.0: every attempt faults, so every op exhausts.
        let p = plane(1.0, 3);
        let err = p.admit_fetch(0, 1, 1, 0).unwrap_err();
        assert_eq!(err.boundary, FaultBoundary::ShardFetch);
        assert_eq!(err.kind, FaultKind::Transient);
        assert_eq!(err.attempts, 3);
        assert_eq!(p.stats().exhausted, 1);
        assert_eq!(p.stats().injected, 3);
        assert_eq!(p.stats().retries, 2);
    }

    #[test]
    fn permanent_faults_skip_retries() {
        let p = FaultPlane::new(FaultConfig {
            seed: 1,
            permanent_rate: 1.0,
            breaker: BreakerConfig { trip_after: 0, cooldown_ops: 0 },
            ..FaultConfig::default()
        });
        let err = p.admit_fetch(0, 9, 2, 5).unwrap_err();
        assert_eq!(err.kind, FaultKind::Permanent);
        assert_eq!(err.attempts, 1);
    }

    #[test]
    fn breaker_trips_reroutes_and_recovers() {
        // Every draw faults but the budget is generous enough to
        // succeed with retries — each op counts as one consecutive
        // fault, tripping after 2, then 3 reroutes, then a half-open
        // probe that (still faulty-but-recovering) closes the breaker.
        let p = FaultPlane::new(FaultConfig {
            seed: 3,
            fetch_rate: 0.9,
            retry: RetryPolicy { max_attempts: 64, ..RetryPolicy::default() },
            breaker: BreakerConfig { trip_after: 2, cooldown_ops: 3 },
            ..FaultConfig::default()
        });
        let mut rerouted = 0;
        for op in 0..32u64 {
            let adm = p
                .admit_fetch(0, op, 1, op)
                .expect("64 attempts at 0.9 never exhaust");
            if adm.rerouted {
                rerouted += 1;
            }
        }
        let st = p.stats();
        assert!(st.breaker_trips > 0, "stats: {st:?}");
        assert_eq!(st.rerouted, rerouted);
        assert!(rerouted > 0);
        assert!(
            st.breaker_recoveries > 0,
            "half-open probe must close: {st:?}"
        );
    }

    #[test]
    fn half_open_probe_that_faults_again_reopens_the_breaker() {
        // Every drawn op faults permanently, so no probe can ever
        // succeed: the lane must cycle Open → reroutes → HalfOpen →
        // failed probe → Open again, counting a fresh trip each time
        // and never a recovery.
        let p = FaultPlane::new(FaultConfig {
            seed: 5,
            permanent_rate: 1.0,
            breaker: BreakerConfig { trip_after: 1, cooldown_ops: 2 },
            ..FaultConfig::default()
        });
        // op 0 draws, faults, trips the lane.
        let err = p.admit_fetch(0, 0, 1, 0).unwrap_err();
        assert_eq!(err.kind, FaultKind::Permanent);
        assert_eq!(p.stats().breaker_trips, 1);
        // Two cooldown ops reroute without drawing.
        for op in 1..3u64 {
            let adm = p.admit_fetch(0, op, 1, op).expect("open lane reroutes");
            assert!(adm.rerouted, "op {op} must reroute");
            assert_eq!(adm.retries, 0, "a reroute never draws the schedule");
        }
        // The half-open probe draws, faults again: the breaker re-opens
        // (a second trip), and no recovery is ever counted.
        let err = p.admit_fetch(0, 3, 1, 3).unwrap_err();
        assert_eq!(err.kind, FaultKind::Permanent);
        let st = p.stats();
        assert_eq!(st.breaker_trips, 2, "the failed probe must re-trip");
        assert_eq!(st.breaker_recoveries, 0, "a failed probe is no recovery");
        // The re-opened lane reroutes its next op exactly like the
        // first cooldown — the cycle repeats.
        assert!(p.admit_fetch(0, 4, 1, 4).unwrap().rerouted);
        // Breaker state is per lane: while lane 0 is open, a fresh lane
        // still *draws* (and here faults) rather than rerouting — open
        // state and reroute pricing never bleed across lanes.
        let err = p.admit_fetch(1, 5, 1, 5).unwrap_err();
        assert_eq!(err.kind, FaultKind::Permanent);
        assert_eq!(p.stats().breaker_trips, 3, "lane 1 trips on its own");
        assert_eq!(p.stats().rerouted, 3, "lane 1's first op never rerouted");
    }

    #[test]
    fn store_ops_are_fail_open_but_accounted() {
        let p =
            FaultPlane::new(FaultConfig { seed: 11, store_rate: 0.5, ..FaultConfig::default() });
        for k in 0..100 {
            p.store_op(StoreFaultBoundary::WalAppend, Some((k % 4) as usize), k);
            p.store_op(
                StoreFaultBoundary::Rehydrate,
                Some((k % 4) as usize),
                k * 64,
            );
        }
        let st = p.stats();
        assert!(st.injected > 0);
        assert!(st.delay_micros > 0);
    }

    #[test]
    fn backoff_grows_and_jitter_stays_bounded() {
        let policy = RetryPolicy::default();
        let lo = policy.backoff_seconds(1, 0.0);
        let hi = policy.backoff_seconds(1, 1.0 - f64::EPSILON);
        assert!(lo >= policy.backoff_base * (1.0 - policy.jitter) * 0.999);
        assert!(hi <= policy.backoff_base * 1.001);
        assert!(policy.backoff_seconds(3, 0.5) > policy.backoff_seconds(1, 0.5));
    }
}
