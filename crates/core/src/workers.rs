//! The trigger-stage worker pool.
//!
//! For each loaded partition the engine builds one chunk-task per (job,
//! chunk) pair and drains them over a shared queue with `workers` scoped
//! threads.  Straggler splitting (paper §3.2.3, Fig. 6) falls out of the
//! task list: the job with the most unprocessed vertices contributes more
//! chunks, so free cores naturally assist it.
//!
//! [`TaskPool`] extends the same queue across *multiple* loaded slots:
//! the wavefront executor accumulates every picked slot's chunk tasks
//! and drains them in one scoped-thread pass, so cores freed by one
//! slot's fast jobs immediately pipeline into the next slot's Trigger
//! instead of idling behind the straggler.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use cgraph_graph::PartitionId;

use crate::job::{JobRuntime, ProcessStats};

/// One unit of trigger work: chunk `chunk` of `nchunks` of partition `pid`
/// for the job at `job_slot` (an index into the batch's job list).
#[derive(Clone, Copy, Debug)]
pub struct ChunkTask {
    /// Index into the job slice handed to [`run_chunk_tasks`].
    pub job_slot: usize,
    /// Partition to process.
    pub pid: PartitionId,
    /// Chunk index.
    pub chunk: usize,
    /// Total chunks this job's partition was split into.
    pub nchunks: usize,
}

/// Executes the tasks on up to `workers` threads and returns per-job-slot
/// accumulated compute statistics.
pub fn run_chunk_tasks(
    workers: usize,
    jobs: &[&dyn JobRuntime],
    tasks: &[ChunkTask],
) -> Vec<ProcessStats> {
    let mut totals = vec![ProcessStats::default(); jobs.len()];
    if tasks.is_empty() {
        return totals;
    }
    let threads = workers.max(1).min(tasks.len());
    if threads == 1 {
        for t in tasks {
            let s = jobs[t.job_slot].process_chunk(t.pid, t.chunk, t.nchunks);
            totals[t.job_slot].vertex_ops += s.vertex_ops;
            totals[t.job_slot].edge_ops += s.edge_ops;
        }
        return totals;
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, ProcessStats)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, ProcessStats)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    let t = tasks[i];
                    let s = jobs[t.job_slot].process_chunk(t.pid, t.chunk, t.nchunks);
                    local.push((t.job_slot, s));
                }
                collected.lock().extend(local);
            });
        }
    });
    for (slot, s) in collected.into_inner() {
        totals[slot].vertex_ops += s.vertex_ops;
        totals[slot].edge_ops += s.edge_ops;
    }
    totals
}

/// One stage-one prefetch probe: count the unprocessed active vertices
/// job `job_slot` still has on partition `pid` — the per-slot Load
/// preparation scan the prefetch queue runs through the pool ahead of
/// the serial charge loop, instead of serially between chunk drains.
#[derive(Clone, Copy, Debug)]
pub struct ProbeTask {
    /// Index into the job slice handed to [`run_probe_tasks`].
    pub job_slot: usize,
    /// Partition to probe.
    pub pid: PartitionId,
}

/// A probe is one cache-friendly bitmap/replica scan, so a scoped-thread
/// drain only pays off once a wave carries at least this many probes;
/// below it the spawn overhead dominates and the serial path wins.
const PARALLEL_PROBE_THRESHOLD: usize = 32;

/// Executes the probes on up to `workers` threads, writing each probe's
/// count to the matching index of `out` (cleared and resized first).
/// Probes are pure reads, so the result is independent of threading.
pub fn run_probe_tasks(
    workers: usize,
    jobs: &[&dyn JobRuntime],
    tasks: &[ProbeTask],
    out: &mut Vec<u64>,
) {
    out.clear();
    out.resize(tasks.len(), 0);
    if tasks.is_empty() {
        return;
    }
    let threads = workers.max(1).min(tasks.len());
    if threads == 1 || tasks.len() < PARALLEL_PROBE_THRESHOLD {
        for (slot, t) in tasks.iter().enumerate() {
            out[slot] = jobs[t.job_slot].unprocessed_vertices(t.pid);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, u64)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    let t = tasks[i];
                    local.push((i, jobs[t.job_slot].unprocessed_vertices(t.pid)));
                }
                collected.lock().extend(local);
            });
        }
    });
    for (i, count) in collected.into_inner() {
        out[i] = count;
    }
}

/// Builds the chunk-task list for one batch of jobs processing `pid`.
///
/// Every job gets one chunk; when `straggler_split` is on and cores remain
/// (`budget > jobs`), the job with the most unprocessed vertices is divided
/// into the leftover chunks.
pub fn plan_chunks(
    pid: PartitionId,
    unprocessed: &[u64],
    budget: usize,
    straggler_split: bool,
) -> Vec<ChunkTask> {
    let mut tasks = Vec::new();
    plan_chunks_into(pid, unprocessed, budget, straggler_split, &mut tasks);
    tasks
}

/// [`plan_chunks`] into a caller-owned buffer (cleared first), so hot
/// loops can recycle the task vector across batches and rounds.
pub fn plan_chunks_into(
    pid: PartitionId,
    unprocessed: &[u64],
    budget: usize,
    straggler_split: bool,
    tasks: &mut Vec<ChunkTask>,
) {
    tasks.clear();
    let njobs = unprocessed.len();
    if njobs == 0 {
        return;
    }
    let mut straggler = usize::MAX;
    let mut extra = 0;
    if straggler_split && budget > njobs {
        straggler = unprocessed
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("non-empty batch");
        extra = budget - njobs;
    }
    for slot in 0..njobs {
        let n = if slot == straggler { 1 + extra } else { 1 };
        for chunk in 0..n {
            tasks.push(ChunkTask { job_slot: slot, pid, chunk, nchunks: n });
        }
    }
}

/// Accumulates chunk tasks from one or more loaded slots and drains them
/// in a single [`run_chunk_tasks`] pass.
///
/// Each `(slot, job)` pair contributes one pooled runtime entry; results
/// are handed back tagged with their origin so the executor can attribute
/// compute to the right slot (for the pipeline cost model) and job (for
/// per-job metrics).
#[derive(Default)]
pub struct TaskPool<'a> {
    runtimes: Vec<&'a dyn JobRuntime>,
    origins: Vec<(usize, usize)>,
    tasks: Vec<ChunkTask>,
}

impl<'a> TaskPool<'a> {
    /// An empty pool.
    pub fn new() -> Self {
        TaskPool::default()
    }

    /// Whether the pool currently holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Plans one batch of `slot`'s jobs over partition `pid` (same
    /// chunking policy as [`plan_chunks`]) and queues the tasks.
    ///
    /// `jobs` pairs each engine job index with its runtime; `unprocessed`
    /// gives the matching active-replica counts for straggler detection.
    pub fn plan_slot_batch(
        &mut self,
        slot: usize,
        pid: PartitionId,
        jobs: &[(usize, &'a dyn JobRuntime)],
        unprocessed: &[u64],
        budget: usize,
        straggler_split: bool,
    ) {
        debug_assert_eq!(jobs.len(), unprocessed.len());
        let base = self.runtimes.len();
        for &(job, runtime) in jobs {
            self.runtimes.push(runtime);
            self.origins.push((slot, job));
        }
        for mut task in plan_chunks(pid, unprocessed, budget, straggler_split) {
            task.job_slot += base;
            self.tasks.push(task);
        }
    }

    /// Drains every queued task over up to `workers` scoped threads and
    /// returns `(slot, job, stats)` per pooled entry, leaving the pool
    /// empty for reuse.
    pub fn run(&mut self, workers: usize) -> Vec<(usize, usize, ProcessStats)> {
        let totals = run_chunk_tasks(workers, &self.runtimes, &self.tasks);
        self.runtimes.clear();
        self.tasks.clear();
        let origins = std::mem::take(&mut self.origins);
        origins
            .into_iter()
            .zip(totals)
            .map(|((slot, job), stats)| (slot, job, stats))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_without_split_gives_one_chunk_each() {
        let tasks = plan_chunks(0, &[10, 20, 5], 8, false);
        assert_eq!(tasks.len(), 3);
        assert!(tasks.iter().all(|t| t.nchunks == 1));
    }

    #[test]
    fn plan_with_split_boosts_straggler() {
        let tasks = plan_chunks(0, &[10, 100, 5], 6, true);
        // Job 1 is the straggler: 1 + (6 - 3) = 4 chunks.
        let straggler_chunks = tasks.iter().filter(|t| t.job_slot == 1).count();
        assert_eq!(straggler_chunks, 4);
        assert_eq!(tasks.len(), 6);
    }

    #[test]
    fn plan_with_no_spare_budget_is_plain() {
        let tasks = plan_chunks(0, &[10, 100], 2, true);
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|t| t.nchunks == 1));
    }

    #[test]
    fn chunk_indices_cover_range() {
        let tasks = plan_chunks(3, &[50], 4, true);
        let mut chunks: Vec<usize> = tasks.iter().map(|t| t.chunk).collect();
        chunks.sort_unstable();
        assert_eq!(chunks, vec![0, 1, 2, 3]);
        assert!(tasks.iter().all(|t| t.pid == 3 && t.nchunks == 4));
    }

    #[test]
    fn probe_results_match_serial_counts() {
        use crate::job::TypedJob;
        use crate::program::{VertexInfo, VertexProgram};
        use cgraph_graph::snapshot::SnapshotStore;
        use cgraph_graph::vertex_cut::VertexCutPartitioner;
        use cgraph_graph::{generate, Partitioner, Weight};
        use std::sync::Arc;

        struct Bfs;
        impl VertexProgram for Bfs {
            type Value = u32;
            fn init(&self, info: &VertexInfo) -> (u32, u32) {
                if info.vid == 0 {
                    (u32::MAX, 0)
                } else {
                    (u32::MAX, u32::MAX)
                }
            }
            fn identity(&self) -> u32 {
                u32::MAX
            }
            fn acc(&self, a: u32, b: u32) -> u32 {
                a.min(b)
            }
            fn is_active(&self, value: &u32, delta: &u32) -> bool {
                delta < value
            }
            fn compute(&self, _i: &VertexInfo, value: u32, delta: u32) -> (u32, Option<u32>) {
                if delta < value {
                    (delta, Some(delta))
                } else {
                    (value, None)
                }
            }
            fn edge_contrib(&self, basis: u32, _w: Weight, _i: &VertexInfo) -> u32 {
                basis.saturating_add(1)
            }
        }

        let el = generate::cycle(32);
        let ps = VertexCutPartitioner::new(4).partition(&el);
        let store = Arc::new(SnapshotStore::new(ps));
        let job = TypedJob::new(0, Bfs, store.base_view());
        let jobs: Vec<&dyn JobRuntime> = vec![&job];
        // Enough probes to clear the parallel threshold and exercise the
        // scoped-thread drain.
        let tasks: Vec<ProbeTask> = (0..48)
            .map(|i| ProbeTask { job_slot: 0, pid: i % 4 })
            .collect();
        let mut parallel = Vec::new();
        run_probe_tasks(4, &jobs, &tasks, &mut parallel);
        let serial: Vec<u64> = tasks
            .iter()
            .map(|t| job.unprocessed_vertices(t.pid))
            .collect();
        assert_eq!(parallel, serial);
        run_probe_tasks(4, &jobs, &[], &mut parallel);
        assert!(parallel.is_empty());
    }
}
