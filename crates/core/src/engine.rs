//! The CGraph executor (paper Alg. 3): Load — Trigger — Push.

use std::collections::BTreeMap;
use std::sync::Arc;

use cgraph_graph::snapshot::SnapshotStore;
use cgraph_graph::{PartitionId, PartitionSet, VersionId};
use cgraph_memsim::{
    CacheObject, CostModel, HierarchyConfig, JobMetrics, MemoryHierarchy, Metrics,
};

use crate::job::{JobId, JobRuntime, PushStats, TypedJob};
use crate::program::VertexProgram;
use crate::scheduler::{OrderScheduler, PriorityScheduler, Scheduler, SlotInfo};
use crate::workers::{plan_chunks, run_chunk_tasks};

/// How Push charges vertex-state synchronization to the memory hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncStrategy {
    /// The paper's batched sorted push (Alg. 2): records are sorted by
    /// destination partition, so each private-table partition is loaded
    /// once per push.
    BatchedSorted,
    /// The naive alternative: every record individually touches its
    /// destination partition (the ablation for design decision D4).
    Immediate,
}

/// Which scheduler drives partition loading.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedulerKind {
    /// The paper's `Pri(P) = N(P) + θ·D(P)·C(P)` (Eq. 1); `theta` is the
    /// fraction of the admissible θ range.
    Priority {
        /// Fraction of the admissible θ range, in `[0, 1)`.
        theta: f64,
    },
    /// Fixed partition-id order: the `CGraph-without` ablation (Fig. 8).
    FixedOrder,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Trigger-stage worker threads (the paper's per-core workers); also
    /// the job batch size when more jobs share a partition than workers.
    pub workers: usize,
    /// Simulated cache/memory capacities.
    pub hierarchy: HierarchyConfig,
    /// Cost model for modeled time.
    pub cost: CostModel,
    /// Push charging strategy.
    pub sync: SyncStrategy,
    /// Whether to split the straggler job's vertices across free cores.
    pub straggler_split: bool,
    /// Partition-loading scheduler.
    pub scheduler: SchedulerKind,
    /// Safety valve: abort `run` after this many partition loads.
    pub max_loads: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            hierarchy: HierarchyConfig::default(),
            cost: CostModel::default(),
            sync: SyncStrategy::BatchedSorted,
            straggler_split: true,
            scheduler: SchedulerKind::Priority { theta: 0.5 },
            max_loads: u64::MAX,
        }
    }
}

/// Summary of one [`Engine::run`] call.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Partition loads performed.
    pub loads: u64,
    /// Counter deltas accumulated during this run.
    pub metrics: Metrics,
    /// Modeled makespan of this run under the engine's cost model.
    pub modeled_seconds: f64,
    /// `false` if the run stopped at `max_loads` before all jobs converged.
    pub completed: bool,
}

struct JobEntry {
    runtime: Box<dyn JobRuntime>,
    done: bool,
}

/// The concurrent iterative graph-processing engine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cgraph_core::{Engine, EngineConfig};
/// use cgraph_graph::snapshot::SnapshotStore;
/// use cgraph_graph::vertex_cut::VertexCutPartitioner;
/// use cgraph_graph::{generate, Partitioner};
///
/// let edges = generate::cycle(64);
/// let parts = VertexCutPartitioner::new(4).partition(&edges);
/// let mut engine = Engine::new(
///     Arc::new(SnapshotStore::new(parts)),
///     EngineConfig::default(),
/// );
/// // Programs live in `cgraph-algos`; see that crate for submissions.
/// let report = engine.run();
/// assert!(report.completed);
/// ```
pub struct Engine {
    config: EngineConfig,
    store: Arc<SnapshotStore>,
    hierarchy: MemoryHierarchy,
    scheduler: Box<dyn Scheduler>,
    jobs: Vec<JobEntry>,
    job_metrics: Vec<JobMetrics>,
    loads: u64,
}

impl Engine {
    /// Creates an engine over a snapshot store.
    pub fn new(store: Arc<SnapshotStore>, config: EngineConfig) -> Self {
        let scheduler: Box<dyn Scheduler> = match config.scheduler {
            SchedulerKind::Priority { theta } => Box::new(PriorityScheduler::new(theta)),
            SchedulerKind::FixedOrder => Box::new(OrderScheduler),
        };
        Engine {
            config,
            store,
            hierarchy: MemoryHierarchy::new(config.hierarchy),
            scheduler,
            jobs: Vec::new(),
            job_metrics: Vec::new(),
            loads: 0,
        }
    }

    /// Convenience constructor for a static (single-snapshot) graph.
    pub fn from_partitions(parts: PartitionSet, config: EngineConfig) -> Self {
        Engine::new(Arc::new(SnapshotStore::new(parts)), config)
    }

    /// Submits a job bound to the newest snapshot. Returns its id.
    pub fn submit<P: VertexProgram>(&mut self, program: P) -> JobId {
        let ts = self.store.latest_timestamp();
        self.submit_at(program, ts)
    }

    /// Submits a job arriving at time `ts`: it binds to the newest snapshot
    /// whose timestamp does not exceed `ts` (paper §3.2.1, Fig. 5).
    pub fn submit_at<P: VertexProgram>(&mut self, program: P, ts: u64) -> JobId {
        let id = self.jobs.len() as JobId;
        let view = self.store.view_at(ts);
        let runtime = TypedJob::new(id, program, view);
        let done = runtime.is_converged();
        self.jobs.push(JobEntry { runtime: Box::new(runtime), done });
        self.job_metrics.push(JobMetrics::default());
        id
    }

    /// Runs all submitted jobs to convergence (Alg. 3).
    ///
    /// Jobs submitted after a `run` returns are picked up by the next call,
    /// matching the paper's runtime registration of new jobs.
    pub fn run(&mut self) -> RunReport {
        let start_metrics = *self.hierarchy.metrics();
        let start_loads = self.loads;
        let mut completed = true;
        loop {
            for entry in &mut self.jobs {
                if !entry.done && entry.runtime.is_converged() {
                    entry.done = true;
                }
            }
            let slots = self.collect_slots();
            if slots.is_empty() {
                break;
            }
            if self.loads - start_loads >= self.config.max_loads {
                completed = false;
                break;
            }
            let infos = self.slot_infos(&slots);
            let pick = self.scheduler.pick(&infos);
            let (&(pid, version), job_idxs) =
                slots.iter().nth(pick).expect("pick within slot range");
            let job_idxs = job_idxs.clone();
            self.load_and_trigger(pid, version, &job_idxs);
            self.push_completed(&job_idxs);
            self.loads += 1;
        }
        let metrics = self.hierarchy.metrics().since(&start_metrics);
        RunReport {
            loads: self.loads - start_loads,
            metrics,
            modeled_seconds: self.config.cost.total_seconds(&metrics, self.config.workers),
            completed,
        }
    }

    /// All `(partition, version)` slots needed by at least one job, with
    /// the interested jobs.
    fn collect_slots(&self) -> BTreeMap<(PartitionId, VersionId), Vec<usize>> {
        let mut slots: BTreeMap<(PartitionId, VersionId), Vec<usize>> = BTreeMap::new();
        for (idx, entry) in self.jobs.iter().enumerate() {
            if entry.done {
                continue;
            }
            let view = entry.runtime.view();
            for pid in entry.runtime.pending() {
                slots
                    .entry((pid, view.version_of(pid)))
                    .or_default()
                    .push(idx);
            }
        }
        slots
    }

    fn slot_infos(
        &self,
        slots: &BTreeMap<(PartitionId, VersionId), Vec<usize>>,
    ) -> Vec<SlotInfo> {
        slots
            .iter()
            .map(|(&(pid, version), jobs)| {
                let part = self.jobs[jobs[0]].runtime.view().partition(pid);
                let avg_change = jobs
                    .iter()
                    .map(|&j| self.jobs[j].runtime.partition_change(pid))
                    .sum::<f64>()
                    / jobs.len() as f64;
                SlotInfo {
                    pid,
                    version,
                    num_jobs: jobs.len(),
                    avg_degree: part.avg_degree(),
                    avg_change,
                }
            })
            .collect()
    }

    /// Load + Trigger for one slot: the first job's access loads the
    /// shared structure partition; it is then pinned, so every further
    /// job's access — the reads that per-job engines turn into fresh loads
    /// — hits the cache.  This is exactly the amortization behind the
    /// paper's Fig. 11/12.
    fn load_and_trigger(&mut self, pid: PartitionId, version: VersionId, job_idxs: &[usize]) {
        let structure = CacheObject::Structure { pid, version };
        let sbytes = self.jobs[job_idxs[0]]
            .runtime
            .view()
            .partition(pid)
            .structure_bytes();
        let mut pinned = false;
        let batch_size = self.config.workers.max(1);
        for batch in job_idxs.chunks(batch_size) {
            // Each job in the batch touches the structure partition; after
            // the first touch it is pinned resident for the whole slot.
            for &j in batch {
                let outcome = self.hierarchy.access(structure, sbytes);
                if !pinned {
                    self.hierarchy.pin(&structure);
                    pinned = true;
                }
                let jm = &mut self.job_metrics[j];
                jm.attributed_accesses += 1.0;
                if !outcome.cache_hit {
                    jm.attributed_misses += 1.0;
                    jm.attributed_bytes += sbytes as f64;
                }
            }
            // Load the batch's private tables (structure stays pinned;
            // only job-specific tables rotate, §3.2.3).
            for &j in batch {
                let tbytes = self.jobs[j].runtime.private_table_bytes(pid);
                let outcome = self
                    .hierarchy
                    .access(CacheObject::PrivateTable { job: j as u32, pid }, tbytes);
                let jm = &mut self.job_metrics[j];
                jm.attributed_accesses += 1.0;
                if !outcome.cache_hit {
                    jm.attributed_misses += 1.0;
                    jm.attributed_bytes += tbytes as f64;
                }
            }

            let unprocessed: Vec<u64> = batch
                .iter()
                .map(|&j| self.jobs[j].runtime.unprocessed_vertices(pid))
                .collect();
            let tasks = plan_chunks(
                pid,
                &unprocessed,
                self.config.workers.max(batch.len()),
                self.config.straggler_split,
            );
            let runtimes: Vec<&dyn JobRuntime> =
                batch.iter().map(|&j| &*self.jobs[j].runtime).collect();
            let stats = run_chunk_tasks(self.config.workers, &runtimes, &tasks);
            drop(runtimes);
            for (slot, &j) in batch.iter().enumerate() {
                let s = stats[slot];
                self.jobs[j].runtime.mark_processed(pid);
                let jm = &mut self.job_metrics[j];
                jm.vertex_ops += s.vertex_ops;
                jm.edge_ops += s.edge_ops;
                let m = self.hierarchy.metrics_mut();
                m.vertex_ops += s.vertex_ops;
                m.edge_ops += s.edge_ops;
            }
        }
        self.hierarchy.unpin(&structure);
    }

    /// Push for every job that just finished its iteration.
    fn push_completed(&mut self, job_idxs: &[usize]) {
        for &j in job_idxs {
            if self.jobs[j].done
                || self.jobs[j].runtime.is_converged()
                || !self.jobs[j].runtime.iteration_complete()
            {
                if self.jobs[j].runtime.is_converged() {
                    self.finish_job(j);
                }
                continue;
            }
            let stats = self.jobs[j].runtime.push_and_advance();
            self.charge_push(j, &stats);
            self.job_metrics[j].iterations += 1;
            if stats.converged {
                self.finish_job(j);
            }
        }
    }

    fn charge_push(&mut self, j: usize, stats: &PushStats) {
        self.hierarchy.metrics_mut().sync_ops += stats.sync_records;
        self.job_metrics[j].sync_ops += stats.sync_records;
        let touched = stats
            .touched_master_parts
            .iter()
            .chain(stats.touched_mirror_parts.iter());
        for &(pid, records) in touched {
            let tbytes = self.jobs[j].runtime.private_table_bytes(pid);
            let times = match self.config.sync {
                SyncStrategy::BatchedSorted => 1,
                SyncStrategy::Immediate => records.max(1),
            };
            for _ in 0..times {
                let outcome = self
                    .hierarchy
                    .access(CacheObject::PrivateTable { job: j as u32, pid }, tbytes);
                let jm = &mut self.job_metrics[j];
                jm.attributed_accesses += 1.0;
                if !outcome.cache_hit {
                    jm.attributed_misses += 1.0;
                    jm.attributed_bytes += tbytes as f64;
                }
            }
        }
    }

    fn finish_job(&mut self, j: usize) {
        if !self.jobs[j].done {
            self.jobs[j].done = true;
            self.hierarchy.evict_job(j as u32);
        }
    }

    /// Typed results of a finished (or running) job; `None` if `job` is
    /// unknown or was submitted with a different program type.
    pub fn results<P: VertexProgram>(&self, job: JobId) -> Option<Vec<P::Value>> {
        let entry = self.jobs.get(job as usize)?;
        entry
            .runtime
            .as_any()
            .downcast_ref::<TypedJob<P>>()
            .map(|t| t.extract())
    }

    /// The job's display name.
    pub fn job_name(&self, job: JobId) -> Option<String> {
        self.jobs.get(job as usize).map(|e| e.runtime.name())
    }

    /// Whether the job has converged.
    pub fn job_done(&self, job: JobId) -> bool {
        self.jobs
            .get(job as usize)
            .map(|e| e.done)
            .unwrap_or(false)
    }

    /// Iterations the job ran (counted as Push stages).
    pub fn job_iterations(&self, job: JobId) -> u64 {
        self.job_metrics
            .get(job as usize)
            .map(|m| m.iterations)
            .unwrap_or(0)
    }

    /// Per-job attributed metrics.
    pub fn job_metrics(&self, job: JobId) -> JobMetrics {
        self.job_metrics
            .get(job as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Number of submitted jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Accumulated global counters.
    pub fn metrics(&self) -> &Metrics {
        self.hierarchy.metrics()
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.config.cost
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The underlying snapshot store.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Total partition loads since construction.
    pub fn total_loads(&self) -> u64 {
        self.loads
    }

    /// Modeled makespan of everything run so far.
    pub fn modeled_seconds(&self) -> f64 {
        self.config
            .cost
            .total_seconds(self.hierarchy.metrics(), self.config.workers)
    }

    /// Modeled CPU utilization of everything run so far (Fig. 15).
    pub fn utilization(&self) -> f64 {
        self.config
            .cost
            .utilization(self.hierarchy.metrics(), self.config.workers)
    }
}
