//! The CGraph executor (paper Alg. 3): Load — Trigger — Push.
//!
//! The engine itself is thin: job lifecycle and the public API live
//! here, while the mechanics are layered in [`crate::exec`] — the
//! incrementally maintained [`SlotPlanner`], the unified
//! [`ChargeLedger`], and the pipelined wavefront round executor.

use std::sync::Arc;

use cgraph_graph::snapshot::SnapshotStore;
use cgraph_graph::{FootprintProfile, PartitionSet, ShardPlacement};
use cgraph_memsim::{CostModel, HierarchyConfig, JobMetrics, Metrics};

use crate::exec::crew::{ExecCrew, ExecError};
use crate::exec::ledger::JobTiming;
use crate::exec::wavefront::RoundBuffers;
use crate::exec::{ChargeLedger, PrefetchQueue, SlotPlanner};
use crate::fault::{FaultError, FaultPlane};
use crate::incr::{IncrementalProgram, ResumeSubmit};
use crate::job::{JobId, JobRuntime, TypedJob};
use crate::obs::event::{EventKind, NONE};
use crate::obs::{Observer, Recorder};
use crate::program::VertexProgram;
use crate::scheduler::{OrderScheduler, PriorityScheduler, Scheduler};

/// How Push charges vertex-state synchronization to the memory hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncStrategy {
    /// The paper's batched sorted push (Alg. 2): records are sorted by
    /// destination partition, so each private-table partition is loaded
    /// once per push.
    BatchedSorted,
    /// The naive alternative: every record individually touches its
    /// destination partition (the ablation for design decision D4).
    Immediate,
}

/// Which scheduler drives partition loading.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedulerKind {
    /// The paper's `Pri(P) = N(P) + θ·D(P)·C(P)` (Eq. 1); `theta` is the
    /// fraction of the admissible θ range.
    Priority {
        /// Fraction of the admissible θ range, in `[0, 1)`.
        theta: f64,
    },
    /// Fixed partition-id order: the `CGraph-without` ablation (Fig. 8).
    FixedOrder,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Trigger-stage worker threads (the paper's per-core workers); also
    /// the job batch size when more jobs share a partition than workers.
    pub workers: usize,
    /// Simulated cache/memory capacities.
    pub hierarchy: HierarchyConfig,
    /// Cost model for modeled time.
    pub cost: CostModel,
    /// Push charging strategy.
    pub sync: SyncStrategy,
    /// Whether to split the straggler job's vertices across free cores.
    pub straggler_split: bool,
    /// Partition-loading scheduler.
    pub scheduler: SchedulerKind,
    /// Whole-wave scheduler lookahead: when set, rounds are planned via
    /// [`Scheduler::plan_with_jobs`] so candidate waves are scored by
    /// shared-job overlap (two slots serving the same job pair are
    /// planned together even when a disjoint slot carries equal
    /// priority) instead of the greedy repeated `pick`.  Off by default
    /// — the default plan is bit-for-bit the classic schedule.
    pub lookahead: bool,
    /// Wavefront width: how many slots the scheduler plans per round.
    ///
    /// At 1 (the default) the engine reproduces the classic single-slot
    /// schedule exactly.  Wider waves keep several structure partitions
    /// pinned at once and pipeline one slot's Load behind another's
    /// Trigger, which the modeled time accounts for (see
    /// [`crate::exec::wavefront`]).  Algorithm results are identical at
    /// any width; only the access schedule and modeled makespan change.
    pub wavefront: usize,
    /// Snapshot-store shards modeled as independent stage-one (disk →
    /// memory) I/O lanes.  A physically sharded store always wins: its
    /// shard count and round-robin placement define the lanes, keeping
    /// modeled parallelism and per-lane attribution aligned with the
    /// actual chains (and comparable with `StreamEngine`'s).  This knob
    /// only takes effect over a single-shard store, where it models the
    /// lane layout a `with_shards` store of the same count would have.
    /// At 1 (the default) there is a single lane — the PR 1 model.
    pub shards: usize,
    /// Partition→lane placement for the *modeled* lanes of an unsharded
    /// store (defaults to round-robin, the PR 2 model).  A physically
    /// sharded store always dictates both its lane count and its own
    /// placement — including a locality table
    /// ([`ShardPlacement::locality`]) — so this knob, like
    /// [`shards`](Self::shards), only takes effect over a single-shard
    /// store.
    pub placement: ShardPlacement,
    /// Prefetch window depth: how many wave slots ahead the
    /// [`crate::exec::PrefetchQueue`] may issue a slot's disk fetch on
    /// its shard's lane while earlier slots install and compute.  At 0
    /// (the default) Load stays the synchronous fused stage of PR 1 —
    /// `shards = 1, prefetch_depth = 0` reproduces PR 1 bit-for-bit.
    /// Depths > 0 never change algorithm results or traffic counters,
    /// only the overlap the round's modeled time credits (and the probe
    /// scans' parallel wall-clock drain).
    pub prefetch_depth: usize,
    /// Safety valve: abort `run` after this many partition loads (a
    /// round never splits, so a wide wavefront may finish the round it
    /// started when the valve trips).
    pub max_loads: u64,
    /// Dedicated I/O worker threads for the concurrent executor
    /// ([`crate::exec::crew`]).  At 0 (the default) rounds execute on
    /// the classic fork-join path.  At ≥ 1, multi-slot waves run the
    /// actor-style pipeline: long-lived I/O workers (at most one per
    /// lane) stream completed loads over bounded channels into the
    /// main-thread install stage, which feeds a persistent trigger
    /// pool of [`workers`](Self::workers) threads.  Results, traffic
    /// counters, and modeled times are bit-identical to the fork-join
    /// path at any setting — only wall-clock behavior changes.
    pub io_workers: usize,
    /// Bound (in messages) of the concurrent executor's fetch and
    /// completion channels; clamped to ≥ 1.  Small capacities throttle
    /// how far I/O workers run ahead; correctness and deadlock freedom
    /// hold at any value (the install loop never blocks on a full
    /// queue).
    pub channel_capacity: usize,
    /// Tracing/metrics observer threaded through the executor
    /// ([`crate::obs`]).  `None` (the default) resolves to
    /// [`Observer::disabled`], so every instrumentation site reduces to
    /// one branch on a permanently-off recorder.  Observation is
    /// strictly read-only — it samples the wall clock and appends to
    /// private rings, never feeding back into scheduling, charging, or
    /// results — so enabling it changes no modeled figure and no
    /// algorithm output (pinned by `tests/observability.rs`).
    pub observer: Option<Arc<Observer>>,
    /// Seeded fault plane threaded through every I/O boundary
    /// ([`crate::fault`]).  `None` (the default) — or an explicit
    /// [`FaultPlane::disabled`] — reduces every injection site to one
    /// branch, keeping results bit-identical to a fault-free engine
    /// (pinned by `tests/chaos.rs`).  When set and enabled, every
    /// planned slot fetch is admitted through the plane before its
    /// round executes: transient faults retry under the plane's
    /// [`RetryPolicy`](crate::fault::RetryPolicy) (retries priced into
    /// the ledger as disk re-reads, modeled backoff folded into
    /// pipeline time), exhausted budgets *quarantine* the slot's jobs
    /// — typed [`FaultError`], [`Engine::job_fault`] — instead of
    /// aborting the engine, and per-lane circuit breakers reroute
    /// fetch storms to always-succeeding disk re-fetch pricing.
    pub faults: Option<Arc<FaultPlane>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            hierarchy: HierarchyConfig::default(),
            cost: CostModel::default(),
            sync: SyncStrategy::BatchedSorted,
            straggler_split: true,
            scheduler: SchedulerKind::Priority { theta: 0.5 },
            lookahead: false,
            wavefront: 1,
            shards: 1,
            placement: ShardPlacement::RoundRobin,
            prefetch_depth: 0,
            max_loads: u64::MAX,
            io_workers: 0,
            channel_capacity: 2,
            observer: None,
            faults: None,
        }
    }
}

/// Summary of one [`Engine::run`] call.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Partition loads performed.
    pub loads: u64,
    /// Counter deltas accumulated during this run.
    pub metrics: Metrics,
    /// Modeled makespan of this run under the engine's cost model.
    ///
    /// At wavefront width 1 this is the linear model
    /// (`access + compute/workers`, exactly as the classic engine
    /// reported); at wider widths it is the per-round pipeline model,
    /// which overlaps Load and Trigger and is therefore at most the
    /// linear figure for the same traffic.
    pub modeled_seconds: f64,
    /// `false` if the run stopped at `max_loads` before all jobs converged.
    pub completed: bool,
}

pub(crate) struct JobEntry {
    /// Shared so the concurrent executor's long-lived worker threads can
    /// hold per-round handles; every mutation goes through `&self`
    /// interior mutability, and the engine remains the only scheduler.
    pub(crate) runtime: Arc<dyn JobRuntime>,
    pub(crate) done: bool,
    /// Set when fault admission exhausted a fetch's retry budget while
    /// this job was interested in the slot: the job was retired without
    /// converging (`done` stays false) and carries its typed error.
    pub(crate) quarantined: Option<FaultError>,
}

/// The concurrent iterative graph-processing engine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cgraph_core::{Engine, EngineConfig};
/// use cgraph_graph::snapshot::SnapshotStore;
/// use cgraph_graph::vertex_cut::VertexCutPartitioner;
/// use cgraph_graph::{generate, Partitioner};
///
/// let edges = generate::cycle(64);
/// let parts = VertexCutPartitioner::new(4).partition(&edges);
/// let mut engine = Engine::new(
///     Arc::new(SnapshotStore::new(parts)),
///     EngineConfig::default(),
/// );
/// // Programs live in `cgraph-algos`; see that crate for submissions.
/// let report = engine.run();
/// assert!(report.completed);
/// ```
pub struct Engine {
    pub(crate) config: EngineConfig,
    pub(crate) store: Arc<SnapshotStore>,
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) jobs: Vec<JobEntry>,
    pub(crate) ledger: ChargeLedger,
    pub(crate) planner: SlotPlanner,
    pub(crate) prefetch: PrefetchQueue,
    pub(crate) round: RoundBuffers,
    pub(crate) loads: u64,
    pub(crate) pipeline_seconds: f64,
    /// Lazily spawned concurrent executor crew (`io_workers > 0` only).
    pub(crate) crew: Option<ExecCrew>,
    /// Set when a concurrent-executor worker died (panicking user code,
    /// disconnected channel): the crew has been shut down gracefully and
    /// the engine refuses further rounds.  See [`Engine::exec_error`].
    pub(crate) fault: Option<ExecError>,
    /// The seeded fault plane, when the config carried one
    /// ([`crate::fault`]); `None` keeps admission a single branch.
    pub(crate) faults: Option<Arc<FaultPlane>>,
    /// Jobs quarantined by fault admission so far.
    pub(crate) quarantines: u64,
    /// The resolved observer (the config's, or the shared disabled one).
    pub(crate) obs: Arc<Observer>,
    /// Main-thread event recorder: fetch-issue / reorder-wait / install
    /// / push spans.  Permanently off unless the config carried an
    /// enabled observer.
    pub(crate) rec: Recorder,
    /// Rounds executed so far — the round stamp on trace events.
    pub(crate) round_no: u32,
}

impl Engine {
    /// Creates an engine over a snapshot store.
    pub fn new(store: Arc<SnapshotStore>, config: EngineConfig) -> Self {
        let scheduler: Box<dyn Scheduler> = match config.scheduler {
            SchedulerKind::Priority { theta } => Box::new(PriorityScheduler::new(theta)),
            SchedulerKind::FixedOrder => Box::new(OrderScheduler),
        };
        // A physically sharded store dictates the lanes *and* the
        // placement, keeping the model and per-lane attribution aligned
        // with the actual chains; `config.shards`/`config.placement`
        // only model lanes over an unsharded store (both default to
        // round-robin, so equal counts coincide).
        let (lanes, placement) = if store.num_shards() > 1 {
            (store.num_shards(), store.placement().clone())
        } else {
            (config.shards.max(1), config.placement.clone())
        };
        let prefetch = PrefetchQueue::with_placement(lanes, config.prefetch_depth, placement);
        let ledger = ChargeLedger::new(config.hierarchy);
        let obs = config.observer.clone().unwrap_or_else(Observer::disabled);
        let rec = obs.recorder("main");
        // A disabled plane is the same as no plane: drop it here so the
        // per-round admission check stays a single `None` branch.
        let faults = config.faults.clone().filter(|plane| plane.is_enabled());
        Engine {
            config,
            store,
            scheduler,
            jobs: Vec::new(),
            ledger,
            planner: SlotPlanner::new(),
            prefetch,
            round: RoundBuffers::default(),
            loads: 0,
            pipeline_seconds: 0.0,
            crew: None,
            fault: None,
            faults,
            quarantines: 0,
            obs,
            rec,
            round_no: 0,
        }
    }

    /// The crew the concurrent executor path runs on, spawning it on
    /// first use: at most one I/O worker per lane, `workers` trigger
    /// threads, channels bounded at `channel_capacity`, and a dispatch
    /// window of `prefetch_depth + 1` slots (the modeled release
    /// constraint, enforced for real).
    pub(crate) fn ensure_crew(&mut self) -> ExecCrew {
        match self.crew.take() {
            Some(crew) => crew,
            None => {
                let nio = self.config.io_workers.min(self.prefetch.shards()).max(1);
                ExecCrew::spawn(
                    nio,
                    self.config.workers.max(1),
                    self.config.channel_capacity.max(1),
                    self.prefetch.depth() + 1,
                    &self.obs,
                    self.faults.clone(),
                )
            }
        }
    }

    /// Convenience constructor for a static (single-snapshot) graph.
    pub fn from_partitions(parts: PartitionSet, config: EngineConfig) -> Self {
        Engine::new(Arc::new(SnapshotStore::new(parts)), config)
    }

    /// Submits a job bound to the newest snapshot. Returns its id.
    pub fn submit<P: VertexProgram>(&mut self, program: P) -> JobId {
        let ts = self.store.latest_timestamp();
        self.submit_at(program, ts)
    }

    /// Submits a job arriving at time `ts`: it binds to the newest snapshot
    /// whose timestamp does not exceed `ts` (paper §3.2.1, Fig. 5).
    pub fn submit_at<P: VertexProgram>(&mut self, program: P, ts: u64) -> JobId {
        let id = self.jobs.len() as JobId;
        let view = self.store.view_at(ts);
        let runtime = TypedJob::new(id, program, view);
        let done = runtime.is_converged();
        self.jobs
            .push(JobEntry { runtime: Arc::new(runtime), done, quarantined: None });
        self.ledger.register_job();
        let runtime = &*self.jobs[id as usize].runtime;
        self.planner.track_job(id as usize, runtime, !done);
        id
    }

    /// Submits a job bound to the newest snapshot, seeding it from a
    /// prior converged result when the delta range allows (see
    /// [`submit_resumed_at`](Self::submit_resumed_at)).
    pub fn submit_resumed<P: IncrementalProgram>(
        &mut self,
        program: P,
        prior_ts: u64,
        prior: &[P::Value],
    ) -> ResumeSubmit {
        let ts = self.store.latest_timestamp();
        self.submit_resumed_at(program, ts, prior_ts, prior)
    }

    /// Submits a job arriving at time `ts` that may resume from a prior
    /// result converged against the snapshot bound at `prior_ts`.
    ///
    /// The store's [`delta_summary`](SnapshotStore::delta_summary)
    /// between the two binds decides the path: an addition-only range
    /// seeds the job via [`TypedJob::resume_from`] with the frontier set
    /// to the vertices the deltas touched; a range with removals (which
    /// can shrink monotone values), a backwards range, or a prior whose
    /// vertex count no longer matches falls back to the ordinary
    /// from-scratch [`submit_at`](Self::submit_at).  Either path yields
    /// bit-identical results; only the cost differs.
    pub fn submit_resumed_at<P: IncrementalProgram>(
        &mut self,
        program: P,
        ts: u64,
        prior_ts: u64,
        prior: &[P::Value],
    ) -> ResumeSubmit {
        let summary = self.store.delta_summary(prior_ts, ts);
        let seedable = match &summary {
            Some(s) => s.monotone_safe(),
            None => false,
        };
        if !seedable {
            return ResumeSubmit { job: self.submit_at(program, ts), seeded: false };
        }
        let id = self.jobs.len() as JobId;
        let view = self.store.view_at(ts);
        if prior.len() != view.num_vertices() as usize {
            return ResumeSubmit { job: self.submit_at(program, ts), seeded: false };
        }
        let summary = summary.expect("seedable implies Some");
        let runtime = TypedJob::resume_from(id, program, view, prior, &summary.touched);
        let done = runtime.is_converged();
        self.jobs
            .push(JobEntry { runtime: Arc::new(runtime), done, quarantined: None });
        self.ledger.register_job();
        let runtime = &*self.jobs[id as usize].runtime;
        self.planner.track_job(id as usize, runtime, !done);
        ResumeSubmit { job: id, seeded: true }
    }

    /// Retires jobs that converged outside a Push of their own (kept
    /// from the classic loop head: no hierarchy eviction).
    fn retire_converged(&mut self) {
        for j in 0..self.jobs.len() {
            if !self.jobs[j].done && self.jobs[j].runtime.is_converged() {
                self.jobs[j].done = true;
                self.planner.retire_job(j);
            }
        }
    }

    /// Executes exactly one scheduling round — the loop body of
    /// [`run`](Self::run): retire already-converged jobs, plan a
    /// wavefront over the pending slots, Load–Trigger–Push it, and
    /// advance the load and pipeline-time counters.  Returns `false`
    /// (executing nothing) when no slot is pending.
    ///
    /// This is the serving layer's entry point: a driver can interleave
    /// `submit_at` calls between rounds — newly admitted jobs join the
    /// slot planner immediately and are scheduled from the next round
    /// on, matching the paper's runtime registration of new jobs.
    pub fn step_round(&mut self) -> bool {
        if self.fault.is_some() || !self.prepare_round() {
            return false;
        }
        self.exec_planned_round();
        true
    }

    /// The concurrent executor's parked failure, if a worker thread died
    /// (panicking user code inside `process_chunk` or a probe scan) or a
    /// crew channel disconnected.  The engine shuts the crew down
    /// gracefully at the fault — channels closed, surviving workers
    /// joined — and every later [`step_round`](Self::step_round) /
    /// [`run`](Self::run) refuses to execute instead of hanging on or
    /// re-panicking over a half-dead pipeline.
    pub fn exec_error(&self) -> Option<ExecError> {
        self.fault
    }

    /// Retires converged jobs and reports whether any slot is pending —
    /// the round-boundary state `run`'s valve checks consult.
    fn prepare_round(&mut self) -> bool {
        self.retire_converged();
        !self.planner.is_empty()
    }

    /// Plans and executes one round over the (non-empty) pending slots.
    fn exec_planned_round(&mut self) {
        let width = self.config.wavefront.max(1);
        let picks = {
            let lanes = self.prefetch.shards();
            let placement = self.prefetch.placement().clone();
            let runtimes: Vec<&dyn JobRuntime> =
                self.jobs.iter().map(|entry| &*entry.runtime).collect();
            let infos = self.planner.infos(&runtimes, lanes, &placement);
            drop(runtimes);
            if self.config.lookahead {
                let slot_jobs = self.planner.slot_job_lists();
                self.scheduler.plan_with_jobs(&infos, &slot_jobs, width)
            } else {
                self.scheduler.plan(&infos, width)
            }
        };
        // Fault admission: every planned slot fetch passes through the
        // plane on the main thread, before the round dispatches — the
        // same gate for the fork-join and concurrent-crew paths.
        if !self.admit_fetches(&picks) {
            // A fetch exhausted its budget: its jobs were quarantined
            // (mutating the planner, so this round's plan is stale) and
            // the round is skipped.  The round counter still advances so
            // fault draws keyed on it stay unique.
            self.round_no = self.round_no.wrapping_add(1);
            return;
        }
        let round_seconds = self.exec_round(&picks);
        self.pipeline_seconds += round_seconds;
        self.loads += picks.len() as u64;
        self.round_no = self.round_no.wrapping_add(1);
    }

    /// Runs the planned slots' fetches through the fault plane.  Returns
    /// `true` when the round may execute; `false` when at least one slot
    /// drew an unrecoverable fault and its interested jobs were
    /// quarantined.  Retries and breaker reroutes are priced into the
    /// ledger as disk re-fetches and their modeled backoff/timeout delay
    /// folded into pipeline time.
    fn admit_fetches(&mut self, picks: &[usize]) -> bool {
        let Some(plane) = self.faults.clone() else {
            return true;
        };
        let round = self.round_no;
        // Pass 1: read every planned slot *before* any retirement —
        // quarantining dirties the planner's slot index, which would
        // skew later reads of this round's (already stale) indices.
        let mut quarantine: Vec<(Vec<usize>, FaultError)> = Vec::new();
        let mut injected_delay = 0.0;
        let trips_before = if self.rec.on() {
            plane.stats().breaker_trips
        } else {
            0
        };
        for &idx in picks {
            let ((pid, version), jobs) = self.planner.slot(idx);
            let jobs = jobs.to_vec();
            let lane = self.prefetch.lane_of(pid);
            match plane.admit_fetch(lane, pid as u64, version as u64, round as u64) {
                Ok(adm) => {
                    injected_delay += adm.delay_seconds;
                    let round_trips = adm.retries as u64 + adm.rerouted as u64;
                    if round_trips > 0 {
                        // Each retry (and a breaker reroute) re-reads the
                        // slot's structure from disk; charge the slot's
                        // first interested job, like the planner's own
                        // representative-job convention.
                        let job = jobs[0];
                        let bytes = self.jobs[job]
                            .runtime
                            .view()
                            .partition(pid)
                            .structure_bytes();
                        self.ledger.charge_retry_fetch(
                            lane,
                            job,
                            bytes.saturating_mul(round_trips),
                        );
                        if self.rec.on() {
                            self.rec.instant(
                                EventKind::FaultRetry,
                                job as u32,
                                lane as u32,
                                round,
                                round_trips,
                            );
                            let r = self.obs.registry();
                            r.counter("fault_retries").add(adm.retries as u64);
                            if adm.rerouted {
                                r.counter("fault_reroutes").inc();
                            }
                        }
                    }
                }
                Err(err) => quarantine.push((jobs, err)),
            }
        }
        if self.rec.on() {
            let tripped = plane.stats().breaker_trips - trips_before;
            for _ in 0..tripped {
                self.rec
                    .instant(EventKind::BreakerTrip, NONE, NONE, round, 0);
            }
            if tripped > 0 {
                self.obs.registry().counter("breaker_trips").add(tripped);
            }
        }
        self.pipeline_seconds += injected_delay;
        if quarantine.is_empty() {
            return true;
        }
        // Pass 2: quarantine every job interested in a failed slot —
        // retired from the planner and ledger like a finished job, but
        // `done` stays false and the typed error is kept.
        for (jobs, err) in quarantine {
            for j in jobs {
                if self.jobs[j].done || self.jobs[j].quarantined.is_some() {
                    continue;
                }
                self.jobs[j].quarantined = Some(err);
                self.quarantines += 1;
                self.ledger.evict_job(j as u32);
                self.planner.retire_job(j);
                if self.rec.on() {
                    self.rec
                        .instant(EventKind::FaultQuarantine, j as u32, NONE, round, 0);
                    self.obs.registry().counter("fault_quarantines").inc();
                }
            }
        }
        false
    }

    /// Runs all submitted jobs to convergence (Alg. 3): `while
    /// step_round() {}` plus the `max_loads` valve checked between
    /// rounds, exactly as the classic loop did.
    ///
    /// Jobs submitted after a `run` returns are picked up by the next call,
    /// matching the paper's runtime registration of new jobs.
    pub fn run(&mut self) -> RunReport {
        let start_metrics = *self.ledger.metrics();
        let start_loads = self.loads;
        let start_pipeline = self.pipeline_seconds;
        let width = self.config.wavefront.max(1);
        let mut completed = true;
        while self.fault.is_none() && self.prepare_round() {
            if self.loads - start_loads >= self.config.max_loads {
                completed = false;
                break;
            }
            self.exec_planned_round();
        }
        // A crew fault mid-run is a truncation, not a completion.
        completed &= self.fault.is_none();
        let metrics = self.ledger.metrics().since(&start_metrics);
        // Width 1 keeps the classic linear figure bit-for-bit; wider
        // waves report the pipeline model their schedule actually earns.
        let modeled_seconds = if width <= 1 {
            self.config
                .cost
                .total_seconds(&metrics, self.config.workers)
        } else {
            self.pipeline_seconds - start_pipeline
        };
        RunReport { loads: self.loads - start_loads, metrics, modeled_seconds, completed }
    }

    /// Marks a job finished: evicts its simulated state and deregisters
    /// it from the slot planner.  Idempotent.
    pub(crate) fn finish_job(&mut self, j: usize) {
        if !self.jobs[j].done {
            self.jobs[j].done = true;
            self.ledger.evict_job(j as u32);
            self.planner.retire_job(j);
        }
    }

    /// Typed results of a finished (or running) job; `None` if `job` is
    /// unknown or was submitted with a different program type.
    pub fn results<P: VertexProgram>(&self, job: JobId) -> Option<Vec<P::Value>> {
        let entry = self.jobs.get(job as usize)?;
        entry
            .runtime
            .as_any()
            .downcast_ref::<TypedJob<P>>()
            .map(|t| t.extract())
    }

    /// The job's display name.
    pub fn job_name(&self, job: JobId) -> Option<String> {
        self.jobs.get(job as usize).map(|e| e.runtime.name())
    }

    /// Whether the job has converged.
    pub fn job_done(&self, job: JobId) -> bool {
        self.jobs.get(job as usize).map(|e| e.done).unwrap_or(false)
    }

    /// The typed fault that quarantined the job, if fault admission
    /// retired it before convergence (`None` for healthy or unknown
    /// jobs).  Quarantined jobs are never [`job_done`](Self::job_done).
    pub fn job_fault(&self, job: JobId) -> Option<FaultError> {
        self.jobs.get(job as usize).and_then(|e| e.quarantined)
    }

    /// Jobs quarantined by fault admission so far.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantines
    }

    /// The engine's fault plane, when one was configured and enabled.
    pub fn fault_plane(&self) -> Option<&Arc<FaultPlane>> {
        self.faults.as_ref()
    }

    /// Iterations the job ran (counted as Push stages).
    pub fn job_iterations(&self, job: JobId) -> u64 {
        self.ledger.job_metrics(job as usize).iterations
    }

    /// Per-job attributed metrics.
    pub fn job_metrics(&self, job: JobId) -> JobMetrics {
        self.ledger.job_metrics(job as usize)
    }

    /// Records a served job's arrival and admission times (virtual
    /// seconds) in the ledger — called by the serving layer at the
    /// moment it releases the job from its admission queue.
    pub fn record_admission(&mut self, job: JobId, arrival: f64, admitted: f64) {
        self.ledger
            .record_admission(job as usize, arrival, admitted);
    }

    /// Records a served job's convergence time (virtual seconds).
    /// Idempotent: only the first completion sticks.
    pub fn record_completion(&mut self, job: JobId, at: f64) {
        self.ledger.record_completion(job as usize, at);
    }

    /// The job's serve-layer timing, if it was admitted through one.
    pub fn job_timing(&self, job: JobId) -> Option<JobTiming> {
        self.ledger.job_timing(job as usize)
    }

    /// Number of submitted jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Accumulated global counters.
    pub fn metrics(&self) -> &Metrics {
        self.ledger.metrics()
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.config.cost
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The resolved observer: the config's, or the shared disabled one.
    pub fn observer(&self) -> &Arc<Observer> {
        &self.obs
    }

    /// The underlying snapshot store.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Total partition loads since construction.
    pub fn total_loads(&self) -> u64 {
        self.loads
    }

    /// Pipeline-modeled seconds accumulated over every round executed so
    /// far (Load of slot *i+1* overlapped with Trigger of slot *i*
    /// within each round).  At wavefront width 1 this equals the linear
    /// model of the same rounds, so the two figures are comparable
    /// across widths.
    pub fn pipeline_seconds(&self) -> f64 {
        self.pipeline_seconds
    }

    /// The prefetch queue: the stage-one lane count (snapshot-store
    /// shards) and window depth this engine executes with.
    pub fn prefetch_queue(&self) -> &PrefetchQueue {
        &self.prefetch
    }

    /// Disk bytes fetched through each shard's stage-one I/O lane so far
    /// (index = shard; may be shorter than the shard count when tail
    /// lanes never saw disk traffic).
    pub fn shard_fetch_bytes(&self) -> &[u64] {
        self.ledger.shard_fetch_bytes()
    }

    /// Spill-storage re-fetch bytes per lane — the priced round-trips of
    /// capacity-evicted snapshot records (a subset of
    /// [`shard_fetch_bytes`](Self::shard_fetch_bytes)).
    pub fn spill_fetch_bytes(&self) -> &[u64] {
        self.ledger.spill_fetch_bytes()
    }

    /// Fault-retry / breaker-reroute re-fetch bytes per lane — the
    /// priced round-trips fault admission injected (a subset of
    /// [`shard_fetch_bytes`](Self::shard_fetch_bytes)).
    pub fn retry_fetch_bytes(&self) -> &[u64] {
        self.ledger.retry_fetch_bytes()
    }

    /// Disk fetch bytes jobs pulled from outside their home shards (the
    /// lane carrying most of each job's traffic) — the cross-node
    /// traffic figure locality-aware placement shrinks.
    pub fn cross_shard_fetch_bytes(&self) -> u64 {
        self.ledger.cross_shard_fetch_bytes()
    }

    /// One job's disk fetch bytes per shard lane.
    pub fn job_fetch_by_lane(&self, job: JobId) -> &[u64] {
        self.ledger.job_fetch_by_lane(job as usize)
    }

    /// The partition co-access footprints observed so far (every
    /// partition each job ever had pending), as a profile
    /// [`ShardPlacement::locality`] can consume: profile a
    /// representative run, then rebuild the store under the resulting
    /// placement.
    pub fn footprint_profile(&self) -> FootprintProfile {
        let mut profile = FootprintProfile::new();
        for fp in self.planner.job_footprints() {
            profile.record(fp);
        }
        profile
    }

    /// Modeled makespan of everything run so far (linear model over the
    /// accumulated counters; per-run pipeline figures are in each run's
    /// [`RunReport`]).
    pub fn modeled_seconds(&self) -> f64 {
        self.config
            .cost
            .total_seconds(self.ledger.metrics(), self.config.workers)
    }

    /// Modeled CPU utilization of everything run so far (Fig. 15).
    pub fn utilization(&self) -> f64 {
        self.config
            .cost
            .utilization(self.ledger.metrics(), self.config.workers)
    }
}
