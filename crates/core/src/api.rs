//! A common capability trait over every engine in the workspace.
//!
//! The CGraph engine ([`crate::Engine`]) and the baseline streaming engines
//! (`cgraph-baselines`) expose the same submit/run/results surface through
//! [`JobEngine`], so multi-phase drivers (SCC) and the experiment harness
//! are engine-agnostic.

use cgraph_memsim::{CostModel, JobMetrics, Metrics};

use crate::job::JobId;
use crate::program::VertexProgram;
use crate::RunReport;

/// Engine-agnostic submit/run/inspect interface.
pub trait JobEngine {
    /// Submits a job bound to the newest snapshot.
    fn submit_program<P: VertexProgram>(&mut self, program: P) -> JobId;

    /// Submits a job arriving at `ts` (binds the newest snapshot ≤ `ts`).
    fn submit_program_at<P: VertexProgram>(&mut self, program: P, ts: u64) -> JobId;

    /// Runs all submitted jobs to convergence.
    fn run_jobs(&mut self) -> RunReport;

    /// Typed results of a job.
    fn typed_results<P: VertexProgram>(&self, job: JobId) -> Option<Vec<P::Value>>;

    /// Per-job attributed metrics.
    fn job_metrics_of(&self, job: JobId) -> JobMetrics;

    /// Global counters accumulated so far.
    fn global_metrics(&self) -> Metrics;

    /// The engine's cost model.
    fn cost(&self) -> CostModel;

    /// Worker count.
    fn workers(&self) -> usize;

    /// Whether submitted jobs execute concurrently (contending for the
    /// data-access channel) rather than one after another.
    fn is_concurrent(&self) -> bool {
        true
    }

    /// The snapshot store the engine executes over.
    fn snapshot_store(&self) -> &std::sync::Arc<cgraph_graph::snapshot::SnapshotStore>;
}

impl JobEngine for crate::Engine {
    fn submit_program<P: VertexProgram>(&mut self, program: P) -> JobId {
        self.submit(program)
    }

    fn submit_program_at<P: VertexProgram>(&mut self, program: P, ts: u64) -> JobId {
        self.submit_at(program, ts)
    }

    fn run_jobs(&mut self) -> RunReport {
        self.run()
    }

    fn typed_results<P: VertexProgram>(&self, job: JobId) -> Option<Vec<P::Value>> {
        self.results::<P>(job)
    }

    fn job_metrics_of(&self, job: JobId) -> JobMetrics {
        self.job_metrics(job)
    }

    fn global_metrics(&self) -> Metrics {
        *self.metrics()
    }

    fn cost(&self) -> CostModel {
        *self.cost_model()
    }

    fn workers(&self) -> usize {
        self.config().workers
    }

    fn snapshot_store(&self) -> &std::sync::Arc<cgraph_graph::snapshot::SnapshotStore> {
        self.store()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineConfig};
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Partitioner};

    /// Exercise the trait through a generic function.
    fn count_jobs<E: JobEngine>(engine: &mut E) -> usize {
        struct Noop;
        impl VertexProgram for Noop {
            type Value = u32;
            fn init(&self, _: &crate::VertexInfo) -> (u32, u32) {
                (0, 0)
            }
            fn identity(&self) -> u32 {
                0
            }
            fn acc(&self, a: u32, b: u32) -> u32 {
                a.max(b)
            }
            fn is_active(&self, _: &u32, _: &u32) -> bool {
                false
            }
            fn compute(&self, _: &crate::VertexInfo, v: u32, _: u32) -> (u32, Option<u32>) {
                (v, None)
            }
            fn edge_contrib(&self, b: u32, _: f32, _: &crate::VertexInfo) -> u32 {
                b
            }
        }
        let id = engine.submit_program(Noop);
        let report = engine.run_jobs();
        assert!(report.completed);
        assert!(engine.typed_results::<Noop>(id).is_some());
        id as usize + 1
    }

    #[test]
    fn engine_implements_job_engine() {
        let ps = VertexCutPartitioner::new(2).partition(&generate::cycle(8));
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        assert_eq!(count_jobs(&mut engine), 1);
        assert_eq!(engine.workers(), EngineConfig::default().workers);
    }
}
