//! Per-job private vertex-state tables (the paper's "private tables").

use cgraph_graph::PartitionId;

/// One job's state for one partition: replica-parallel `(value, delta)`
/// pairs plus the accumulation buffer new deltas gather in until Push.
#[derive(Clone, Debug)]
pub struct PartState<V> {
    /// Current value per local replica.
    pub values: Vec<V>,
    /// Pending (synchronized) delta per local replica, consumed when the
    /// partition is processed.
    pub deltas: Vec<V>,
    /// Incoming contributions accumulated during the current iteration;
    /// drained by Push.
    pub acc: Vec<V>,
}

impl<V: Copy> PartState<V> {
    /// Creates state for `n` replicas, all slots set to `identity`.
    pub fn new(n: usize, identity: V) -> Self {
        PartState { values: vec![identity; n], deltas: vec![identity; n], acc: vec![identity; n] }
    }

    /// Number of replicas covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Approximate bytes of the user-visible state (values + deltas) —
    /// what the memory simulator charges when the private table is loaded.
    pub fn table_bytes(&self) -> u64 {
        (self.len() * 2 * std::mem::size_of::<V>() + 32) as u64
    }
}

/// Which partitions a job must process in the current iteration and which
/// it has already processed.
#[derive(Clone, Debug)]
pub struct PendingSet {
    active: Vec<bool>,
    processed: Vec<bool>,
    /// Active replicas per partition (straggler detection and `N(P)`).
    pub active_counts: Vec<u32>,
    remaining: usize,
}

impl PendingSet {
    /// Creates an all-inactive set over `np` partitions.
    pub fn new(np: usize) -> Self {
        PendingSet {
            active: vec![false; np],
            processed: vec![false; np],
            active_counts: vec![0; np],
            remaining: 0,
        }
    }

    /// Marks `pid` active for this iteration with `count` active replicas.
    pub fn activate(&mut self, pid: PartitionId, count: u32) {
        let i = pid as usize;
        if !self.active[i] {
            self.active[i] = true;
            self.remaining += 1;
        }
        self.processed[i] = false;
        self.active_counts[i] = count;
    }

    /// Clears everything for a new iteration.
    pub fn reset(&mut self) {
        self.active.iter_mut().for_each(|a| *a = false);
        self.processed.iter_mut().for_each(|p| *p = false);
        self.active_counts.iter_mut().for_each(|c| *c = 0);
        self.remaining = 0;
    }

    /// Whether `pid` is active and still unprocessed.
    pub fn is_pending(&self, pid: PartitionId) -> bool {
        self.active[pid as usize] && !self.processed[pid as usize]
    }

    /// Marks `pid` processed; returns `true` if it was pending.
    pub fn mark_processed(&mut self, pid: PartitionId) -> bool {
        if self.is_pending(pid) {
            self.processed[pid as usize] = true;
            self.remaining -= 1;
            true
        } else {
            false
        }
    }

    /// All currently pending partitions, in id order.
    pub fn pending(&self) -> Vec<PartitionId> {
        (0..self.active.len() as PartitionId)
            .filter(|&p| self.is_pending(p))
            .collect()
    }

    /// Number of still-unprocessed active partitions.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether any partition is active this iteration.
    pub fn any_active(&self) -> bool {
        self.active.iter().any(|&a| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_state_initialized_to_identity() {
        let s = PartState::new(3, 7u32);
        assert_eq!(s.values, vec![7, 7, 7]);
        assert_eq!(s.deltas, vec![7, 7, 7]);
        assert_eq!(s.acc, vec![7, 7, 7]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn table_bytes_scale_with_replicas() {
        let a = PartState::new(10, 0u64);
        let b = PartState::new(100, 0u64);
        assert!(b.table_bytes() > a.table_bytes());
    }

    #[test]
    fn pending_lifecycle() {
        let mut p = PendingSet::new(4);
        assert_eq!(p.remaining(), 0);
        p.activate(1, 5);
        p.activate(3, 2);
        assert_eq!(p.pending(), vec![1, 3]);
        assert!(p.is_pending(1));
        assert!(!p.is_pending(0));
        assert!(p.mark_processed(1));
        assert!(!p.mark_processed(1), "double processing rejected");
        assert_eq!(p.remaining(), 1);
        p.reset();
        assert_eq!(p.remaining(), 0);
        assert!(!p.any_active());
    }

    #[test]
    fn double_activation_keeps_single_slot() {
        let mut p = PendingSet::new(2);
        p.activate(0, 1);
        p.activate(0, 9);
        assert_eq!(p.remaining(), 1);
        assert_eq!(p.active_counts[0], 9);
    }
}
