//! Minimal JSON support: writer helpers + a validating parser.
//!
//! The workspace is offline and carries no serde; every exporter in
//! this crate hand-writes JSON.  This module centralizes the two pieces
//! that must be *correct* rather than merely convenient:
//!
//! * [`escape_json`] / [`fmt_f64`] — writer-side escaping and float
//!   formatting (finite floats print round-trippably; NaN/inf become
//!   `null`, which JSON has no spelling for),
//! * [`parse_json`] — a strict recursive-descent parser into
//!   [`JsonValue`], used by the observability tests and the
//!   `examples/observability.rs` self-check to validate that exported
//!   Chrome traces and metrics snapshots are well-formed and carry the
//!   expected schema.  It accepts exactly RFC 8259 JSON (no comments,
//!   no trailing commas) with a recursion-depth cap.

/// Escapes a string for inclusion inside JSON double quotes.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for NaN / infinities).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them valid
        // JSON numbers either way (they are), but normalize -0.
        if s == "-0" {
            "0".to_string()
        } else {
            s
        }
    } else {
        "null".to_string()
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Key order preserved as written.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Maximum nesting depth the parser accepts (stack-overflow guard).
const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos, depth + 1)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogates are left as replacement chars; the
                        // exporters never emit them.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err("raw control char in string".to_string()),
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).unwrap());
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":null,"e":true}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", ""] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_roundtrips() {
        let s = "quote\" back\\ nl\n tab\t ctrl\u{1} unicode✓";
        let doc = format!("{{\"k\":\"{}\"}}", escape_json(s));
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(s));
    }

    #[test]
    fn fmt_f64_is_json() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(-0.0), "0");
        let v = parse_json(&fmt_f64(0.1 + 0.2)).unwrap();
        assert_eq!(v.as_f64(), Some(0.1 + 0.2));
    }
}
