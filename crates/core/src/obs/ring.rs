//! Per-thread bounded event ring.
//!
//! One [`Ring`] belongs to one producer thread (a `cgraph-io-N` /
//! `cgraph-trigger-N` worker, the main dispatch loop, the serve loop,
//! or the store bridge).  The producer writes events, a drainer reads
//! them out after the producer has quiesced (between rounds, or at
//! export time).  Within that discipline the ring is lock-free and
//! wait-free on the hot path:
//!
//! * every slot is `EVENT_WORDS` plain [`AtomicU64`] words — no
//!   `UnsafeCell`, no `unsafe` anywhere in this module.  Even a misuse
//!   (two producers racing) can only interleave *words* and produce a
//!   garbled event that [`Event::unpack`] rejects; it cannot corrupt
//!   memory,
//! * a push is `EVENT_WORDS` relaxed stores plus one release store of
//!   `head` — no CAS loop, no allocation, no syscall,
//! * when the ring is full the producer **drops the oldest** event
//!   (advances `tail` by one) and bumps a `dropped` counter, so a burst
//!   never blocks the pipeline and the loss is observable rather than
//!   silent.
//!
//! `head` and `tail` are monotonic event sequence numbers (never
//! wrapped); the slot index is `seq & mask`.  The drainer acquires
//! `head`, reads `tail..head`, then release-stores `tail = head`.

use std::sync::atomic::{AtomicU64, Ordering};

use super::event::{Event, EVENT_WORDS};

/// Default per-thread ring capacity, in events.  At ~40 bytes per event
/// this is ~160 KiB per thread — enough for several full rounds of a
/// stress-scale run before drop-oldest engages.
pub const DEFAULT_RING_EVENTS: usize = 4096;

/// A single-producer bounded ring of packed [`Event`]s.
pub struct Ring {
    /// Thread name this ring records for (Chrome trace `thread_name`).
    name: String,
    /// `capacity - 1`; capacity is always a power of two.
    mask: u64,
    /// `capacity * EVENT_WORDS` atomic words.
    slots: Box<[AtomicU64]>,
    /// Next event sequence number to write (producer-owned).
    head: AtomicU64,
    /// Next event sequence number to read (advanced by the producer on
    /// overflow and by the drainer on drain).
    tail: AtomicU64,
    /// Events discarded by drop-oldest since creation.
    dropped: AtomicU64,
}

impl Ring {
    /// Creates a ring able to hold `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(name: &str, capacity: usize) -> Ring {
        let cap = capacity.max(8).next_power_of_two();
        let words = cap * EVENT_WORDS;
        let slots: Box<[AtomicU64]> = (0..words).map(|_| AtomicU64::new(0)).collect();
        Ring {
            name: name.to_string(),
            mask: (cap as u64) - 1,
            slots,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Thread name this ring belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Events lost to drop-oldest so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered (len, not capacity).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        (head - tail) as usize
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer-side append.  Never blocks; drops the oldest event when
    /// full.
    pub fn push(&self, ev: &Event) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head - tail > self.mask {
            // Full: overwrite the oldest slot.  fetch_add (not store)
            // so a concurrent drain advancing tail cannot be undone.
            self.tail.fetch_add(1, Ordering::AcqRel);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let base = ((head & self.mask) as usize) * EVENT_WORDS;
        for (i, w) in ev.pack().iter().enumerate() {
            self.slots[base + i].store(*w, Ordering::Relaxed);
        }
        self.head.store(head + 1, Ordering::Release);
    }

    /// Drains all buffered events in recording order.  Call while the
    /// producer is quiescent (between rounds / at export); a racing
    /// producer can at worst garble individual events, which decode to
    /// `None` and are skipped.
    pub fn drain(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Acquire);
        let mut out = Vec::with_capacity((head - tail) as usize);
        while tail < head {
            let base = ((tail & self.mask) as usize) * EVENT_WORDS;
            let mut words = [0u64; EVENT_WORDS];
            for (i, w) in words.iter_mut().enumerate() {
                *w = self.slots[base + i].load(Ordering::Relaxed);
            }
            if let Some(ev) = Event::unpack(words) {
                out.push(ev);
            }
            tail += 1;
        }
        self.tail.store(head, Ordering::Release);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::{EventKind, NONE};
    use super::*;

    fn ev(seq: u64) -> Event {
        Event {
            kind: EventKind::Install,
            thread: 1,
            job: seq as u32,
            shard: NONE,
            round: 0,
            start_ns: seq,
            dur_ns: 0,
            value: seq,
        }
    }

    #[test]
    fn fifo_drain() {
        let r = Ring::new("t", 16);
        for i in 0..10 {
            r.push(&ev(i));
        }
        let out = r.drain();
        assert_eq!(out.len(), 10);
        assert!(out.iter().enumerate().all(|(i, e)| e.value == i as u64));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let r = Ring::new("t", 8);
        let cap = r.capacity() as u64;
        for i in 0..cap + 5 {
            r.push(&ev(i));
        }
        assert_eq!(r.dropped(), 5);
        let out = r.drain();
        assert_eq!(out.len(), cap as usize);
        // The *oldest* five are gone; the newest `cap` survive in order.
        assert_eq!(out.first().unwrap().value, 5);
        assert_eq!(out.last().unwrap().value, cap + 4);
    }

    #[test]
    fn drain_then_refill() {
        let r = Ring::new("t", 8);
        for i in 0..6 {
            r.push(&ev(i));
        }
        assert_eq!(r.drain().len(), 6);
        for i in 6..9 {
            r.push(&ev(i));
        }
        let out = r.drain();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value, 6);
        assert_eq!(r.dropped(), 0);
    }
}
