//! Log-bucketed concurrent histogram: quantiles without samples.
//!
//! HDR-style bucketing over `u64` values: values below 16 get exact
//! unit buckets; above that, each power-of-two octave is split into 16
//! sub-buckets, so any value lands in a bucket whose width is at most
//! `value / 16`.  Quantile estimates therefore carry a guaranteed
//! relative error bound:
//!
//! ```text
//! oracle <= quantile(q) <= oracle * (1 + 1/16)
//! ```
//!
//! where `oracle` is the nearest-rank quantile over the exact sorted
//! samples — the property `tests/observability.rs` checks under
//! proptest.  Storage is a fixed 976-slot array of relaxed atomic
//! counters (`16 * 60 + 16` buckets covers all of `u64`), so recording
//! is one index computation plus two `fetch_add`s: multi-producer safe,
//! wait-free, no allocation after construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave; the quantile relative-error bound is
/// `1 / SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 16;

/// Bucket count: 16 exact unit buckets + 16 per octave for octaves
/// 4..=63 (values `16..=u64::MAX`).
const BUCKETS: usize = (SUB_BUCKETS as usize) * 61;

/// A concurrent log-bucketed histogram of `u64` observations.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for a value: exact below [`SUB_BUCKETS`], then
/// `16 * octave + sub` with `sub` the top four bits below the MSB.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= 4
    let exp = msb - 4; // shift so v >> exp is in [16, 32)
    (SUB_BUCKETS * exp + (v >> exp)) as usize
}

/// Inclusive upper bound of a bucket — what `quantile` reports.
fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let exp = idx / SUB_BUCKETS - 1;
    let off = idx % SUB_BUCKETS;
    ((off + SUB_BUCKETS + 1) << exp).wrapping_sub(1)
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.  Wait-free, multi-producer safe.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wraps only past 2^64).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`: the upper
    /// bound of the bucket holding the `ceil(q * count)`-th smallest
    /// sample.  Returns 0 for an empty histogram.  Guaranteed within
    /// `[oracle, oracle * (1 + 1/16)]` of the exact nearest-rank value.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Never report past the true max: the top bucket's
                // upper bound can exceed every recorded sample.
                return bucket_upper(idx).min(self.max());
            }
        }
        self.max()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_u64() {
        // Upper bounds are strictly increasing and index mapping is
        // consistent: v always lands in a bucket whose bound >= v.
        let mut prev = 0;
        for idx in 1..BUCKETS {
            let up = bucket_upper(idx);
            assert!(up > prev, "idx {idx}: {up} <= {prev}");
            prev = up;
        }
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, u32::MAX as u64, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v);
            assert!(idx == 0 || bucket_upper(idx - 1) < v);
        }
    }

    #[test]
    fn small_values_exact() {
        let h = Histogram::new();
        for v in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 31);
        assert_eq!(h.max(), 9);
        assert_eq!(h.quantile(0.5), 3); // sorted: 1 1 2 3 4 5 6 9, rank 4
        assert_eq!(h.quantile(1.0), 9);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn relative_error_bound() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0..1000).map(|i| (i * i * 7919) % 1_000_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let oracle = samples[rank - 1];
            let est = h.quantile(q);
            assert!(est >= oracle, "q={q}: est {est} < oracle {oracle}");
            assert!(
                est as f64 <= oracle as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64),
                "q={q}: est {est} above bound for oracle {oracle}"
            );
        }
    }

    #[test]
    fn empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
