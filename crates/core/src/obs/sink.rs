//! Trace sinks: drained events → Chrome `trace_event` JSON / JSONL.
//!
//! A [`TraceDump`] is the result of draining every registered ring once
//! (see [`Observer::dump`](super::Observer::dump)): a thread-name table
//! plus all events merged and sorted by start timestamp.  Both
//! exporters are pure formatters over that snapshot, so one drain can
//! feed both without losing events.
//!
//! The Chrome format targets `about://tracing` / Perfetto's legacy JSON
//! loader: one top-level object with a `traceEvents` array of complete
//! (`"ph":"X"`) duration events, preceded by `"ph":"M"` metadata events
//! naming each thread.  Timestamps are microseconds (floats, 3 decimal
//! digits → nanosecond resolution survives).

use super::event::{Event, NONE};
use super::json::escape_json;

/// A consistent snapshot of all recorded events.
pub struct TraceDump {
    /// Thread names, indexed by `Event::thread`.
    pub threads: Vec<String>,
    /// All events, sorted by `start_ns` (stable, so same-instant events
    /// keep per-ring order).
    pub events: Vec<Event>,
    /// Total events lost to ring overflow across all threads.
    pub dropped_events: u64,
}

fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl TraceDump {
    /// Chrome `trace_event` JSON (object form, loadable in
    /// `about://tracing` and Perfetto).
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.events.len() + 256);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in self.threads.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            ));
        }
        for ev in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"cgraph\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{",
                ev.kind.name(),
                ev.thread,
                micros(ev.start_ns),
                micros(ev.dur_ns),
            ));
            let mut sep = "";
            for (key, field) in [("job", ev.job), ("shard", ev.shard), ("round", ev.round)] {
                if field != NONE {
                    out.push_str(&format!("{sep}\"{key}\":{field}"));
                    sep = ",";
                }
            }
            out.push_str(&format!("{sep}\"value\":{}}}}}", ev.value));
        }
        out.push_str(&format!(
            "],\"otherData\":{{\"dropped_events\":{}}}}}",
            self.dropped_events
        ));
        out
    }

    /// Compact JSONL: one event object per line, grep/jq-friendly.
    pub fn jsonl(&self) -> String {
        let mut out = String::with_capacity(48 * self.events.len());
        for ev in &self.events {
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"thread\":\"{}\",\"start_ns\":{},\"dur_ns\":{}",
                ev.kind.name(),
                escape_json(self.threads.get(ev.thread as usize).map_or("?", |s| s)),
                ev.start_ns,
                ev.dur_ns,
            ));
            for (key, field) in [("job", ev.job), ("shard", ev.shard), ("round", ev.round)] {
                if field != NONE {
                    out.push_str(&format!(",\"{key}\":{field}"));
                }
            }
            out.push_str(&format!(",\"value\":{}}}\n", ev.value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::EventKind;
    use super::super::json::parse_json;
    use super::*;

    fn dump() -> TraceDump {
        TraceDump {
            threads: vec!["main".to_string(), "cgraph-io-0".to_string()],
            events: vec![
                Event {
                    kind: EventKind::FetchComplete,
                    thread: 1,
                    job: NONE,
                    shard: 3,
                    round: 0,
                    start_ns: 1500,
                    dur_ns: 250,
                    value: 4096,
                },
                Event {
                    kind: EventKind::Install,
                    thread: 0,
                    job: 2,
                    shard: 3,
                    round: 0,
                    start_ns: 2000,
                    dur_ns: 100,
                    value: 1,
                },
            ],
            dropped_events: 7,
        }
    }

    #[test]
    fn chrome_json_is_valid_and_schema_complete() {
        let v = parse_json(&dump().chrome_json()).expect("valid json");
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 thread_name metadata + 2 span events.
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("M"));
        let span = &evs[2];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(0.25));
        assert_eq!(
            span.get("args").unwrap().get("shard").unwrap().as_f64(),
            Some(3.0)
        );
        // job was NONE → omitted from args.
        assert!(span.get("args").unwrap().get("job").is_none());
        assert_eq!(
            v.get("otherData")
                .unwrap()
                .get("dropped_events")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let text = dump().jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = parse_json(line).expect("valid line");
            assert!(v.get("kind").unwrap().as_str().is_some());
            assert!(v.get("thread").unwrap().as_str().is_some());
        }
    }
}
