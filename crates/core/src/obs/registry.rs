//! Named metrics registry: counters, gauges, histograms, exporters.
//!
//! The registry is the *cold* path: instrumentation sites call
//! [`Registry::counter`] / [`gauge`](Registry::gauge) /
//! [`histogram`](Registry::histogram) **once** (at setup, or lazily on
//! first use) and keep the returned `Arc` handle; the hot path is then
//! a single relaxed atomic op on the handle with no name lookup and no
//! lock.  The maps behind the lookup are mutex-guarded `BTreeMap`s so
//! exports are deterministically name-ordered.
//!
//! Metric names use Prometheus-safe `[a-z0-9_]` characters so the same
//! name appears verbatim in both exporters; per-shard instances embed
//! the shard in the name (`store_apply_us_shard0`).
//!
//! Two exporters, both allocation-only (no I/O):
//! * [`Registry::metrics_json`] — one JSON object with `counters`,
//!   `gauges`, and `histograms` sections (histograms carry
//!   `count/sum/max/mean/p50/p90/p99`),
//! * [`Registry::prometheus_text`] — a Prometheus text-format page
//!   (`counter` / `gauge` / `summary` families, quantiles as labelled
//!   `name{quantile="0.5"}` samples).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use super::hist::Histogram;
use super::json::{escape_json, fmt_f64};

/// A monotonically increasing `u64` counter.
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    fn new() -> Counter {
        Counter { v: AtomicU64::new(0) }
    }

    /// Adds `n`.  Relaxed; multi-producer safe.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic word).
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The named-metric registry.  See the module docs for the
/// handle-then-hot-path usage pattern.
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
        }
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.hists.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// One-call JSON snapshot of every registered metric.
    pub fn metrics_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, (name, c)) in self.counters.lock().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), c.get()));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in self.gauges.lock().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), fmt_f64(g.get())));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.hists.lock().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                escape_json(name),
                h.count(),
                h.sum(),
                h.max(),
                fmt_f64(h.mean()),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text-format exposition page.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, c) in self.counters.lock().iter() {
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
        }
        for (name, g) in self.gauges.lock().iter() {
            out.push_str(&format!(
                "# TYPE {name} gauge\n{name} {}\n",
                fmt_f64(g.get())
            ));
        }
        for (name, h) in self.hists.lock().iter() {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
            out.push_str(&format!("{name}_max {}\n", h.max()));
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::super::json::parse_json;
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("hits").get(), 3);
    }

    #[test]
    fn json_export_parses_and_contains_sections() {
        let r = Registry::new();
        r.counter("c_one").add(7);
        r.gauge("g_rate").set(1.5);
        r.histogram("h_us").record(42);
        let js = r.metrics_json();
        let v = parse_json(&js).expect("valid json");
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["counters", "gauges", "histograms"]
        );
        let hist = v.get("histograms").unwrap().get("h_us").unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(hist.get("max").unwrap().as_f64(), Some(42.0));
    }

    #[test]
    fn prometheus_text_shape() {
        let r = Registry::new();
        r.counter("reqs").inc();
        r.histogram("lat_us").record(100);
        let page = r.prometheus_text();
        assert!(page.contains("# TYPE reqs counter\nreqs 1\n"));
        assert!(page.contains("# TYPE lat_us summary\n"));
        assert!(page.contains("lat_us{quantile=\"0.99\"}"));
        assert!(page.contains("lat_us_count 1\n"));
    }
}
