//! `core::obs` — zero-cost-when-disabled tracing and metrics.
//!
//! The engine is a concurrent pipeline (per-shard I/O workers, a
//! reorder-buffer install stage, compute crews, WAL fsyncs, capacity
//! spills, admission waves); this module is its flight recorder.  Two
//! planes share one [`Observer`]:
//!
//! * **Event tracing** — each pipeline thread gets a [`Recorder`]
//!   backed by its own bounded lock-free [`Ring`] of typed span
//!   [`Event`]s (fetch issue/complete, reorder wait, install, trigger
//!   chunk, apply rebuild, WAL append/fsync, spill/rehydrate, admission
//!   defer/release), each stamped with (thread, job, shard, round,
//!   monotonic ns).  [`Observer::dump`] drains every ring into a
//!   [`TraceDump`] exportable as Chrome `trace_event` JSON
//!   (`about://tracing`-loadable) or compact JSONL.
//! * **Metrics** — a [`Registry`] of counters, gauges, and
//!   log-bucketed [`Histogram`]s (p50/p99/max without storing samples),
//!   exportable as a one-call JSON snapshot or a Prometheus text page.
//!
//! # Zero cost when disabled
//!
//! Instrumentation sites never pay for tracing they did not ask for.
//! [`Observer::disabled`] hands out recorders whose ring is `None`;
//! every site is written as
//!
//! ```text
//! let t0 = rec.start();            // None-check + one clock read, or 0
//! /* ... the actual work ... */
//! rec.complete(kind, job, shard, round, t0, value);  // no-op when off
//! ```
//!
//! so the disabled fast path is one branch on an always-`None` option —
//! no clock read, no atomic, no allocation.  Nothing the recorder does
//! feeds back into scheduling, charging, or results: it only *reads*
//! the wall clock and appends to its private ring, which is why every
//! pinned bit-for-bit differential suite passes identically with
//! tracing on (checked by `tests/observability.rs`).
//!
//! # Lock-freedom
//!
//! Hot-path recording takes no lock anywhere: ring pushes are plain
//! atomic word stores (see [`ring`]), histogram/counter updates are
//! relaxed `fetch_add`s on pre-fetched handles (see [`registry`]).
//! Locks appear only on cold paths — registering a ring, name→handle
//! lookup, draining, exporting — and in the [store
//! bridge](Observer::store_observer), whose events are per-`apply`
//! rather than per-edge and may arrive from concurrent rehydrating
//! threads.
//!
//! # Overhead
//!
//! `bench_wavefront` / `bench_serve` carry a traced-vs-untraced row
//! gated at ≤5% wall overhead at default scale (recorded-and-skipped on
//! small hosts, like every `WallGate`); the disabled configuration is
//! indistinguishable from the pre-observability build in the same
//! harness (≤1%, i.e. within run-to-run noise).

pub mod event;
pub mod hist;
pub mod json;
pub mod registry;
pub mod ring;
pub mod sink;

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

pub use event::{Event, EventKind, NONE};
pub use hist::Histogram;
pub use json::{parse_json, JsonValue};
pub use registry::{Counter, Gauge, Registry};
pub use ring::Ring;
pub use sink::TraceDump;

/// The shared tracing + metrics hub.  Construct once per run with
/// [`Observer::enabled`] (or [`disabled`](Observer::disabled)), hand
/// the `Arc` to `EngineConfig::observer` / `ServeLoop::with_observer` /
/// `ShardedSnapshotStore::with_observer`, then export with
/// [`dump`](Observer::dump) and [`Registry`] exporters.
pub struct Observer {
    on: bool,
    epoch: Instant,
    ring_events: usize,
    registry: Registry,
    rings: Mutex<Vec<Arc<Ring>>>,
}

impl Observer {
    /// An enabled observer with the default per-thread ring capacity.
    pub fn enabled() -> Arc<Observer> {
        Observer::with_ring_capacity(ring::DEFAULT_RING_EVENTS)
    }

    /// An enabled observer whose per-thread rings hold `events` events
    /// (rounded up to a power of two) before drop-oldest engages.
    pub fn with_ring_capacity(events: usize) -> Arc<Observer> {
        Arc::new(Observer {
            on: true,
            epoch: Instant::now(),
            ring_events: events,
            registry: Registry::new(),
            rings: Mutex::new(Vec::new()),
        })
    }

    /// The no-op observer: recorders it hands out are permanently off,
    /// and the registry stays empty unless someone writes to it
    /// directly.
    pub fn disabled() -> Arc<Observer> {
        Arc::new(Observer {
            on: false,
            epoch: Instant::now(),
            ring_events: 0,
            registry: Registry::new(),
            rings: Mutex::new(Vec::new()),
        })
    }

    /// Whether tracing is live.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Nanoseconds since this observer was constructed.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The metrics registry (usable even when tracing is disabled, but
    /// engine instrumentation only writes to it when enabled).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Creates (and registers) a recorder for the named thread.  On a
    /// disabled observer this is free and the recorder is permanently
    /// off.
    pub fn recorder(&self, thread_name: &str) -> Recorder {
        if !self.on {
            return Recorder { ring: None, tid: 0, epoch: self.epoch };
        }
        let mut rings = self.rings.lock();
        let tid = rings.len() as u16;
        let ring = Arc::new(Ring::new(thread_name, self.ring_events));
        rings.push(Arc::clone(&ring));
        Recorder { ring: Some(ring), tid, epoch: self.epoch }
    }

    /// Total events lost to ring overflow across all threads so far.
    pub fn dropped_events(&self) -> u64 {
        self.rings.lock().iter().map(|r| r.dropped()).sum()
    }

    /// Drains every ring into one timestamp-sorted snapshot.  Call
    /// between rounds / after a run; see [`ring`] for the quiescence
    /// contract.
    pub fn dump(&self) -> TraceDump {
        let rings = self.rings.lock();
        let mut threads = Vec::with_capacity(rings.len());
        let mut events = Vec::new();
        let mut dropped = 0;
        for ring in rings.iter() {
            threads.push(ring.name().to_string());
            dropped += ring.dropped();
            events.extend(ring.drain());
        }
        events.sort_by_key(|e| e.start_ns);
        TraceDump { threads, events, dropped_events: dropped }
    }

    /// A [`cgraph_graph::obs::StoreObserver`] bridge feeding this
    /// observer: attach it with `ShardedSnapshotStore::with_observer`
    /// to capture apply / WAL / spill / rehydrate signals.  Store
    /// events go through one mutex-guarded recorder (they are
    /// per-`apply`, not per-edge, and rehydrates can be concurrent).
    pub fn store_observer(self: &Arc<Self>) -> Arc<dyn cgraph_graph::obs::StoreObserver> {
        Arc::new(StoreBridge { rec: Mutex::new(self.recorder("store")), obs: Arc::clone(self) })
    }
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.on)
            .field("rings", &self.rings.lock().len())
            .finish()
    }
}

/// One thread's handle into the observer: an optional ring plus the
/// shared epoch.  All methods are no-ops (one `Option` branch) when the
/// observer is disabled.
pub struct Recorder {
    ring: Option<Arc<Ring>>,
    tid: u16,
    epoch: Instant,
}

impl Recorder {
    /// Whether this recorder writes anywhere.
    #[inline]
    pub fn on(&self) -> bool {
        self.ring.is_some()
    }

    /// Span-start helper: current ns when on, 0 when off (the matching
    /// [`complete`](Recorder::complete) is a no-op then anyway).
    #[inline]
    pub fn start(&self) -> u64 {
        if self.ring.is_some() {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Records a span that started at `start_ns` (from
    /// [`start`](Recorder::start)) and ends now.
    #[inline]
    pub fn complete(
        &self,
        kind: EventKind,
        job: u32,
        shard: u32,
        round: u32,
        start_ns: u64,
        value: u64,
    ) {
        if let Some(ring) = &self.ring {
            let now = self.epoch.elapsed().as_nanos() as u64;
            ring.push(&Event {
                kind,
                thread: self.tid,
                job,
                shard,
                round,
                start_ns,
                dur_ns: now.saturating_sub(start_ns),
                value,
            });
        }
    }

    /// Records an instant (zero-duration) event happening now.
    #[inline]
    pub fn instant(&self, kind: EventKind, job: u32, shard: u32, round: u32, value: u64) {
        if let Some(ring) = &self.ring {
            let now = self.epoch.elapsed().as_nanos() as u64;
            ring.push(&Event {
                kind,
                thread: self.tid,
                job,
                shard,
                round,
                start_ns: now,
                dur_ns: 0,
                value,
            });
        }
    }

    /// Records a span that ended now and lasted `dur_ns` (for call
    /// sites that measured the duration themselves).
    #[inline]
    pub fn complete_with_dur(
        &self,
        kind: EventKind,
        job: u32,
        shard: u32,
        round: u32,
        dur_ns: u64,
        value: u64,
    ) {
        if let Some(ring) = &self.ring {
            let now = self.epoch.elapsed().as_nanos() as u64;
            ring.push(&Event {
                kind,
                thread: self.tid,
                job,
                shard,
                round,
                start_ns: now.saturating_sub(dur_ns),
                dur_ns,
                value,
            });
        }
    }
}

/// Bridges [`cgraph_graph::obs::StoreObserver`] hooks into the
/// observer's rings and registry.
struct StoreBridge {
    obs: Arc<Observer>,
    rec: Mutex<Recorder>,
}

fn shard_u32(shard: Option<usize>) -> u32 {
    shard.map_or(NONE, |s| s as u32)
}

impl cgraph_graph::obs::StoreObserver for StoreBridge {
    fn apply_rebuild(&self, shard: usize, version: u64, partitions: usize, micros: u64) {
        let r = self.obs.registry();
        r.counter("store_applies").inc();
        r.histogram("store_apply_us").record(micros);
        r.histogram(&format!("store_apply_us_shard{shard}"))
            .record(micros);
        self.rec.lock().complete_with_dur(
            EventKind::ApplyRebuild,
            NONE,
            shard as u32,
            version.min(u32::MAX as u64) as u32,
            micros * 1000,
            partitions as u64,
        );
    }

    fn wal_append(&self, shard: Option<usize>, bytes: u64, micros: u64) {
        let r = self.obs.registry();
        r.counter("wal_append_bytes").add(bytes);
        r.histogram("wal_append_us").record(micros);
        self.rec.lock().complete_with_dur(
            EventKind::WalAppend,
            NONE,
            shard_u32(shard),
            NONE,
            micros * 1000,
            bytes,
        );
    }

    fn wal_fsync(&self, shard: Option<usize>, micros: u64) {
        let r = self.obs.registry();
        r.counter("wal_fsyncs").inc();
        r.histogram("wal_fsync_us").record(micros);
        match shard {
            Some(s) => r
                .histogram(&format!("wal_fsync_us_shard{s}"))
                .record(micros),
            None => r.histogram("wal_fsync_us_manifest").record(micros),
        };
        self.rec.lock().complete_with_dur(
            EventKind::WalFsync,
            NONE,
            shard_u32(shard),
            NONE,
            micros * 1000,
            0,
        );
    }

    fn spill(&self, shard: usize, bytes: u64) {
        let r = self.obs.registry();
        r.counter("store_spill_bytes").add(bytes);
        r.histogram(&format!("store_spill_bytes_shard{shard}"))
            .record(bytes);
        self.rec
            .lock()
            .instant(EventKind::Spill, NONE, shard as u32, NONE, bytes);
    }

    fn rehydrate(&self, shard: usize, bytes: u64, micros: u64) {
        let r = self.obs.registry();
        r.counter("store_rehydrate_bytes").add(bytes);
        r.histogram("store_rehydrate_us").record(micros);
        self.rec.lock().complete_with_dur(
            EventKind::Rehydrate,
            NONE,
            shard as u32,
            NONE,
            micros * 1000,
            bytes,
        );
    }

    fn checkpoint_walk(&self, records: u64, micros: u64) {
        let r = self.obs.registry();
        r.counter("store_checkpoints").inc();
        r.histogram("store_checkpoint_us").record(micros);
        self.rec.lock().complete_with_dur(
            EventKind::Checkpoint,
            NONE,
            NONE,
            NONE,
            micros * 1000,
            records,
        );
    }

    fn recovery_replay(&self, frames: u64, bytes: u64, micros: u64) {
        let r = self.obs.registry();
        r.counter("wal_replay_frames").add(frames);
        r.counter("wal_replay_bytes").add(bytes);
        // Replay rate in frames/second (what recovery dashboards watch).
        if micros > 0 {
            r.gauge("wal_replay_frames_per_s")
                .set(frames as f64 / (micros as f64 / 1e6));
        }
        self.rec.lock().complete_with_dur(
            EventKind::RecoveryReplay,
            NONE,
            NONE,
            NONE,
            micros * 1000,
            frames,
        );
    }

    fn footprint(&self, shard: usize, resident_bytes: u64, spilled_bytes: u64) {
        let r = self.obs.registry();
        r.gauge(&format!("store_resident_bytes_shard{shard}"))
            .set(resident_bytes as f64);
        r.gauge(&format!("store_spilled_bytes_shard{shard}"))
            .set(spilled_bytes as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let obs = Observer::disabled();
        let rec = obs.recorder("main");
        assert!(!rec.on());
        assert_eq!(rec.start(), 0);
        rec.complete(EventKind::Install, 1, 2, 3, 0, 4);
        rec.instant(EventKind::Push, NONE, NONE, 0, 0);
        let dump = obs.dump();
        assert!(dump.events.is_empty());
        assert!(dump.threads.is_empty());
        assert_eq!(obs.dropped_events(), 0);
    }

    #[test]
    fn enabled_records_and_dump_sorts() {
        let obs = Observer::enabled();
        let a = obs.recorder("alpha");
        let b = obs.recorder("beta");
        let t0 = a.start();
        b.instant(EventKind::FetchIssue, NONE, 1, 0, 0);
        a.complete(EventKind::Install, 3, 1, 0, t0, 9);
        let dump = obs.dump();
        assert_eq!(dump.threads, vec!["alpha".to_string(), "beta".to_string()]);
        assert_eq!(dump.events.len(), 2);
        assert!(dump
            .events
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
        // A second dump finds the rings drained.
        assert!(obs.dump().events.is_empty());
    }

    #[test]
    fn store_bridge_feeds_registry_and_ring() {
        let obs = Observer::enabled();
        let bridge = obs.store_observer();
        bridge.apply_rebuild(2, 10, 16, 120);
        bridge.wal_fsync(Some(2), 50);
        bridge.wal_fsync(None, 30);
        bridge.spill(1, 4096);
        bridge.recovery_replay(100, 1 << 20, 2000);
        let js = obs.registry().metrics_json();
        let v = parse_json(&js).unwrap();
        let hists = v.get("histograms").unwrap();
        assert!(hists.get("store_apply_us_shard2").is_some());
        assert!(hists.get("wal_fsync_us_shard2").is_some());
        assert!(hists.get("store_spill_bytes_shard1").is_some());
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("wal_replay_frames_per_s")
                .unwrap()
                .as_f64(),
            Some(50_000.0)
        );
        let dump = obs.dump();
        assert_eq!(dump.events.len(), 5);
        assert!(dump
            .events
            .iter()
            .any(|e| e.kind == EventKind::ApplyRebuild && e.shard == 2));
    }
}
