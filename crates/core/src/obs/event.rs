//! The typed span event every tracing ring carries.
//!
//! An [`Event`] is a fixed-size value — five `u64` words — so a ring
//! buffer can store it as plain atomic words with no allocation, no
//! `UnsafeCell`, and no per-event `Drop`.  The packing is lossless for
//! every field the pipeline stamps: event kind (8 bits), recording
//! thread (16 bits), shard (24 bits), job and round (32 bits each,
//! [`NONE`] when not applicable), plus three full words for start
//! timestamp, duration, and a kind-specific value (bytes, chunk count,
//! queue depth, …).

/// Sentinel for "this event has no job / shard / round".
pub const NONE: u32 = u32::MAX;

/// What a span event measured.  The discriminants are stable: they are
/// the on-ring byte and the JSONL `kind` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Main dispatch loop handed one partition fetch to an I/O worker.
    FetchIssue = 0,
    /// An I/O worker finished fetching (charging) one partition.
    FetchComplete = 1,
    /// Main loop blocked waiting for the next in-order fetch to land in
    /// the reorder buffer.
    ReorderWait = 2,
    /// Main loop installed one fetched partition: ledger charges plus
    /// trigger-chunk handoff.
    Install = 3,
    /// A compute worker drained one trigger chunk.
    TriggerChunk = 4,
    /// End-of-round Push stage (batched sorted push, all finishing jobs).
    Push = 5,
    /// One snapshot-store `apply`: record append + current-index rebuild.
    ApplyRebuild = 6,
    /// Payload bytes appended to a WAL segment.
    WalAppend = 7,
    /// One WAL segment fsync.
    WalFsync = 8,
    /// Capacity enforcement dropped a resident payload to the WAL.
    Spill = 9,
    /// A spilled payload was faulted back in from the WAL.
    Rehydrate = 10,
    /// Admission controller held an arrival past its arrival instant.
    AdmitDefer = 11,
    /// Admission controller released a wave entry into the engine.
    AdmitRelease = 12,
    /// One serve-loop engine round (wavefront step while jobs are open).
    ServeRound = 13,
    /// Compaction checkpoint walk.
    Checkpoint = 14,
    /// Crash-recovery WAL replay.
    RecoveryReplay = 15,
    /// The fault plane retried an operation after a transient fault
    /// (value = retries burned by that operation).
    FaultRetry = 16,
    /// A slot fetch exhausted its retry budget (or drew a permanent
    /// fault) and its interested jobs were quarantined.
    FaultQuarantine = 17,
    /// A lane's fetch circuit breaker opened.
    BreakerTrip = 18,
    /// Serve-loop load shedding rejected an arrival at the admission
    /// door (value = backlog depth at rejection).
    AdmitShed = 19,
}

impl EventKind {
    /// Stable human-readable name (Chrome trace `name`, JSONL `kind`).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FetchIssue => "fetch_issue",
            EventKind::FetchComplete => "fetch_complete",
            EventKind::ReorderWait => "reorder_wait",
            EventKind::Install => "install",
            EventKind::TriggerChunk => "trigger_chunk",
            EventKind::Push => "push",
            EventKind::ApplyRebuild => "apply_rebuild",
            EventKind::WalAppend => "wal_append",
            EventKind::WalFsync => "wal_fsync",
            EventKind::Spill => "spill",
            EventKind::Rehydrate => "rehydrate",
            EventKind::AdmitDefer => "admit_defer",
            EventKind::AdmitRelease => "admit_release",
            EventKind::ServeRound => "serve_round",
            EventKind::Checkpoint => "checkpoint",
            EventKind::RecoveryReplay => "recovery_replay",
            EventKind::FaultRetry => "fault_retry",
            EventKind::FaultQuarantine => "fault_quarantine",
            EventKind::BreakerTrip => "breaker_trip",
            EventKind::AdmitShed => "admit_shed",
        }
    }

    /// Inverse of the `repr(u8)` discriminant; `None` for bytes no kind
    /// uses (a garbled ring slot decodes to `None`, never to UB).
    pub fn from_u8(b: u8) -> Option<EventKind> {
        Some(match b {
            0 => EventKind::FetchIssue,
            1 => EventKind::FetchComplete,
            2 => EventKind::ReorderWait,
            3 => EventKind::Install,
            4 => EventKind::TriggerChunk,
            5 => EventKind::Push,
            6 => EventKind::ApplyRebuild,
            7 => EventKind::WalAppend,
            8 => EventKind::WalFsync,
            9 => EventKind::Spill,
            10 => EventKind::Rehydrate,
            11 => EventKind::AdmitDefer,
            12 => EventKind::AdmitRelease,
            13 => EventKind::ServeRound,
            14 => EventKind::Checkpoint,
            15 => EventKind::RecoveryReplay,
            16 => EventKind::FaultRetry,
            17 => EventKind::FaultQuarantine,
            18 => EventKind::BreakerTrip,
            19 => EventKind::AdmitShed,
            _ => return None,
        })
    }
}

/// One recorded span, fully decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub kind: EventKind,
    /// Index of the recording thread's ring (maps to a thread name in
    /// the drained [`TraceDump`](super::TraceDump)).
    pub thread: u16,
    /// Job id, or [`NONE`].
    pub job: u32,
    /// Shard / partition id, or [`NONE`].  Truncated to 24 bits on the
    /// ring (no store in this workspace exceeds 2^24 partitions).
    pub shard: u32,
    /// Engine round, or [`NONE`].
    pub round: u32,
    /// Nanoseconds since the observer's epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Kind-specific payload: bytes, chunk count, queue depth, seq, …
    pub value: u64,
}

/// Words of ring storage per event.
pub const EVENT_WORDS: usize = 5;

impl Event {
    /// Packs into the five-word ring representation.
    pub fn pack(&self) -> [u64; EVENT_WORDS] {
        let w0 = (self.kind as u64)
            | ((self.thread as u64) << 8)
            | (((self.shard as u64) & 0xFF_FFFF) << 24);
        let w1 = (self.job as u64) | ((self.round as u64) << 32);
        [w0, w1, self.start_ns, self.dur_ns, self.value]
    }

    /// Decodes a five-word slot; `None` if the kind byte is garbled.
    pub fn unpack(w: [u64; EVENT_WORDS]) -> Option<Event> {
        let kind = EventKind::from_u8((w[0] & 0xFF) as u8)?;
        let shard24 = ((w[0] >> 24) & 0xFF_FFFF) as u32;
        Some(Event {
            kind,
            thread: ((w[0] >> 8) & 0xFFFF) as u16,
            job: (w[1] & 0xFFFF_FFFF) as u32,
            shard: if shard24 == 0xFF_FFFF { NONE } else { shard24 },
            round: (w[1] >> 32) as u32,
            start_ns: w[2],
            dur_ns: w[3],
            value: w[4],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips() {
        let ev = Event {
            kind: EventKind::Install,
            thread: 513,
            job: 7,
            shard: 1234,
            round: 42,
            start_ns: u64::MAX - 3,
            dur_ns: 17,
            value: 1 << 50,
        };
        assert_eq!(Event::unpack(ev.pack()), Some(ev));
    }

    #[test]
    fn none_shard_survives() {
        let ev = Event {
            kind: EventKind::Push,
            thread: 0,
            job: NONE,
            shard: NONE,
            round: 3,
            start_ns: 1,
            dur_ns: 2,
            value: 0,
        };
        let back = Event::unpack(ev.pack()).unwrap();
        assert_eq!(back.shard, NONE);
        assert_eq!(back.job, NONE);
    }

    #[test]
    fn every_kind_roundtrips_through_u8() {
        for b in 0u8..=255 {
            if let Some(k) = EventKind::from_u8(b) {
                assert_eq!(k as u8, b);
                assert!(!k.name().is_empty());
            }
        }
        assert!(EventKind::from_u8(200).is_none());
    }
}
