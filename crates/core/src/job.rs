//! Job runtimes: the typed per-job execution state behind the engine's
//! object-safe [`JobRuntime`] interface.
//!
//! The Trigger stage (paper Alg. 1) lives in
//! [`JobRuntime::process_chunk`]; the Push stage (paper Alg. 2) in
//! [`JobRuntime::push_and_advance`].  Baseline engines drive the same
//! runtime with different loading disciplines, so correctness is identical
//! across engines by construction — only access patterns differ.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use cgraph_graph::{GraphView, PartitionId, VersionId, VertexId, NO_PARTITION};

use crate::program::{EdgeDirection, VertexInfo, VertexProgram};
use crate::state::{PartState, PendingSet};

/// Engine-assigned job identifier.
pub type JobId = u32;

/// Compute-op counts returned by one processed chunk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Vertices folded (consume operations).
    pub vertex_ops: u64,
    /// Edge contributions scattered.
    pub edge_ops: u64,
}

/// What one Push stage did, for the engine's accounting.
#[derive(Clone, Debug, Default)]
pub struct PushStats {
    /// Private-table partitions touched while applying mirror→master
    /// records, in sorted order, with record counts (paper Alg. 2 SortD).
    pub touched_master_parts: Vec<(PartitionId, u64)>,
    /// Partitions touched while propagating master state back to mirrors,
    /// in sorted order, with record counts (SortS).
    pub touched_mirror_parts: Vec<(PartitionId, u64)>,
    /// Total synchronization records handled.
    pub sync_records: u64,
    /// Whether the job converged (nothing active next iteration).
    pub converged: bool,
}

/// Object-safe view of a running job used by every engine in the workspace.
pub trait JobRuntime: Send + Sync {
    /// Engine-assigned id.
    fn id(&self) -> JobId;
    /// Job name for reports.
    fn name(&self) -> String;
    /// The snapshot view the job is bound to.
    fn view(&self) -> &GraphView;
    /// Current iteration number (1-based; 0 before the first activation).
    fn iteration(&self) -> u64;
    /// Active-and-unprocessed partitions in id order.
    fn pending(&self) -> Vec<PartitionId>;
    /// The pending partitions as `(partition, snapshot version)` slot
    /// keys — what the executor's slot planner tracks.  A job's view is
    /// immutable, so each partition's version is fixed for its lifetime.
    fn pending_slots(&self) -> Vec<(PartitionId, VersionId)> {
        let view = self.view();
        self.pending()
            .into_iter()
            .map(|pid| (pid, view.version_of(pid)))
            .collect()
    }
    /// Whether `pid` is active and unprocessed this iteration.
    fn is_pending(&self, pid: PartitionId) -> bool;
    /// Active replicas in `pid` (straggler detection; known from the
    /// previous iteration's Push, as in the paper §3.2.3).
    fn unprocessed_vertices(&self, pid: PartitionId) -> u64;
    /// Bytes of this job's private table for `pid`.
    fn private_table_bytes(&self, pid: PartitionId) -> u64;
    /// Processes chunk `chunk` of `nchunks` of partition `pid` (Trigger).
    /// Chunks of the same partition may run concurrently.
    fn process_chunk(&self, pid: PartitionId, chunk: usize, nchunks: usize) -> ProcessStats;
    /// Marks `pid` fully processed for this iteration.
    fn mark_processed(&self, pid: PartitionId);
    /// CLIP-style data re-entry (Ai et al., ATC'17): while `pid` is still
    /// loaded, repeatedly fold partition-local contributions (for vertices
    /// whose only replica lives here, so no cross-partition sync is owed)
    /// and reprocess, up to `max_rounds` times.  Returns the extra compute.
    fn reenter_partition(&self, pid: PartitionId, max_rounds: u64) -> ProcessStats;
    /// Whether every pending partition has been processed.
    fn iteration_complete(&self) -> bool;
    /// Push stage: synchronize replicas, compute the next iteration's
    /// active set, and advance the iteration counter.
    fn push_and_advance(&self) -> PushStats;
    /// Whether the job has converged.
    fn is_converged(&self) -> bool;
    /// Average delta magnitude that arrived in `pid` at the last Push —
    /// the per-job contribution to the scheduler's `C(P)` (Eq. 1).
    fn partition_change(&self, pid: PartitionId) -> f64;
    /// Downcast support for typed result extraction.
    fn as_any(&self) -> &dyn Any;
}

/// The typed runtime for one vertex program.
pub struct TypedJob<P: VertexProgram> {
    id: JobId,
    program: P,
    view: GraphView,
    /// Immutable per-partition `VertexInfo` tables (replica-parallel).
    infos: Vec<Vec<VertexInfo>>,
    parts: Vec<Mutex<PartState<P::Value>>>,
    pending: Mutex<PendingSet>,
    change: Mutex<Vec<f64>>,
    iteration: AtomicU64,
    converged: AtomicBool,
}

impl<P: VertexProgram> TypedJob<P> {
    /// Creates the runtime, initializes every replica's state from
    /// [`VertexProgram::init`], and computes the first active set.
    pub fn new(id: JobId, program: P, view: GraphView) -> Self {
        let np = view.num_partitions();
        let identity = program.identity();
        let mut infos = Vec::with_capacity(np);
        let mut parts = Vec::with_capacity(np);
        for pid in 0..np as PartitionId {
            let part = view.partition(pid);
            // Degrees come from the *view*, not the partition metadata:
            // after a snapshot delta, unchanged partitions keep their cache
            // identity while per-vertex degrees may still have moved.
            let info: Vec<VertexInfo> = part
                .vertex_ids()
                .iter()
                .map(|&vid| {
                    let (out_degree, in_degree) = view.degree_of(vid);
                    VertexInfo { vid, out_degree, in_degree }
                })
                .collect();
            let mut st = PartState::new(info.len(), identity);
            for (li, vi) in info.iter().enumerate() {
                let (v, d) = program.init(vi);
                st.values[li] = v;
                st.deltas[li] = d;
            }
            infos.push(info);
            parts.push(Mutex::new(st));
        }

        let job = TypedJob {
            id,
            program,
            view,
            infos,
            parts,
            pending: Mutex::new(PendingSet::new(np)),
            change: Mutex::new(vec![0.0; np]),
            iteration: AtomicU64::new(0),
            converged: AtomicBool::new(false),
        };
        job.recompute_activation((0..np as PartitionId).collect());
        if !job.pending.lock().any_active() {
            job.converged.store(true, Ordering::SeqCst);
        } else {
            job.iteration.store(1, Ordering::SeqCst);
        }
        job
    }

    /// Creates the runtime seeded from a prior converged result instead
    /// of [`VertexProgram::init`]: `frontier` vertices (sorted, deduped;
    /// the endpoints of the delta's edges) start at `(bottom, prior)` —
    /// active, re-scattering their prior value along every local edge —
    /// while all other vertices start at `(prior, identity)`, inactive
    /// until an improvement reaches them.  See the [`crate::incr`]
    /// module docs for why this converges to the from-scratch fixpoint
    /// on addition-only deltas.
    pub fn resume_from(
        id: JobId,
        program: P,
        view: GraphView,
        prior: &[P::Value],
        frontier: &[VertexId],
    ) -> Self
    where
        P: crate::incr::IncrementalProgram,
    {
        assert_eq!(
            prior.len(),
            view.num_vertices() as usize,
            "prior result must cover every vertex of the resumed view"
        );
        debug_assert!(
            frontier.windows(2).all(|w| w[0] < w[1]),
            "frontier sorted+deduped"
        );
        let np = view.num_partitions();
        let identity = program.identity();
        let bottom = program.bottom();
        let mut infos = Vec::with_capacity(np);
        let mut parts = Vec::with_capacity(np);
        for pid in 0..np as PartitionId {
            let part = view.partition(pid);
            let info: Vec<VertexInfo> = part
                .vertex_ids()
                .iter()
                .map(|&vid| {
                    let (out_degree, in_degree) = view.degree_of(vid);
                    VertexInfo { vid, out_degree, in_degree }
                })
                .collect();
            let mut st = PartState::new(info.len(), identity);
            for (li, vi) in info.iter().enumerate() {
                if frontier.binary_search(&vi.vid).is_ok() {
                    // Frontier replica: re-derive and re-scatter the prior.
                    st.values[li] = bottom;
                    st.deltas[li] = prior[vi.vid as usize];
                } else {
                    st.values[li] = prior[vi.vid as usize];
                    st.deltas[li] = identity;
                }
            }
            infos.push(info);
            parts.push(Mutex::new(st));
        }

        let job = TypedJob {
            id,
            program,
            view,
            infos,
            parts,
            pending: Mutex::new(PendingSet::new(np)),
            change: Mutex::new(vec![0.0; np]),
            iteration: AtomicU64::new(0),
            converged: AtomicBool::new(false),
        };
        job.recompute_activation((0..np as PartitionId).collect());
        if !job.pending.lock().any_active() {
            job.converged.store(true, Ordering::SeqCst);
        } else {
            job.iteration.store(1, Ordering::SeqCst);
        }
        job
    }

    /// The wrapped program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Final per-vertex results (replica-consistent; residual deltas are
    /// folded via [`VertexProgram::finalize`]).
    ///
    /// Isolated vertices (no replicas) report their initial finalized state.
    pub fn extract(&self) -> Vec<P::Value> {
        let n = self.view.num_vertices() as usize;
        let mut out = Vec::with_capacity(n);
        for vid in 0..n as VertexId {
            let (od, id_) = self.view.degree_of(vid);
            let info = VertexInfo { vid, out_degree: od, in_degree: id_ };
            let mp = self.view.master_of(vid);
            if mp == NO_PARTITION {
                let (v, d) = self.program.init(&info);
                out.push(self.program.finalize(&info, v, d));
            } else {
                let part = self.view.partition(mp);
                let li = part.local_of(vid).expect("master replica present") as usize;
                let st = self.parts[mp as usize].lock();
                out.push(self.program.finalize(&info, st.values[li], st.deltas[li]));
            }
        }
        out
    }

    /// Recounts activation for the given partitions and updates the
    /// pending set and per-partition change averages.
    fn recompute_activation(&self, pids: Vec<PartitionId>) {
        let mut pending = self.pending.lock();
        let mut change = self.change.lock();
        for pid in pids {
            let st = self.parts[pid as usize].lock();
            let mut count = 0u32;
            let mut mag = 0.0f64;
            for li in 0..st.len() {
                if self.program.is_active(&st.values[li], &st.deltas[li]) {
                    count += 1;
                    mag += self.program.delta_magnitude(&st.deltas[li]);
                }
            }
            change[pid as usize] = if count == 0 { 0.0 } else { mag / count as f64 };
            if count > 0 {
                pending.activate(pid, count);
            }
        }
    }
}

impl<P: VertexProgram> JobRuntime for TypedJob<P> {
    fn id(&self) -> JobId {
        self.id
    }

    fn name(&self) -> String {
        self.program.name()
    }

    fn view(&self) -> &GraphView {
        &self.view
    }

    fn iteration(&self) -> u64 {
        self.iteration.load(Ordering::SeqCst)
    }

    fn pending(&self) -> Vec<PartitionId> {
        self.pending.lock().pending()
    }

    fn is_pending(&self, pid: PartitionId) -> bool {
        self.pending.lock().is_pending(pid)
    }

    fn unprocessed_vertices(&self, pid: PartitionId) -> u64 {
        self.pending.lock().active_counts[pid as usize] as u64
    }

    fn private_table_bytes(&self, pid: PartitionId) -> u64 {
        self.parts[pid as usize].lock().table_bytes()
    }

    fn process_chunk(&self, pid: PartitionId, chunk: usize, nchunks: usize) -> ProcessStats {
        let part = self.view.partition(pid).clone();
        let infos = &self.infos[pid as usize];
        let nv = part.num_local_vertices();
        let lo = nv * chunk / nchunks;
        let hi = nv * (chunk + 1) / nchunks;
        if lo >= hi {
            return ProcessStats::default();
        }

        // Copy out this chunk's (value, delta) pairs under the lock, then
        // compute scatter contributions lock-free.
        let identity = self.program.identity();
        let mut pairs: Vec<(P::Value, P::Value)> = Vec::with_capacity(hi - lo);
        {
            let st = self.parts[pid as usize].lock();
            for li in lo..hi {
                pairs.push((st.values[li], st.deltas[li]));
            }
        }

        let mut stats = ProcessStats::default();
        let mut scatter: Vec<(u32, P::Value)> = Vec::new();
        let dir = self.program.direction();
        for (off, (value, delta)) in pairs.iter_mut().enumerate() {
            let li = (lo + off) as u32;
            if !self.program.is_active(value, delta) {
                continue;
            }
            stats.vertex_ops += 1;
            let info = &infos[li as usize];
            let (new_value, basis) = self.program.compute(info, *value, *delta);
            *value = new_value;
            *delta = identity;
            if let Some(basis) = basis {
                if matches!(dir, EdgeDirection::Out | EdgeDirection::Both) {
                    for (t, w) in part.out_edges(li) {
                        stats.edge_ops += 1;
                        scatter.push((t, self.program.edge_contrib(basis, w, info)));
                    }
                }
                if matches!(dir, EdgeDirection::In | EdgeDirection::Both) {
                    for (s, w) in part.in_edges(li) {
                        stats.edge_ops += 1;
                        scatter.push((s, self.program.edge_contrib(basis, w, info)));
                    }
                }
            }
        }

        // Write back the chunk range and fold contributions into `acc`.
        {
            let mut st = self.parts[pid as usize].lock();
            for (off, (v, d)) in pairs.into_iter().enumerate() {
                st.values[lo + off] = v;
                st.deltas[lo + off] = d;
            }
            for (t, c) in scatter {
                let cur = st.acc[t as usize];
                st.acc[t as usize] = self.program.acc(cur, c);
            }
        }
        stats
    }

    fn mark_processed(&self, pid: PartitionId) {
        self.pending.lock().mark_processed(pid);
    }

    fn reenter_partition(&self, pid: PartitionId, max_rounds: u64) -> ProcessStats {
        let identity = self.program.identity();
        let part = self.view.partition(pid).clone();
        let mut total = ProcessStats::default();
        for _ in 0..max_rounds {
            let mut any = false;
            {
                let mut st = self.parts[pid as usize].lock();
                for li in 0..st.len() {
                    if st.acc[li] == identity {
                        continue;
                    }
                    let vid = part.global_of(li as u32);
                    // Only vertices fully local to this partition may fold
                    // early; replicated vertices still owe a Push.
                    if self.view.replicas_of(vid) != [pid] {
                        continue;
                    }
                    let val = st.acc[li];
                    st.acc[li] = identity;
                    let cur = st.deltas[li];
                    st.deltas[li] = self.program.acc(cur, val);
                    if self.program.is_active(&st.values[li], &st.deltas[li]) {
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            let s = self.process_chunk(pid, 0, 1);
            total.vertex_ops += s.vertex_ops;
            total.edge_ops += s.edge_ops;
        }
        total
    }

    fn iteration_complete(&self) -> bool {
        self.pending.lock().remaining() == 0
    }

    fn push_and_advance(&self) -> PushStats {
        let identity = self.program.identity();
        let np = self.view.num_partitions();

        // Phase A: drain accumulation buffers.  Master-local contributions
        // fold directly; mirror contributions become records routed to the
        // master's partition (paper Alg. 1 line 6).
        let mut records: Vec<(PartitionId, VertexId, P::Value)> = Vec::new();
        // Masters that received any new delta: (partition, local index).
        let mut touched_masters: Vec<(PartitionId, u32)> = Vec::new();
        for pid in 0..np as PartitionId {
            let part = self.view.partition(pid).clone();
            let mut st = self.parts[pid as usize].lock();
            for li in 0..st.len() {
                if st.acc[li] == identity {
                    continue;
                }
                let val = st.acc[li];
                st.acc[li] = identity;
                // Master location comes from the view (it may have moved
                // under a snapshot delta while this partition's metadata
                // stayed untouched).
                let vid = part.global_of(li as u32);
                let master_partition = self.view.master_of(vid);
                if master_partition == pid {
                    let cur = st.deltas[li];
                    st.deltas[li] = self.program.acc(cur, val);
                    touched_masters.push((pid, li as u32));
                } else {
                    records.push((master_partition, vid, val));
                }
            }
        }

        // Phase B (SortD): apply mirror→master records in master-partition
        // order, so each private-table partition is loaded once.
        records.sort_unstable_by_key(|&(d, vid, _)| (d, vid));
        let mut stats = PushStats { sync_records: records.len() as u64, ..PushStats::default() };
        {
            let mut i = 0;
            while i < records.len() {
                let dpid = records[i].0;
                let start = i;
                let part = self.view.partition(dpid).clone();
                let mut st = self.parts[dpid as usize].lock();
                while i < records.len() && records[i].0 == dpid {
                    let (_, vid, val) = records[i];
                    let li = part.local_of(vid).expect("master replica present") as usize;
                    let cur = st.deltas[li];
                    st.deltas[li] = self.program.acc(cur, val);
                    touched_masters.push((dpid, li as u32));
                    i += 1;
                }
                stats.touched_master_parts.push((dpid, (i - start) as u64));
            }
        }

        // Phase C (SortS): propagate each touched master's final delta back
        // to its mirror replicas, again in partition order.
        touched_masters.sort_unstable();
        touched_masters.dedup();
        let mut mirror_updates: Vec<(PartitionId, VertexId, P::Value)> = Vec::new();
        for (pid, li) in touched_masters {
            let part = self.view.partition(pid);
            let vid = part.global_of(li);
            let replicas = self.view.replicas_of(vid);
            if replicas.len() <= 1 {
                continue;
            }
            let total = self.parts[pid as usize].lock().deltas[li as usize];
            if total == identity {
                continue;
            }
            for &mp in replicas {
                if mp != pid {
                    mirror_updates.push((mp, vid, total));
                }
            }
        }
        mirror_updates.sort_unstable_by_key(|&(p, vid, _)| (p, vid));
        stats.sync_records += mirror_updates.len() as u64;
        let mut touched_partitions: Vec<PartitionId> = Vec::new();
        {
            let mut i = 0;
            while i < mirror_updates.len() {
                let mpid = mirror_updates[i].0;
                let start = i;
                let part = self.view.partition(mpid).clone();
                let mut st = self.parts[mpid as usize].lock();
                while i < mirror_updates.len() && mirror_updates[i].0 == mpid {
                    let (_, vid, val) = mirror_updates[i];
                    let li = part.local_of(vid).expect("mirror replica present") as usize;
                    st.deltas[li] = val;
                    i += 1;
                }
                stats.touched_mirror_parts.push((mpid, (i - start) as u64));
                touched_partitions.push(mpid);
            }
        }
        touched_partitions.extend(stats.touched_master_parts.iter().map(|&(p, _)| p));

        // Phase D: next iteration's activation = partitions whose replicas
        // hold fresh deltas (anything processed this round was consumed).
        let mut recount: Vec<PartitionId> = touched_partitions;
        recount.extend((0..np as PartitionId).filter(|&p| {
            // Partitions with direct master-local folds.
            self.parts[p as usize]
                .lock()
                .deltas
                .iter()
                .any(|d| *d != identity)
        }));
        recount.sort_unstable();
        recount.dedup();
        self.pending.lock().reset();
        {
            let mut change = self.change.lock();
            change.iter_mut().for_each(|c| *c = 0.0);
        }
        self.recompute_activation(recount);

        let any = self.pending.lock().any_active();
        if any {
            self.iteration.fetch_add(1, Ordering::SeqCst);
        } else {
            self.converged.store(true, Ordering::SeqCst);
        }
        stats.converged = !any;
        stats
    }

    fn is_converged(&self) -> bool {
        self.converged.load(Ordering::SeqCst)
    }

    fn partition_change(&self, pid: PartitionId) -> f64 {
        self.change.lock()[pid as usize]
    }

    fn as_any(&self) -> &dyn Any {
        self.as_any_impl()
    }
}

impl<P: VertexProgram> TypedJob<P> {
    fn as_any_impl(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::snapshot::SnapshotStore;
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Partitioner, Weight};
    use std::sync::Arc;

    /// Min-hop BFS used to exercise the runtime directly.
    struct Bfs {
        source: VertexId,
    }

    impl VertexProgram for Bfs {
        type Value = u32;

        fn init(&self, info: &VertexInfo) -> (u32, u32) {
            if info.vid == self.source {
                (u32::MAX, 0)
            } else {
                (u32::MAX, u32::MAX)
            }
        }

        fn identity(&self) -> u32 {
            u32::MAX
        }

        fn acc(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn is_active(&self, value: &u32, delta: &u32) -> bool {
            delta < value
        }

        fn compute(&self, _i: &VertexInfo, value: u32, delta: u32) -> (u32, Option<u32>) {
            if delta < value {
                (delta, Some(delta))
            } else {
                (value, None)
            }
        }

        fn edge_contrib(&self, basis: u32, _w: Weight, _i: &VertexInfo) -> u32 {
            basis.saturating_add(1)
        }
    }

    fn view(n: u32, parts: usize) -> GraphView {
        let el = generate::cycle(n);
        let ps = VertexCutPartitioner::new(parts).partition(&el);
        let store = Arc::new(SnapshotStore::new(ps));
        store.base_view()
    }

    /// Drives a job to convergence single-threadedly, mimicking the engine.
    fn run_to_convergence(job: &dyn JobRuntime) -> u64 {
        let mut rounds = 0;
        while !job.is_converged() {
            for pid in job.pending() {
                job.process_chunk(pid, 0, 1);
                job.mark_processed(pid);
            }
            assert!(job.iteration_complete());
            job.push_and_advance();
            rounds += 1;
            assert!(rounds < 10_000, "no convergence");
        }
        rounds
    }

    #[test]
    fn bfs_on_cycle_counts_hops() {
        let v = view(8, 3);
        let job = TypedJob::new(0, Bfs { source: 0 }, v);
        run_to_convergence(&job);
        let dist = job.extract();
        for (i, d) in dist.iter().enumerate() {
            assert_eq!(*d, i as u32, "vertex {i}");
        }
    }

    #[test]
    fn initial_activation_only_at_source_partitions() {
        let v = view(12, 4);
        let job = TypedJob::new(0, Bfs { source: 0 }, v);
        assert_eq!(job.iteration(), 1);
        let pending = job.pending();
        assert!(!pending.is_empty());
        // Only partitions holding a replica of vertex 0 start active.
        for pid in &pending {
            assert!(job.view().partition(*pid).local_of(0).is_some());
        }
    }

    #[test]
    fn chunked_processing_matches_whole_partition() {
        let v = view(32, 2);
        let a = TypedJob::new(0, Bfs { source: 0 }, v.clone());
        let b = TypedJob::new(1, Bfs { source: 0 }, v);
        // a: single chunk per partition; b: 4 chunks per partition.
        while !a.is_converged() {
            for pid in a.pending() {
                a.process_chunk(pid, 0, 1);
                a.mark_processed(pid);
            }
            a.push_and_advance();
        }
        while !b.is_converged() {
            for pid in b.pending() {
                for c in 0..4 {
                    b.process_chunk(pid, c, 4);
                }
                b.mark_processed(pid);
            }
            b.push_and_advance();
        }
        assert_eq!(a.extract(), b.extract());
    }

    #[test]
    fn push_stats_report_sorted_touched_partitions() {
        let v = view(16, 4);
        let job = TypedJob::new(0, Bfs { source: 0 }, v);
        for pid in job.pending() {
            job.process_chunk(pid, 0, 1);
            job.mark_processed(pid);
        }
        let stats = job.push_and_advance();
        let mut sorted = stats.touched_master_parts.clone();
        sorted.sort_by_key(|&(p, _)| p);
        assert_eq!(stats.touched_master_parts, sorted);
    }

    #[test]
    fn unreachable_vertices_stay_at_infinity() {
        // Path 0->1->2 plus isolated universe up to 5.
        let el = cgraph_graph::EdgeList::from_edges(
            vec![
                cgraph_graph::Edge::unit(0, 1),
                cgraph_graph::Edge::unit(1, 2),
                cgraph_graph::Edge::unit(4, 3),
            ],
            6,
        );
        let ps = VertexCutPartitioner::new(2).partition(&el);
        let store = Arc::new(SnapshotStore::new(ps));
        let job = TypedJob::new(0, Bfs { source: 0 }, store.base_view());
        run_to_convergence(&job);
        let d = job.extract();
        assert_eq!(&d[0..3], &[0, 1, 2]);
        assert_eq!(d[3], u32::MAX);
        assert_eq!(d[4], u32::MAX);
        assert_eq!(d[5], u32::MAX); // isolated
    }

    #[test]
    fn converged_job_reports_no_pending() {
        let v = view(4, 2);
        let job = TypedJob::new(0, Bfs { source: 0 }, v);
        run_to_convergence(&job);
        assert!(job.is_converged());
        assert!(job.pending().is_empty());
    }

    #[test]
    fn straggler_counts_known_before_processing() {
        let v = view(16, 2);
        let job = TypedJob::new(0, Bfs { source: 0 }, v);
        let pending = job.pending();
        for pid in pending {
            assert!(job.unprocessed_vertices(pid) > 0);
        }
    }
}
