//! Serving outcome: per-job latency plus stream-level aggregates.

use crate::job::JobId;

/// How a served job's lifecycle ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job converged normally.
    #[default]
    Completed,
    /// Serving stopped (load valve / executor failure) before the job
    /// converged; its completion stamp is the stop time.
    Truncated,
    /// Fault admission quarantined the job: a fetch it depended on
    /// exhausted its retry budget, and the job was retired with a typed
    /// error instead of aborting the engine.
    Quarantined,
}

impl JobOutcome {
    /// Stable lowercase name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Truncated => "truncated",
            JobOutcome::Quarantined => "quarantined",
        }
    }
}

/// One served job's virtual-time lifecycle, fully resolved.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobLatency {
    /// Engine job id.
    pub job: JobId,
    /// Job-kind display name.
    pub name: &'static str,
    /// Arrival at the admission queue (virtual seconds).
    pub arrival: f64,
    /// Release into the engine.
    pub admitted: f64,
    /// Convergence.
    pub completed: f64,
    /// How the lifecycle ended (completed / truncated / quarantined).
    pub outcome: JobOutcome,
}

impl JobLatency {
    /// Queue wait: admission minus arrival.
    pub fn wait(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// End-to-end latency: convergence minus arrival.
    pub fn latency(&self) -> f64 {
        self.completed - self.arrival
    }
}

/// One row of [`ServeReport::per_job`]: a served job's identity plus
/// the derived wait/latency figures callers previously re-derived from
/// the raw [`JobLatency`] stamps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobRow {
    /// Engine job id.
    pub job: JobId,
    /// Job-kind display name.
    pub name: &'static str,
    /// Arrival at the admission queue (virtual seconds).
    pub arrival: f64,
    /// Queue wait: admission minus arrival.
    pub wait: f64,
    /// End-to-end latency: convergence minus arrival.
    pub latency: f64,
    /// How the lifecycle ended (completed / truncated / quarantined).
    pub outcome: JobOutcome,
}

/// Summary of one serving run over an arrival stream.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Serving-engine display name.
    pub engine: &'static str,
    /// The admission window the stream was served under.
    pub admission_window: f64,
    /// Every admitted job's resolved lifecycle, in admission order.
    pub jobs: Vec<JobLatency>,
    /// Admission waves released.
    pub waves: u64,
    /// Execution rounds interleaved between admissions.
    pub rounds: u64,
    /// Partition loads performed.
    pub loads: u64,
    /// Modeled execution seconds accumulated over all rounds.
    pub modeled_seconds: f64,
    /// First arrival to last completion, in virtual seconds.
    pub makespan: f64,
    /// `false` if serving stopped at a load valve before every admitted
    /// job converged — truncated jobs carry the stop-time as their
    /// completion, so latency figures understate them.
    pub completed: bool,
    /// Arrivals the serve loop shed at the admission door (bounded
    /// backlog overflow); they never became jobs and are not in `jobs`.
    pub rejected: u64,
    /// Admitted jobs quarantined by fault admission (also flagged on
    /// their rows via [`JobOutcome::Quarantined`]).
    pub quarantined: u64,
    /// Fault-plane retries burned over the run (0 without a plane).
    pub retries: u64,
}

impl ServeReport {
    /// Builds a report, deriving the makespan from the job lifecycles.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        engine: &'static str,
        admission_window: f64,
        jobs: Vec<JobLatency>,
        waves: u64,
        rounds: u64,
        loads: u64,
        modeled_seconds: f64,
        completed: bool,
    ) -> Self {
        let first = jobs.iter().map(|j| j.arrival).fold(f64::INFINITY, f64::min);
        let last = jobs
            .iter()
            .map(|j| j.completed)
            .fold(f64::NEG_INFINITY, f64::max);
        let makespan = if jobs.is_empty() { 0.0 } else { last - first };
        ServeReport {
            engine,
            admission_window,
            jobs,
            waves,
            rounds,
            loads,
            modeled_seconds,
            makespan,
            completed,
            rejected: 0,
            quarantined: 0,
            retries: 0,
        }
    }

    /// Attaches the degradation counters (load-shed rejections,
    /// quarantined jobs, fault-plane retries) to a report built with
    /// [`new`](Self::new) — zero for engines without a fault plane.
    pub fn with_counts(mut self, rejected: u64, quarantined: u64, retries: u64) -> Self {
        self.rejected = rejected;
        self.quarantined = quarantined;
        self.retries = retries;
        self
    }

    /// Per-job wait/latency rows, in admission order — the one-stop
    /// accessor for tables and bench JSON (no re-deriving from the raw
    /// arrival/admitted/completed stamps).
    pub fn per_job(&self) -> Vec<JobRow> {
        self.jobs
            .iter()
            .map(|j| JobRow {
                job: j.job,
                name: j.name,
                arrival: j.arrival,
                wait: j.wait(),
                latency: j.latency(),
                outcome: j.outcome,
            })
            .collect()
    }

    /// Jobs served per virtual second of makespan (0 for an empty or
    /// instantaneous stream).
    pub fn throughput(&self) -> f64 {
        if self.jobs.is_empty() || self.makespan <= 0.0 {
            return 0.0;
        }
        self.jobs.len() as f64 / self.makespan
    }

    /// Rows that genuinely completed.  Latency statistics are computed
    /// over these only: a quarantined or truncated job's `completed`
    /// stamp is the quarantine/stop clock, not a real completion, and
    /// would silently skew means and percentiles.
    fn completed_rows(&self) -> impl Iterator<Item = &JobLatency> {
        self.jobs
            .iter()
            .filter(|j| j.outcome == JobOutcome::Completed)
    }

    /// Mean end-to-end latency over completed jobs (0 when none
    /// completed).
    pub fn mean_latency(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for j in self.completed_rows() {
            sum += j.latency();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean queue wait over completed jobs.
    pub fn mean_wait(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for j in self.completed_rows() {
            sum += j.wait();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The `p`-th percentile (0–100) of end-to-end latency over
    /// completed jobs, by nearest rank over the sorted latencies (0
    /// when none completed).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let mut lat: Vec<f64> = self.completed_rows().map(JobLatency::latency).collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = (p.clamp(0.0, 100.0) / 100.0 * (lat.len() - 1) as f64).round() as usize;
        lat[rank]
    }

    /// Fraction of `baseline`'s partition loads this run spared
    /// (negative if it loaded more).
    pub fn spared_loads_vs(&self, baseline: &ServeReport) -> f64 {
        if baseline.loads == 0 {
            return 0.0;
        }
        1.0 - self.loads as f64 / baseline.loads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(arrival: f64, admitted: f64, completed: f64) -> JobLatency {
        JobLatency {
            job: 0,
            name: "j",
            arrival,
            admitted,
            completed,
            outcome: JobOutcome::Completed,
        }
    }

    fn report(jobs: Vec<JobLatency>, loads: u64) -> ServeReport {
        ServeReport::new("test", 1.0, jobs, 1, 1, loads, 0.5, true)
    }

    #[test]
    fn makespan_and_throughput_span_first_arrival_to_last_completion() {
        let r = report(vec![job(1.0, 2.0, 5.0), job(3.0, 3.0, 9.0)], 10);
        assert_eq!(r.makespan, 8.0);
        assert!((r.throughput() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn latency_stats_match_hand_computation() {
        let r = report(
            vec![job(0.0, 1.0, 2.0), job(0.0, 0.0, 4.0), job(0.0, 2.0, 6.0)],
            10,
        );
        assert!((r.mean_latency() - 4.0).abs() < 1e-12);
        assert!((r.mean_wait() - 1.0).abs() < 1e-12);
        assert_eq!(r.latency_percentile(0.0), 2.0);
        assert_eq!(r.latency_percentile(50.0), 4.0);
        assert_eq!(r.latency_percentile(99.0), 6.0);
        assert_eq!(r.latency_percentile(100.0), 6.0);
    }

    #[test]
    fn empty_report_is_all_zeros() {
        let r = report(Vec::new(), 0);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.mean_latency(), 0.0);
        assert_eq!(r.latency_percentile(99.0), 0.0);
    }

    #[test]
    fn spared_loads_is_relative_to_baseline() {
        let a = report(vec![job(0.0, 0.0, 1.0)], 80);
        let b = report(vec![job(0.0, 0.0, 1.0)], 100);
        assert!((a.spared_loads_vs(&b) - 0.2).abs() < 1e-12);
        assert!((b.spared_loads_vs(&a) + 0.25).abs() < 1e-12);
        assert_eq!(a.spared_loads_vs(&report(Vec::new(), 0)), 0.0);
    }
}
