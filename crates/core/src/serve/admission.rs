//! Version-keyed wave batching over a timed arrival stream.

use cgraph_graph::snapshot::SnapshotStore;

use crate::job::JobId;
use crate::Engine;

/// One job arriving at a virtual time, carrying its deferred submission.
///
/// The submission is a closure over the target engine type (defaulting
/// to the CGraph [`Engine`]) so concrete vertex programs stay out of
/// this crate: `cgraph_algos::arrivals` builds these from trace spans.
/// The closure receives the snapshot timestamp the job binds — always
/// derived from the *arrival* time, never the admission time, so
/// deferral changes latency and sharing but never results.
pub struct Arrival<E = Engine> {
    /// Arrival time in virtual seconds.
    pub at: f64,
    /// Display name of the job kind (for reports).
    pub name: &'static str,
    /// Offer-order sequence number, stamped by a journaling
    /// [`ServeLoop`](super::ServeLoop) — the deterministic identity a
    /// re-offered trace reproduces across restarts.
    pub(crate) seq: Option<u64>,
    submit: SubmitFn<E>,
}

/// A deferred submission: engine + bind timestamp → job id.
type SubmitFn<E> = Box<dyn FnOnce(&mut E, u64) -> JobId + Send>;

impl<E> Arrival<E> {
    /// An arrival at virtual second `at` whose admission runs `submit`
    /// with the bind timestamp.
    pub fn new(
        at: f64,
        name: &'static str,
        submit: impl FnOnce(&mut E, u64) -> JobId + Send + 'static,
    ) -> Self {
        assert!(
            at.is_finite() && at >= 0.0,
            "arrival time must be finite and ≥ 0"
        );
        Arrival { at, name, seq: None, submit: Box::new(submit) }
    }

    /// The store timestamp this arrival binds its snapshot at: the
    /// floor of its arrival second (virtual seconds double as the
    /// snapshot clock).
    pub fn bind_timestamp(&self) -> u64 {
        self.at as u64
    }

    /// Consumes the arrival, submitting its job bound at `ts`.
    pub fn submit(self, engine: &mut E, ts: u64) -> JobId {
        (self.submit)(engine, ts)
    }
}

impl<E> std::fmt::Debug for Arrival<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arrival")
            .field("at", &self.at)
            .field("name", &self.name)
            .finish()
    }
}

/// Bounded-deferral admission with version-keyed release waves.
///
/// Arrivals queue for at most `window` virtual seconds.  When one's
/// deferral expires it *must* be admitted — and every queued arrival
/// already eligible (`at ≤ now`) that binds the same snapshot rides
/// along in the same wave, so jobs sharing partition versions start
/// aligned and the scheduler sees their full `N(P)` overlap from round
/// one.  At `window = 0` every eligible arrival's deferral is expired,
/// so waves are exactly the FIFO prefix of the queue regardless of
/// version keys.
pub struct AdmissionController<E = Engine> {
    window: f64,
    /// Pending arrivals, ascending by `at` (ties keep offer order).
    queue: Vec<Arrival<E>>,
}

impl<E> AdmissionController<E> {
    /// A controller deferring arrivals at most `window` virtual seconds.
    pub fn new(window: f64) -> Self {
        assert!(
            window.is_finite() && window >= 0.0,
            "admission window must be finite and ≥ 0"
        );
        AdmissionController { window, queue: Vec::new() }
    }

    /// The deferral window in virtual seconds.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Replaces the deferral window — the serve loop's brownout lever:
    /// widening it under load trades admission latency for bigger,
    /// better-shared waves.  Queued arrivals re-evaluate against the new
    /// window at the next [`release`](Self::release).
    pub fn set_window(&mut self, window: f64) {
        assert!(
            window.is_finite() && window >= 0.0,
            "admission window must be finite and ≥ 0"
        );
        self.window = window;
    }

    /// Queues an arrival (any offer order; the queue stays sorted by
    /// arrival time, ties keeping offer order).
    pub fn offer(&mut self, arrival: Arrival<E>) {
        let pos = self
            .queue
            .iter()
            .rposition(|a| a.at <= arrival.at)
            .map_or(0, |p| p + 1);
        self.queue.insert(pos, arrival);
    }

    /// Number of queued arrivals.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The earliest instant a queued arrival's deferral expires — the
    /// time [`release`](Self::release) is next guaranteed non-empty
    /// (the serve loop's idle-clock jump target).
    pub fn next_deadline(&self) -> Option<f64> {
        self.queue.first().map(|a| a.at + self.window)
    }

    /// Pops the wave to admit at virtual time `now`: empty unless some
    /// eligible arrival's deferral has expired (`at + window ≤ now`),
    /// otherwise every eligible arrival binding the same snapshot as an
    /// expired one, in arrival order.
    pub fn release(&mut self, now: f64, store: &SnapshotStore) -> Vec<Arrival<E>> {
        let eligible = self.queue.iter().take_while(|a| a.at <= now).count();
        if eligible == 0 {
            return Vec::new();
        }
        let mut keys: Vec<u64> = self.queue[..eligible]
            .iter()
            .filter(|a| a.at + self.window <= now)
            .map(|a| store.snapshot_at(a.bind_timestamp()))
            .collect();
        if keys.is_empty() {
            return Vec::new();
        }
        keys.sort_unstable();
        keys.dedup();
        let mut wave = Vec::new();
        let mut rest = Vec::with_capacity(self.queue.len());
        for (i, a) in self.queue.drain(..).enumerate() {
            let rides = i < eligible
                && keys
                    .binary_search(&store.snapshot_at(a.bind_timestamp()))
                    .is_ok();
            if rides {
                wave.push(a);
            } else {
                rest.push(a);
            }
        }
        self.queue = rest;
        wave
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::snapshot::GraphDelta;
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Edge, Partitioner};

    /// Arrivals here never reach an engine; the closure type anchors `E`.
    fn arrival(at: f64) -> Arrival<()> {
        Arrival::new(at, "test", |_: &mut (), _| 0)
    }

    fn static_store() -> SnapshotStore {
        let ps = VertexCutPartitioner::new(4).partition(&generate::cycle(16));
        SnapshotStore::new(ps)
    }

    /// A store whose snapshot at ts 10 splits arrivals into two version
    /// groups: bind key 0 (arrivals < 10) and bind key 10 (arrivals ≥ 10).
    fn evolving_store() -> SnapshotStore {
        let mut s = static_store();
        s.apply(10, &GraphDelta::adding([Edge::unit(0, 5)]))
            .unwrap();
        s
    }

    #[test]
    fn window_zero_releases_fifo_prefix() {
        let store = evolving_store();
        let mut c = AdmissionController::new(0.0);
        for at in [2.0, 8.0, 12.0, 20.0] {
            c.offer(arrival(at));
        }
        // Everything eligible goes at once, across version groups,
        // in arrival order — FIFO.
        let wave = c.release(12.5, &store);
        let ats: Vec<f64> = wave.iter().map(|a| a.at).collect();
        assert_eq!(ats, vec![2.0, 8.0, 12.0]);
        assert_eq!(c.pending(), 1);
        assert!(c.release(12.5, &store).is_empty(), "nothing newly eligible");
    }

    #[test]
    fn deferral_holds_until_deadline() {
        let store = static_store();
        let mut c = AdmissionController::new(5.0);
        c.offer(arrival(3.0));
        assert!(c.release(3.0, &store).is_empty(), "deferral not expired");
        assert!(c.release(7.9, &store).is_empty());
        assert_eq!(c.next_deadline(), Some(8.0));
        assert_eq!(
            c.release(8.0, &store).len(),
            1,
            "expires exactly at deadline"
        );
    }

    #[test]
    fn expired_arrival_pulls_its_version_group_along() {
        let store = evolving_store();
        let mut c = AdmissionController::new(6.0);
        // Both bind the base snapshot (key 0); the third binds key 10.
        c.offer(arrival(2.0));
        c.offer(arrival(7.0));
        c.offer(arrival(11.0));
        // At 8.0 the first arrival's deferral expires; 7.0 shares its
        // bind key and rides along despite 5 seconds of headroom; 11.0
        // has not even arrived.
        let wave = c.release(8.0, &store);
        let ats: Vec<f64> = wave.iter().map(|a| a.at).collect();
        assert_eq!(ats, vec![2.0, 7.0]);
        assert_eq!(c.pending(), 1);
        // The cross-version arrival waits for its own deadline.
        assert!(c.release(12.0, &store).is_empty());
        let wave = c.release(17.0, &store);
        assert_eq!(wave.len(), 1);
        assert_eq!(wave[0].at, 11.0);
    }

    #[test]
    fn eligible_other_version_does_not_ride() {
        let store = evolving_store();
        let mut c = AdmissionController::new(4.0);
        c.offer(arrival(8.0)); // binds key 0
        c.offer(arrival(11.0)); // binds key 10, eligible at 12 but fresh
        let wave = c.release(12.0, &store);
        let ats: Vec<f64> = wave.iter().map(|a| a.at).collect();
        assert_eq!(ats, vec![8.0], "fresh cross-version arrival keeps waiting");
        assert_eq!(c.pending(), 1);
    }

    #[test]
    fn offers_sort_by_arrival_time() {
        let store = static_store();
        let mut c = AdmissionController::new(0.0);
        c.offer(arrival(9.0));
        c.offer(arrival(1.0));
        c.offer(arrival(4.0));
        assert_eq!(c.next_deadline(), Some(1.0));
        let wave = c.release(10.0, &store);
        let ats: Vec<f64> = wave.iter().map(|a| a.at).collect();
        assert_eq!(ats, vec![1.0, 4.0, 9.0]);
        assert!(c.is_empty());
    }

    #[test]
    fn bind_timestamp_floors_arrival_seconds() {
        assert_eq!(arrival(0.0).bind_timestamp(), 0);
        assert_eq!(arrival(3.7).bind_timestamp(), 3);
        assert_eq!(arrival(10.0).bind_timestamp(), 10);
    }

    #[test]
    #[should_panic(expected = "admission window")]
    fn negative_window_rejected() {
        AdmissionController::<()>::new(-1.0);
    }
}
