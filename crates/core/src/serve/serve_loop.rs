//! The round-interleaved serving driver.

use std::path::Path;
use std::sync::Arc;

use cgraph_graph::StoreError;

use crate::engine::Engine;
use crate::incr::StandingRunner;
use crate::job::JobId;
use crate::obs::{EventKind, Observer, Recorder, NONE};
use crate::serve::admission::{AdmissionController, Arrival};
use crate::serve::journal::{JournalEntry, ServeJournal};
use crate::serve::report::{JobLatency, JobOutcome, ServeReport};

/// Smoothing factor of the arrival-rate EWMA gauge: each new
/// inter-arrival sample carries 20% weight, so the gauge tracks bursts
/// within ~5 arrivals without whiplashing on a single gap.
const ARRIVAL_EWMA_ALPHA: f64 = 0.2;

/// Serving-layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Bounded deferral window of the admission controller, in virtual
    /// seconds.  0 = FIFO admission.
    pub admission_window: f64,
    /// Virtual seconds the clock advances per modeled execution second
    /// (1.0 = the engine's cost model *is* the wall clock; larger
    /// values model an arrival stream slow relative to execution).
    pub time_scale: f64,
    /// Bounded backlog: offers arriving while this many arrivals are
    /// already queued are *shed* — counted as rejected in the report,
    /// never submitted, never journaled.  0 (the default) = unbounded,
    /// the pre-existing behavior.
    pub max_backlog: usize,
    /// Brownout threshold: when the backlog reaches this depth — or a
    /// job is quarantined by fault admission — the loop enters brownout
    /// and widens the admission window by
    /// [`brownout_factor`](Self::brownout_factor), trading admission
    /// latency for bigger, better-shared waves; it exits (restoring the
    /// configured window) once the backlog drains to half the
    /// threshold.  0 (the default) disables brownout.
    pub brownout_backlog: usize,
    /// Multiplier applied to the admission window during brownout
    /// (clamped to ≥ 1).
    pub brownout_factor: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            admission_window: 0.0,
            time_scale: 1.0,
            max_backlog: 0,
            brownout_backlog: 0,
            brownout_factor: 4.0,
        }
    }
}

/// Drives an [`Engine`] from a timed arrival stream, interleaving
/// admission with execution one scheduling round at a time:
///
/// 1. release every due admission wave (version-keyed, see
///    [`AdmissionController`]) and submit its jobs — each binds the
///    newest snapshot at its *arrival* time;
/// 2. execute one [`Engine::step_round`] and advance the virtual clock
///    by the round's modeled makespan (scaled by
///    [`ServeConfig::time_scale`]);
/// 3. stamp completions for jobs that converged, then repeat; when the
///    engine idles, jump the clock to the next admission deadline.
///
/// Queue wait and end-to-end latency flow through the engine's
/// [`ChargeLedger`](crate::ChargeLedger)
/// ([`Engine::record_admission`] / [`Engine::record_completion`]) and
/// surface in the final [`ServeReport`].
pub struct ServeLoop {
    engine: Engine,
    admission: AdmissionController<Engine>,
    time_scale: f64,
    clock: f64,
    /// Every admitted job, in admission order, with its offer-order
    /// journal sequence (when journaling).
    tracked: Vec<(JobId, &'static str, Option<u64>)>,
    /// Admitted jobs not yet stamped complete.
    open: Vec<JobId>,
    waves: u64,
    rounds: u64,
    /// Durable completion journal (restartable serving only).
    journal: Option<ServeJournal>,
    /// First journal I/O failure: journaling stops (the serve itself
    /// continues), and the error is exposed for the caller.
    journal_fault: Option<StoreError>,
    /// Next offer-order sequence number.
    next_seq: u64,
    /// Journal-replayed lifecycles of offers skipped because a previous
    /// incarnation already completed them; drained into the next
    /// [`serve`](Self::serve) call's report.
    resumed: Vec<JobLatency>,
    /// Total offers skipped via the journal since construction.
    resumed_count: u64,
    /// The serve-level observer (defaults to the engine's), feeding the
    /// admission/wave/queue-wait signals.  Disabled = one branch per
    /// site.
    obs: Arc<Observer>,
    /// Serve-thread event recorder (admission defer/release, rounds).
    rec: Recorder,
    /// Previous arrival's virtual time (EWMA inter-arrival sampling).
    last_arrival: Option<f64>,
    /// Smoothed arrival rate in jobs per virtual second.
    arrival_ewma: Option<f64>,
    /// Backlog bound for load shedding (0 = unbounded).
    max_backlog: usize,
    /// Brownout entry threshold (0 = brownout disabled).
    brownout_backlog: usize,
    /// Window multiplier while browned out.
    brownout_factor: f64,
    /// The configured admission window, restored on brownout exit.
    base_window: f64,
    /// Whether the loop is currently browned out.
    brownout: bool,
    /// Offers shed at the admission door since construction.
    rejected: u64,
    /// Sheds already attributed to an earlier report — offers are shed
    /// at *offer* time, which happens between `serve` calls, so each
    /// report covers every shed since the previous one rather than
    /// only those during its own loop.
    reported_rejected: u64,
    /// Standing jobs: each re-emits one result per store version (the
    /// base view plus every applied snapshot), resuming incrementally
    /// where the delta range allows.
    standing: Vec<Box<dyn StandingRunner>>,
    /// Per-runner index into the version list of the next emission.
    standing_next: Vec<usize>,
    /// Standing emissions not yet resolved: (runner, job, bind ts).
    standing_open: Vec<(usize, JobId, u64)>,
}

impl ServeLoop {
    /// Wraps an engine for serving.  Jobs already submitted to the
    /// engine run alongside the stream but are not tracked in reports.
    pub fn new(engine: Engine, config: ServeConfig) -> Self {
        assert!(
            config.time_scale.is_finite() && config.time_scale > 0.0,
            "time scale must be finite and > 0"
        );
        // Serving inherits the engine's observer, so one
        // `EngineConfig::observer` traces executor and serve layers
        // alike; `with_observer` overrides it.
        let obs = Arc::clone(engine.observer());
        let rec = obs.recorder("serve");
        ServeLoop {
            engine,
            admission: AdmissionController::new(config.admission_window),
            time_scale: config.time_scale,
            clock: 0.0,
            tracked: Vec::new(),
            open: Vec::new(),
            waves: 0,
            rounds: 0,
            journal: None,
            journal_fault: None,
            next_seq: 0,
            resumed: Vec::new(),
            resumed_count: 0,
            obs,
            rec,
            last_arrival: None,
            arrival_ewma: None,
            max_backlog: config.max_backlog,
            brownout_backlog: config.brownout_backlog,
            brownout_factor: config.brownout_factor.max(1.0),
            base_window: config.admission_window,
            brownout: false,
            rejected: 0,
            reported_rejected: 0,
            standing: Vec::new(),
            standing_next: Vec::new(),
            standing_open: Vec::new(),
        }
    }

    /// Replaces the serve-level observer (admission, wave, and
    /// queue-wait signals).  The executor's own spans still come from
    /// the observer the engine was *constructed* with
    /// (`EngineConfig::observer`) — pass the same `Arc` to both to get
    /// one merged trace.
    pub fn with_observer(mut self, obs: Arc<Observer>) -> Self {
        self.rec = obs.recorder("serve");
        self.obs = obs;
        self
    }

    /// Wraps an engine for **restartable** serving: completions are
    /// journaled to the WAL segment at `path`
    /// ([`ServeJournal`](crate::serve::journal::ServeJournal)), and a
    /// loop re-opened over the same path skips every offer a previous
    /// incarnation already finished — no re-execution, no double-charged
    /// engine work, the journaled latencies reported verbatim.  Offer
    /// order is the identity: restarts must re-offer the same trace in
    /// the same order.
    pub fn with_journal(
        engine: Engine,
        config: ServeConfig,
        path: &Path,
    ) -> Result<Self, StoreError> {
        let journal = ServeJournal::open(path)?;
        let mut sl = ServeLoop::new(engine, config);
        sl.journal = Some(journal);
        Ok(sl)
    }

    /// Queues one arrival.  Under a journal
    /// ([`with_journal`](Self::with_journal)), an offer a previous
    /// incarnation completed is consumed here instead: its journaled
    /// lifecycle goes straight to the next report.  With a bounded
    /// backlog ([`ServeConfig::max_backlog`]), an offer arriving over a
    /// full queue is *shed*: counted as rejected, never submitted, never
    /// journaled.  Shed offers still consume their offer-order sequence
    /// number, so journal identity is stable across restarts.
    pub fn offer(&mut self, arrival: Arrival) {
        if self.rec.on() {
            self.note_arrival(arrival.at);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(journal) = &self.journal {
            if let Some(entry) = journal.entry(seq) {
                self.resumed.push(JobLatency {
                    job: seq as JobId,
                    name: arrival.name,
                    arrival: entry.arrival,
                    admitted: entry.admitted,
                    completed: entry.completed,
                    outcome: JobOutcome::Completed,
                });
                self.resumed_count += 1;
                return;
            }
        }
        if self.max_backlog > 0 && self.admission.pending() >= self.max_backlog {
            self.rejected += 1;
            if self.rec.on() {
                self.rec.instant(
                    EventKind::AdmitShed,
                    NONE,
                    NONE,
                    self.rounds.min(u32::MAX as u64) as u32,
                    self.admission.pending() as u64,
                );
                self.obs.registry().counter("serve_shed").inc();
            }
            return;
        }
        if self.journal.is_some() {
            let mut arrival = arrival;
            arrival.seq = Some(seq);
            self.admission.offer(arrival);
            return;
        }
        self.admission.offer(arrival);
    }

    /// Queues a whole stream of arrivals.
    pub fn offer_all<I: IntoIterator<Item = Arrival>>(&mut self, arrivals: I) {
        for a in arrivals {
            self.offer(a);
        }
    }

    /// Registers a standing job: the runner re-emits one result per
    /// store version — the base view, then every applied snapshot as
    /// the virtual clock reaches its timestamp — resuming from the
    /// previous emission's harvested result where the delta range is
    /// addition-only (O(Δ)), and from scratch otherwise.
    ///
    /// Emissions flow through the ordinary serve machinery: they are
    /// tracked and reported like offered arrivals (named after the
    /// runner), and under a journal each emission consumes an
    /// offer-order sequence number exactly like an offer, so a
    /// restarted loop (same offers, same runners, same order) skips
    /// journaled emissions verbatim.  A skipped emission's *result* is
    /// unknown to the new incarnation, so the runner's prior is
    /// invalidated and its next live emission recomputes from scratch.
    ///
    /// Restart discipline: register standing runners in the same order
    /// across incarnations, before the first `serve` call.
    pub fn add_standing(&mut self, runner: Box<dyn StandingRunner>) {
        self.standing.push(runner);
        self.standing_next.push(0);
    }

    /// Read access to a registered standing runner (emission counters).
    pub fn standing(&self, idx: usize) -> &dyn StandingRunner {
        &*self.standing[idx]
    }

    /// Number of registered standing runners.
    pub fn standing_count(&self) -> usize {
        self.standing.len()
    }

    /// The version timeline standing jobs emit against: the base view
    /// (timestamp 0) plus every applied snapshot.  Recomputed on each
    /// use so deltas applied between serve calls extend the timeline.
    fn standing_versions(&self) -> Vec<u64> {
        let mut versions = vec![0u64];
        versions.extend(self.engine.store().snapshot_timestamps());
        versions
    }

    /// Whether every standing runner has emitted every version
    /// currently in the store.
    fn standing_exhausted(&self) -> bool {
        if self.standing.is_empty() {
            return true;
        }
        let len = self.standing_versions().len();
        self.standing_next.iter().all(|&n| n >= len)
    }

    /// The earliest version timestamp any standing runner still has to
    /// emit (the standing analogue of the admission deadline).
    fn next_standing_due(&self) -> Option<f64> {
        if self.standing.is_empty() {
            return None;
        }
        let versions = self.standing_versions();
        self.standing_next
            .iter()
            .filter_map(|&next| versions.get(next).map(|&ts| ts as f64))
            .fold(None, |m, t| Some(m.map_or(t, |m: f64| m.min(t))))
    }

    /// Emits every due standing emission, in `(version, runner)` order —
    /// lexicographic and clock-independent, so journal sequence numbers
    /// assign identically across incarnations regardless of round
    /// pacing.  Returns whether anything was submitted.
    fn emit_standing(&mut self) -> bool {
        if self.standing.is_empty() {
            return false;
        }
        let versions = self.standing_versions();
        let mut emitted = false;
        loop {
            let mut pick: Option<(u64, usize)> = None;
            for (r, &next) in self.standing_next.iter().enumerate() {
                if next < versions.len() && versions[next] as f64 <= self.clock {
                    let key = (versions[next], r);
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
            }
            let Some((ts, r)) = pick else { break };
            self.standing_next[r] += 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            if let Some(journal) = &self.journal {
                if let Some(entry) = journal.entry(seq) {
                    self.resumed.push(JobLatency {
                        job: seq as JobId,
                        name: self.standing[r].name(),
                        arrival: entry.arrival,
                        admitted: entry.admitted,
                        completed: entry.completed,
                        outcome: JobOutcome::Completed,
                    });
                    self.resumed_count += 1;
                    // The replayed emission's result is unknown to this
                    // incarnation: drop the prior so the next live
                    // emission recomputes from scratch.
                    self.standing[r].invalidate();
                    continue;
                }
            }
            let id = self.standing[r].resubmit(&mut self.engine, ts);
            self.engine.record_admission(id, ts as f64, self.clock);
            let seq = self.journal.is_some().then_some(seq);
            self.tracked.push((id, self.standing[r].name(), seq));
            self.open.push(id);
            self.standing_open.push((r, id, ts));
            emitted = true;
        }
        emitted
    }

    /// The current virtual time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Offers skipped because the journal showed a previous incarnation
    /// already completed them.
    pub fn resumed(&self) -> u64 {
        self.resumed_count
    }

    /// Offers shed at the admission door since construction (bounded
    /// backlog overflow).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Whether the loop is currently browned out (admission window
    /// widened under backlog or fault pressure).
    pub fn browned_out(&self) -> bool {
        self.brownout
    }

    /// The first journal I/O failure, if journaling had to stop (the
    /// serve itself keeps going; later restarts simply resume less).
    pub fn journal_error(&self) -> Option<&StoreError> {
        self.journal_fault.as_ref()
    }

    /// The wrapped engine (read access; results, metrics, store).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Unwraps the engine, e.g. to extract typed results after serving.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Observability tap for one offered arrival: arrival counter plus
    /// the smoothed arrival-rate gauge (inter-arrival EWMA in jobs per
    /// virtual second) and an admission-defer instant event.  Only
    /// called with the recorder on, and reads nothing back — offered
    /// arrivals behave identically traced or not.
    fn note_arrival(&mut self, at: f64) {
        let r = self.obs.registry();
        r.counter("serve_arrivals").inc();
        if let Some(prev) = self.last_arrival {
            let dt = (at - prev).max(1e-9);
            let sample = 1.0 / dt;
            let ewma = match self.arrival_ewma {
                Some(e) => ARRIVAL_EWMA_ALPHA * sample + (1.0 - ARRIVAL_EWMA_ALPHA) * e,
                None => sample,
            };
            self.arrival_ewma = Some(ewma);
            r.gauge("serve_arrival_rate_ewma").set(ewma);
        }
        self.last_arrival = Some(at);
        self.rec.instant(
            EventKind::AdmitDefer,
            NONE,
            NONE,
            self.rounds.min(u32::MAX as u64) as u32,
            (at * 1e6) as u64,
        );
    }

    /// Brownout hysteresis: enter when the backlog reaches the
    /// threshold or fault admission has quarantined a job (the window
    /// widens by the configured factor, so waves batch harder and the
    /// engine catches up); exit — restoring the configured window —
    /// once the backlog drains to half the threshold.
    fn update_brownout(&mut self) {
        if self.brownout_backlog == 0 {
            return;
        }
        let pending = self.admission.pending();
        if !self.brownout
            && (pending >= self.brownout_backlog || self.engine.quarantined_count() > 0)
        {
            self.brownout = true;
            // A zero base window widens to nothing: brownout is a
            // batching lever, so it needs a window to widen (shedding
            // still bounds a FIFO loop).
            self.admission
                .set_window(self.base_window * self.brownout_factor);
            if self.rec.on() {
                self.obs.registry().counter("serve_brownouts").inc();
                self.obs.registry().gauge("serve_brownout").set(1.0);
            }
        } else if self.brownout && pending <= self.brownout_backlog / 2 {
            self.brownout = false;
            self.admission.set_window(self.base_window);
            if self.rec.on() {
                self.obs.registry().gauge("serve_brownout").set(0.0);
            }
        }
    }

    /// Releases every due arrival into the engine, stamping admissions.
    fn admit_due(&mut self) -> bool {
        let wave = self.admission.release(self.clock, self.engine.store());
        if wave.is_empty() {
            return false;
        }
        self.waves += 1;
        if self.rec.on() {
            self.obs
                .registry()
                .histogram("serve_wave_size")
                .record(wave.len() as u64);
        }
        for a in wave {
            let (at, name, seq, ts) = (a.at, a.name, a.seq, a.bind_timestamp());
            let id = a.submit(&mut self.engine, ts);
            self.engine.record_admission(id, at, self.clock);
            if self.rec.on() {
                // Queue wait in *virtual* microseconds — the serving
                // clock is modeled time, not the wall.
                let wait_us = ((self.clock - at).max(0.0) * 1e6) as u64;
                self.obs
                    .registry()
                    .histogram("serve_queue_wait_us")
                    .record(wait_us);
                self.rec.instant(
                    EventKind::AdmitRelease,
                    id,
                    NONE,
                    self.rounds.min(u32::MAX as u64) as u32,
                    wait_us,
                );
            }
            self.tracked.push((id, name, seq));
            self.open.push(id);
        }
        true
    }

    /// Stamps completion for every open job that has converged — or was
    /// quarantined by fault admission (stamped at the quarantine clock,
    /// never journaled: only genuine convergence may be skipped on
    /// restart) — and journals the genuinely converged ones.
    fn note_completions(&mut self) {
        let clock = self.clock;
        let mut finished: Vec<JobId> = Vec::new();
        let mut resolved: Vec<JobId> = Vec::new();
        let engine = &mut self.engine;
        self.open.retain(|&id| {
            if engine.job_done(id) {
                engine.record_completion(id, clock);
                finished.push(id);
                resolved.push(id);
                false
            } else if engine.job_fault(id).is_some() {
                engine.record_completion(id, clock);
                resolved.push(id);
                false
            } else {
                true
            }
        });
        // Harvest resolved standing emissions: a converged one becomes
        // the runner's next prior; a quarantined one leaves the last
        // good prior in place (resuming over a longer addition-only
        // range is still exact, and any removal forces the fallback).
        if !self.standing_open.is_empty() {
            for &id in &resolved {
                if let Some(pos) = self.standing_open.iter().position(|&(_, j, _)| j == id) {
                    let (r, job, ts) = self.standing_open.swap_remove(pos);
                    if self.engine.job_done(job) {
                        self.standing[r].harvest(&self.engine, job, ts);
                    }
                }
            }
        }
        if self.journal.is_some() {
            for id in finished {
                self.journal_completion(id);
            }
        }
    }

    /// Appends one converged job's lifecycle to the journal; a write
    /// failure stops journaling but not serving.
    fn journal_completion(&mut self, id: JobId) {
        let Some(&(_, _, Some(seq))) = self.tracked.iter().find(|t| t.0 == id) else {
            return;
        };
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        let timing = self.engine.job_timing(id).expect("admitted jobs are timed");
        let entry = JournalEntry {
            arrival: timing.arrival,
            admitted: timing.admitted,
            completed: timing.completed.expect("completion was just stamped"),
        };
        if let Err(e) = journal.record(seq, entry) {
            self.journal = None;
            self.journal_fault.get_or_insert(e);
        }
    }

    /// Makes the round's journaled completions crash-durable (one fsync
    /// for the whole batch); a failure stops journaling but not serving.
    fn sync_journal(&mut self) {
        if let Some(journal) = self.journal.as_mut() {
            if let Err(e) = journal.sync() {
                self.journal = None;
                self.journal_fault.get_or_insert(e);
            }
        }
    }

    /// Serves the stream to exhaustion: admits, executes, and advances
    /// virtual time until the queue is empty and the engine idle — or
    /// until the engine's `max_loads` valve trips (checked between
    /// rounds like [`Engine::run`]'s loop).  A valve-truncated serve
    /// reports `completed = false`, stamps still-running jobs with the
    /// stop-time as their completion, and leaves unadmitted arrivals
    /// queued for a later `serve` call.
    pub fn serve(&mut self) -> ServeReport {
        let start_loads = self.engine.total_loads();
        let start_pipeline = self.engine.pipeline_seconds();
        let (start_waves, start_rounds) = (self.waves, self.rounds);
        let report_from = self.tracked.len();
        let max_loads = self.engine.config().max_loads;
        let start_quarantined = self.engine.quarantined_count();
        let start_retries = self
            .engine
            .fault_plane()
            .map(|p| p.stats().retries)
            .unwrap_or(0);
        let mut completed = true;
        loop {
            self.update_brownout();
            let admitted = self.admit_due();
            let emitted = self.emit_standing();
            if admitted || emitted {
                // Jobs converged at submission complete with zero
                // execution latency.
                self.note_completions();
            }
            if self.engine.total_loads() - start_loads >= max_loads {
                completed =
                    self.open.is_empty() && self.admission.is_empty() && self.standing_exhausted();
                break;
            }
            let before = self.engine.pipeline_seconds();
            let round_t0 = self.rec.start();
            if self.engine.step_round() {
                self.rounds += 1;
                self.clock += (self.engine.pipeline_seconds() - before) * self.time_scale;
                self.note_completions();
                self.sync_journal();
                if self.rec.on() {
                    self.rec.complete(
                        EventKind::ServeRound,
                        NONE,
                        NONE,
                        self.rounds.min(u32::MAX as u64) as u32,
                        round_t0,
                        self.open.len() as u64,
                    );
                    self.obs
                        .registry()
                        .gauge("serve_open_jobs")
                        .set(self.open.len() as f64);
                }
                continue;
            }
            // A faulted engine (concurrent-executor worker death) can
            // never finish its open jobs: stop serving instead of
            // spinning on the idle-clock jump.
            if self.engine.exec_error().is_some() {
                completed = false;
                break;
            }
            // Engine idle: jump to the next admission deadline or the
            // next pending standing version (everything due is already
            // emitted, so the jump strictly advances), or stop once both
            // streams are exhausted.
            let deadline = match (self.admission.next_deadline(), self.next_standing_due()) {
                (Some(a), Some(s)) => Some(a.min(s)),
                (a, s) => a.or(s),
            };
            match deadline {
                Some(t) => self.clock = self.clock.max(t),
                None => break,
            }
        }
        // Truncated jobs below are stamped but never journaled — only
        // genuine convergence may be skipped on restart.  Flush any
        // completions the last iteration journaled.
        self.sync_journal();
        // Resolve truncated jobs at the stop-time so the report is
        // total; `completed` records that they were cut short.
        let clock = self.clock;
        for &id in &self.open {
            self.engine.record_completion(id, clock);
        }
        self.open.clear();
        // Truncated standing emissions are never harvested: the runner
        // keeps its last *converged* prior.
        self.standing_open.clear();
        // Journal-resumed offers lead the report (their lifecycles are a
        // previous incarnation's, so they sort before this serve's), so
        // the combined job list covers the whole re-offered trace.
        let mut jobs: Vec<JobLatency> = std::mem::take(&mut self.resumed);
        jobs.extend(self.tracked[report_from..].iter().map(|&(id, name, _)| {
            let t = self.engine.job_timing(id).expect("admitted jobs are timed");
            let outcome = if self.engine.job_fault(id).is_some() {
                JobOutcome::Quarantined
            } else if self.engine.job_done(id) {
                JobOutcome::Completed
            } else {
                JobOutcome::Truncated
            };
            JobLatency {
                job: id,
                name,
                arrival: t.arrival,
                admitted: t.admitted,
                completed: t.completed.expect("served jobs are complete"),
                outcome,
            }
        }));
        let retries = self
            .engine
            .fault_plane()
            .map(|p| p.stats().retries)
            .unwrap_or(0)
            - start_retries;
        // Offer-time sheds since the previous report (see
        // `reported_rejected`): the offer phase precedes the loop.
        let rejected = self.rejected - self.reported_rejected;
        self.reported_rejected = self.rejected;
        ServeReport::new(
            "cgraph-serve",
            self.base_window,
            jobs,
            self.waves - start_waves,
            self.rounds - start_rounds,
            self.engine.total_loads() - start_loads,
            self.engine.pipeline_seconds() - start_pipeline,
            completed,
        )
        .with_counts(
            rejected,
            self.engine.quarantined_count() - start_quarantined,
            retries,
        )
    }
}
