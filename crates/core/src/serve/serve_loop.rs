//! The round-interleaved serving driver.

use crate::engine::Engine;
use crate::job::JobId;
use crate::serve::admission::{AdmissionController, Arrival};
use crate::serve::report::{JobLatency, ServeReport};

/// Serving-layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Bounded deferral window of the admission controller, in virtual
    /// seconds.  0 = FIFO admission.
    pub admission_window: f64,
    /// Virtual seconds the clock advances per modeled execution second
    /// (1.0 = the engine's cost model *is* the wall clock; larger
    /// values model an arrival stream slow relative to execution).
    pub time_scale: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { admission_window: 0.0, time_scale: 1.0 }
    }
}

/// Drives an [`Engine`] from a timed arrival stream, interleaving
/// admission with execution one scheduling round at a time:
///
/// 1. release every due admission wave (version-keyed, see
///    [`AdmissionController`]) and submit its jobs — each binds the
///    newest snapshot at its *arrival* time;
/// 2. execute one [`Engine::step_round`] and advance the virtual clock
///    by the round's modeled makespan (scaled by
///    [`ServeConfig::time_scale`]);
/// 3. stamp completions for jobs that converged, then repeat; when the
///    engine idles, jump the clock to the next admission deadline.
///
/// Queue wait and end-to-end latency flow through the engine's
/// [`ChargeLedger`](crate::ChargeLedger)
/// ([`Engine::record_admission`] / [`Engine::record_completion`]) and
/// surface in the final [`ServeReport`].
pub struct ServeLoop {
    engine: Engine,
    admission: AdmissionController<Engine>,
    time_scale: f64,
    clock: f64,
    /// Every admitted job, in admission order.
    tracked: Vec<(JobId, &'static str)>,
    /// Admitted jobs not yet stamped complete.
    open: Vec<JobId>,
    waves: u64,
    rounds: u64,
}

impl ServeLoop {
    /// Wraps an engine for serving.  Jobs already submitted to the
    /// engine run alongside the stream but are not tracked in reports.
    pub fn new(engine: Engine, config: ServeConfig) -> Self {
        assert!(
            config.time_scale.is_finite() && config.time_scale > 0.0,
            "time scale must be finite and > 0"
        );
        ServeLoop {
            engine,
            admission: AdmissionController::new(config.admission_window),
            time_scale: config.time_scale,
            clock: 0.0,
            tracked: Vec::new(),
            open: Vec::new(),
            waves: 0,
            rounds: 0,
        }
    }

    /// Queues one arrival.
    pub fn offer(&mut self, arrival: Arrival) {
        self.admission.offer(arrival);
    }

    /// Queues a whole stream of arrivals.
    pub fn offer_all<I: IntoIterator<Item = Arrival>>(&mut self, arrivals: I) {
        for a in arrivals {
            self.offer(a);
        }
    }

    /// The current virtual time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The wrapped engine (read access; results, metrics, store).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Unwraps the engine, e.g. to extract typed results after serving.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Releases every due arrival into the engine, stamping admissions.
    fn admit_due(&mut self) -> bool {
        let wave = self.admission.release(self.clock, self.engine.store());
        if wave.is_empty() {
            return false;
        }
        self.waves += 1;
        for a in wave {
            let (at, name, ts) = (a.at, a.name, a.bind_timestamp());
            let id = a.submit(&mut self.engine, ts);
            self.engine.record_admission(id, at, self.clock);
            self.tracked.push((id, name));
            self.open.push(id);
        }
        true
    }

    /// Stamps completion for every open job that has converged.
    fn note_completions(&mut self) {
        let clock = self.clock;
        let engine = &mut self.engine;
        self.open.retain(|&id| {
            if engine.job_done(id) {
                engine.record_completion(id, clock);
                false
            } else {
                true
            }
        });
    }

    /// Serves the stream to exhaustion: admits, executes, and advances
    /// virtual time until the queue is empty and the engine idle — or
    /// until the engine's `max_loads` valve trips (checked between
    /// rounds like [`Engine::run`]'s loop).  A valve-truncated serve
    /// reports `completed = false`, stamps still-running jobs with the
    /// stop-time as their completion, and leaves unadmitted arrivals
    /// queued for a later `serve` call.
    pub fn serve(&mut self) -> ServeReport {
        let start_loads = self.engine.total_loads();
        let start_pipeline = self.engine.pipeline_seconds();
        let (start_waves, start_rounds) = (self.waves, self.rounds);
        let report_from = self.tracked.len();
        let max_loads = self.engine.config().max_loads;
        let mut completed = true;
        loop {
            if self.admit_due() {
                // Jobs converged at submission complete with zero
                // execution latency.
                self.note_completions();
            }
            if self.engine.total_loads() - start_loads >= max_loads {
                completed = self.open.is_empty() && self.admission.is_empty();
                break;
            }
            let before = self.engine.pipeline_seconds();
            if self.engine.step_round() {
                self.rounds += 1;
                self.clock += (self.engine.pipeline_seconds() - before) * self.time_scale;
                self.note_completions();
                continue;
            }
            // Engine idle: jump to the next admission deadline, or stop
            // once the stream is exhausted.
            match self.admission.next_deadline() {
                Some(t) => self.clock = self.clock.max(t),
                None => break,
            }
        }
        // Resolve truncated jobs at the stop-time so the report is
        // total; `completed` records that they were cut short.
        let clock = self.clock;
        for &id in &self.open {
            self.engine.record_completion(id, clock);
        }
        self.open.clear();
        let jobs: Vec<JobLatency> = self.tracked[report_from..]
            .iter()
            .map(|&(id, name)| {
                let t = self.engine.job_timing(id).expect("admitted jobs are timed");
                JobLatency {
                    job: id,
                    name,
                    arrival: t.arrival,
                    admitted: t.admitted,
                    completed: t.completed.expect("served jobs are complete"),
                }
            })
            .collect();
        ServeReport::new(
            "cgraph-serve",
            self.admission.window(),
            jobs,
            self.waves - start_waves,
            self.rounds - start_rounds,
            self.engine.total_loads() - start_loads,
            self.engine.pipeline_seconds() - start_pipeline,
            completed,
        )
    }
}
