//! The online serving layer: admission-controlled arrival streams.
//!
//! The engine below this module is batch-oriented — `submit*()` then
//! [`run`](crate::Engine::run) to convergence — but the paper's whole
//! premise (§3.2.1, Fig. 5) is *concurrent jobs arriving over time*
//! sharing snapshot partitions.  This module turns the engine into an
//! arrival-driven system:
//!
//! * [`Arrival`] — one job arriving at a virtual time, carrying its
//!   deferred submission (a closure over any [`JobEngine`]
//!   (crate::JobEngine), so concrete vertex programs stay out of core).
//! * [`AdmissionController`] — holds arrivals in a bounded deferral
//!   window and releases them as **waves keyed by bound snapshot
//!   version**: when an arrival's deferral expires, every queued
//!   arrival binding the same snapshot rides along, so the
//!   [`SlotPlanner`](crate::SlotPlanner) sees maximal `N(P)` overlap
//!   from the first round.  `admission_window = 0` degenerates to FIFO
//!   admission (each arrival released as soon as the clock reaches it).
//! * [`ServeLoop`] — interleaves admission with execution round by
//!   round through [`Engine::step_round`](crate::Engine::step_round),
//!   advancing virtual time by each round's modeled makespan and
//!   stamping per-job queue-wait / completion times through the
//!   [`ChargeLedger`](crate::ChargeLedger).
//! * [`ServeReport`] — throughput, mean/p50/p99 latency, loads, and the
//!   spared-loads comparison against a FIFO run.
//!
//! Admission delays *execution*, never *binding*: a job observes the
//! newest snapshot at its arrival time regardless of how long it queues,
//! so results are identical at any window — only latency and sharing
//! change.  The FIFO streaming baseline lives in
//! `cgraph_baselines::FifoServe`; the trace→program adapter in
//! `cgraph_algos::arrivals`.

pub mod admission;
pub mod journal;
pub mod report;
pub mod serve_loop;

pub use admission::{AdmissionController, Arrival};
pub use journal::{JournalEntry, ServeJournal};
pub use report::{JobLatency, JobOutcome, JobRow, ServeReport};
pub use serve_loop::{ServeConfig, ServeLoop};
