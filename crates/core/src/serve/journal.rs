//! The durable completion journal behind restartable serving.
//!
//! A [`ServeLoop`](super::ServeLoop) driving a long trace can be killed
//! mid-stream — process crash, node reboot, operator stop.  The journal
//! makes the loop resumable: every job that *genuinely converged* is
//! appended as one `K_SERVE_DONE` frame, and a restarted loop re-offered
//! the same trace skips journaled jobs entirely — no re-execution, no
//! double-charged engine work, their latencies reported from the journal
//! verbatim.
//!
//! # Frame layout
//!
//! The journal is a single WAL segment (`cgraph_graph::wal` format:
//! 8-byte segment header, length/CRC-framed records) whose frames all
//! carry kind [`K_SERVE_DONE`]:
//!
//! ```text
//! [kind = 9][seq u64][arrival f64][admitted f64][completed f64]
//! ```
//!
//! `seq` is the job's offer order — the deterministic identity a
//! re-offered trace reproduces.  The three timestamps are the job's
//! fully resolved virtual-time lifecycle, stored as IEEE-754 bits.
//!
//! # Durability and recovery policy
//!
//! Frames are appended as jobs converge and fsynced once per serve-loop
//! iteration (a round's batch of completions shares one `fdatasync`).
//! On open, a torn tail frame — the kill landed mid-append — is
//! truncated away and serving resumes from the longest clean prefix;
//! mid-log corruption (a CRC mismatch on an interior frame) refuses with
//! a typed [`StoreError`], never a panic, because silently dropping an
//! *acknowledged* completion would re-run a finished job.

use std::collections::HashMap;
use std::path::Path;

use cgraph_graph::wal::{scan_segment, SegmentId, SegmentWriter, StoreError, K_SERVE_DONE};

/// One journaled job lifecycle, in virtual seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JournalEntry {
    /// Arrival at the admission queue.
    pub arrival: f64,
    /// Release into the engine.
    pub admitted: f64,
    /// Convergence.
    pub completed: f64,
}

/// An append-only completion journal over one WAL segment file.
pub struct ServeJournal {
    writer: SegmentWriter,
    entries: HashMap<u64, JournalEntry>,
}

impl ServeJournal {
    /// Opens (or creates) the journal at `path`, replaying every intact
    /// completion frame.  A torn tail — from a kill mid-append — is
    /// truncated; mid-log corruption is a typed error.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        if !path.exists() {
            let writer = SegmentWriter::create(path, SegmentId::Journal)?;
            return Ok(ServeJournal { writer, entries: HashMap::new() });
        }
        let scanned = scan_segment(path, SegmentId::Journal)?;
        let mut entries = HashMap::new();
        for frame in &scanned.frames {
            let mut r = frame.body(SegmentId::Journal);
            if frame.kind() != K_SERVE_DONE {
                return Err(r.corrupt("unexpected frame kind in serve journal"));
            }
            let seq = r.u64()?;
            let arrival = r.f64()?;
            let admitted = r.f64()?;
            let completed = r.f64()?;
            if r.remaining() != 0 {
                return Err(r.corrupt("trailing bytes in serve-done frame"));
            }
            entries.insert(seq, JournalEntry { arrival, admitted, completed });
        }
        let writer = SegmentWriter::open_clean(path, SegmentId::Journal, scanned.clean_len)?;
        Ok(ServeJournal { writer, entries })
    }

    /// The journaled lifecycle of offer-order job `seq`, if it completed
    /// in a previous incarnation.
    pub fn entry(&self, seq: u64) -> Option<JournalEntry> {
        self.entries.get(&seq).copied()
    }

    /// Number of journaled completions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no completion has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends one completion frame (buffered in the OS page cache until
    /// [`sync`](Self::sync)).
    pub fn record(&mut self, seq: u64, entry: JournalEntry) -> Result<(), StoreError> {
        let mut payload = Vec::with_capacity(33);
        payload.push(K_SERVE_DONE);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&entry.arrival.to_bits().to_le_bytes());
        payload.extend_from_slice(&entry.admitted.to_bits().to_le_bytes());
        payload.extend_from_slice(&entry.completed.to_bits().to_le_bytes());
        self.writer.append(&payload)?;
        self.entries.insert(seq, entry);
        Ok(())
    }

    /// Fsyncs appended frames (no-op when nothing is dirty).  A
    /// completion is crash-durable only after this returns.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::fault;

    fn dir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("cgraph-serve-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry(k: u64) -> JournalEntry {
        JournalEntry { arrival: k as f64, admitted: k as f64 + 0.5, completed: k as f64 + 2.0 }
    }

    #[test]
    fn round_trips_completions() {
        let d = dir("roundtrip");
        let path = d.join("journal.seg");
        let mut j = ServeJournal::open(&path).unwrap();
        assert!(j.is_empty());
        for k in 0..5 {
            j.record(k, entry(k)).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        let j = ServeJournal::open(&path).unwrap();
        assert_eq!(j.len(), 5);
        assert_eq!(j.entry(3), Some(entry(3)));
        assert_eq!(j.entry(5), None);
    }

    #[test]
    fn torn_tail_is_truncated_mid_log_corruption_is_typed() {
        let d = dir("torn");
        let path = d.join("journal.seg");
        let mut j = ServeJournal::open(&path).unwrap();
        for k in 0..4 {
            j.record(k, entry(k)).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        let full = fault::file_len(&path).unwrap();
        // Chop into the last frame: the prefix must survive.
        fault::truncate_at(&path, full - 7).unwrap();
        let j = ServeJournal::open(&path).unwrap();
        assert_eq!(j.len(), 3, "torn tail frame dropped, prefix kept");
        drop(j);
        // Flip a payload bit in an interior frame: typed error, no panic.
        fault::flip_bit(&path, 30, 3).unwrap();
        let err = match ServeJournal::open(&path) {
            Ok(_) => panic!("corrupted journal must refuse to open"),
            Err(e) => e,
        };
        assert!(
            matches!(err, StoreError::Corruption { .. }),
            "mid-log corruption must refuse: {err}"
        );
    }
}
