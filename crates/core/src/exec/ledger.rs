//! Unified charging of simulated-hierarchy traffic and compute.
//!
//! Every engine must do the same bookkeeping when it touches data: route
//! the access through the [`MemoryHierarchy`], attribute the (amortized)
//! traffic to the requesting job, and fold compute/sync operations into
//! both the global counters and the job's attributed metrics.  That code
//! was duplicated — with drift risk — between `Engine::load_and_trigger`,
//! `Engine::charge_push` and the baseline `StreamEngine`; it now lives
//! here once.

use cgraph_memsim::{
    AccessOutcome, CacheObject, HierarchyConfig, JobMetrics, MemoryHierarchy, Metrics,
};

use crate::engine::SyncStrategy;
use crate::job::{JobRuntime, ProcessStats, PushStats};

/// Virtual-time lifecycle of one served job: when it arrived at the
/// admission queue, when the serving layer released it into the engine,
/// and when it converged.  All times are virtual seconds on the serve
/// loop's clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobTiming {
    /// Arrival at the admission queue.
    pub arrival: f64,
    /// Release from the queue into the engine.
    pub admitted: f64,
    /// Convergence, once observed (`None` while running).
    pub completed: Option<f64>,
}

impl JobTiming {
    /// Queue wait: admission minus arrival (≥ 0 by construction).
    pub fn wait(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// End-to-end latency: convergence minus arrival.
    pub fn latency(&self) -> Option<f64> {
        self.completed.map(|c| c - self.arrival)
    }
}

/// Owns the simulated hierarchy plus the per-job attributed metrics, and
/// exposes the only mutation paths engines use to charge work to them.
pub struct ChargeLedger {
    hierarchy: MemoryHierarchy,
    job_metrics: Vec<JobMetrics>,
    /// Serve-layer timings, parallel to `job_metrics` (`None` for jobs
    /// submitted outside an admission controller).
    timings: Vec<Option<JobTiming>>,
    /// Disk → memory bytes charged through each shard's stage-one I/O
    /// lane (grown on demand; empty while no lane saw disk traffic).
    shard_fetch_bytes: Vec<u64>,
    /// Disk bytes re-fetched from (modeled) spill storage per lane — the
    /// capacity-eviction round-trips, a subset of `shard_fetch_bytes`.
    spill_fetch_bytes: Vec<u64>,
    /// Disk bytes re-fetched because the fault plane retried or rerouted
    /// a fetch — injected-failure round-trips, a subset of
    /// `shard_fetch_bytes` (disjoint from `spill_fetch_bytes`).
    retry_fetch_bytes: Vec<u64>,
    /// Per job: disk bytes fetched through each lane (parallel to
    /// `job_metrics`; inner vectors grown on demand).  A job's dominant
    /// lane is its *home shard*; everything else is cross-shard traffic.
    job_lane_fetch: Vec<Vec<u64>>,
}

/// Grows `lanes` as needed and adds `bytes` to lane `lane`.
fn bump_lane(lanes: &mut Vec<u64>, lane: usize, bytes: u64) {
    if lanes.len() <= lane {
        lanes.resize(lane + 1, 0);
    }
    lanes[lane] += bytes;
}

impl ChargeLedger {
    /// Creates a ledger over a fresh hierarchy with the given capacities.
    pub fn new(config: HierarchyConfig) -> Self {
        ChargeLedger {
            hierarchy: MemoryHierarchy::new(config),
            job_metrics: Vec::new(),
            timings: Vec::new(),
            shard_fetch_bytes: Vec::new(),
            spill_fetch_bytes: Vec::new(),
            retry_fetch_bytes: Vec::new(),
            job_lane_fetch: Vec::new(),
        }
    }

    /// Adds an attribution slot for a newly submitted job.
    pub fn register_job(&mut self) {
        self.job_metrics.push(JobMetrics::default());
        self.timings.push(None);
        self.job_lane_fetch.push(Vec::new());
    }

    /// Records a served job's arrival and admission times (no-op for
    /// unknown jobs, like the sibling accessors).
    pub fn record_admission(&mut self, job: usize, arrival: f64, admitted: f64) {
        if let Some(slot) = self.timings.get_mut(job) {
            *slot = Some(JobTiming { arrival, admitted, completed: None });
        }
    }

    /// Records a served job's convergence time; only the first sticks.
    pub fn record_completion(&mut self, job: usize, at: f64) {
        if let Some(Some(t)) = self.timings.get_mut(job) {
            if t.completed.is_none() {
                t.completed = Some(at);
            }
        }
    }

    /// A job's serve-layer timing, if one was recorded.
    pub fn job_timing(&self, job: usize) -> Option<JobTiming> {
        self.timings.get(job).copied().flatten()
    }

    /// Accesses `obj` (`bytes` big) on behalf of `job`: the transfer is
    /// simulated and, on a miss, the traffic is attributed to the job.
    pub fn charge_access(&mut self, job: usize, obj: CacheObject, bytes: u64) -> AccessOutcome {
        let outcome = self.hierarchy.access(obj, bytes);
        let jm = &mut self.job_metrics[job];
        jm.attributed_accesses += 1.0;
        if !outcome.cache_hit {
            jm.attributed_misses += 1.0;
            jm.attributed_bytes += bytes as f64;
        }
        outcome
    }

    /// [`charge_access`](Self::charge_access) through shard lane `shard`:
    /// any disk→memory traffic the access causes is additionally
    /// attributed to that stage-one I/O lane, giving the prefetch
    /// pipeline its per-shard fetch-utilization figure.
    pub fn charge_access_on(
        &mut self,
        shard: usize,
        job: usize,
        obj: CacheObject,
        bytes: u64,
    ) -> AccessOutcome {
        let outcome = self.charge_access(job, obj, bytes);
        if outcome.bytes_from_disk > 0 {
            bump_lane(&mut self.shard_fetch_bytes, shard, outcome.bytes_from_disk);
            bump_lane(
                &mut self.job_lane_fetch[job],
                shard,
                outcome.bytes_from_disk,
            );
        }
        outcome
    }

    /// Charges a re-fetch of capacity-spilled snapshot state: `bytes`
    /// pulled back from (modeled) spill storage over shard lane `shard`
    /// on behalf of `job`.  Spill round-trips are disk traffic — they
    /// enter the global disk counter (and therefore the modeled fetch
    /// time), the job's attributed bytes, and the lane's fetch figure —
    /// and are additionally tracked in
    /// [`spill_fetch_bytes`](Self::spill_fetch_bytes) so eviction
    /// pricing stays separately observable.
    pub fn charge_spill_fetch(&mut self, shard: usize, job: usize, bytes: u64) {
        self.hierarchy.metrics_mut().bytes_disk_to_mem += bytes;
        if let Some(jm) = self.job_metrics.get_mut(job) {
            jm.attributed_bytes += bytes as f64;
        }
        bump_lane(&mut self.shard_fetch_bytes, shard, bytes);
        bump_lane(&mut self.spill_fetch_bytes, shard, bytes);
        if let Some(lanes) = self.job_lane_fetch.get_mut(job) {
            bump_lane(lanes, shard, bytes);
        }
    }

    /// Charges the disk traffic of one fault-plane retry or breaker
    /// reroute: `bytes` re-read over shard lane `shard` on behalf of
    /// `job`.  Priced exactly like a spill re-fetch (disk counter, job
    /// attribution, lane figure) but tracked in
    /// [`retry_fetch_bytes`](Self::retry_fetch_bytes) so injected-failure
    /// pricing stays separately observable from eviction pricing.
    pub fn charge_retry_fetch(&mut self, shard: usize, job: usize, bytes: u64) {
        self.hierarchy.metrics_mut().bytes_disk_to_mem += bytes;
        if let Some(jm) = self.job_metrics.get_mut(job) {
            jm.attributed_bytes += bytes as f64;
        }
        bump_lane(&mut self.shard_fetch_bytes, shard, bytes);
        bump_lane(&mut self.retry_fetch_bytes, shard, bytes);
        if let Some(lanes) = self.job_lane_fetch.get_mut(job) {
            bump_lane(lanes, shard, bytes);
        }
    }

    /// Disk bytes fetched per shard lane (index = shard id).  Shorter
    /// than the shard count when the tail lanes never saw disk traffic.
    pub fn shard_fetch_bytes(&self) -> &[u64] {
        &self.shard_fetch_bytes
    }

    /// Spill-storage re-fetch bytes per shard lane (a subset of
    /// [`shard_fetch_bytes`](Self::shard_fetch_bytes)).
    pub fn spill_fetch_bytes(&self) -> &[u64] {
        &self.spill_fetch_bytes
    }

    /// Fault-retry / breaker-reroute re-fetch bytes per shard lane (a
    /// subset of [`shard_fetch_bytes`](Self::shard_fetch_bytes)).
    pub fn retry_fetch_bytes(&self) -> &[u64] {
        &self.retry_fetch_bytes
    }

    /// One job's disk fetch bytes per lane (empty if the job never hit
    /// disk or is unknown).
    pub fn job_fetch_by_lane(&self, job: usize) -> &[u64] {
        self.job_lane_fetch
            .get(job)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total disk fetch bytes jobs pulled from outside their home
    /// shards, where a job's home shard is the lane carrying most of
    /// its fetch traffic.  In a multi-node deployment this is the
    /// traffic that crosses the network — the figure locality-aware
    /// placement exists to shrink.
    pub fn cross_shard_fetch_bytes(&self) -> u64 {
        self.job_lane_fetch
            .iter()
            .map(|lanes| {
                let total: u64 = lanes.iter().sum();
                total - lanes.iter().max().copied().unwrap_or(0)
            })
            .sum()
    }

    /// Folds one Trigger pass's compute counts into the job's and the
    /// global counters.
    pub fn charge_compute(&mut self, job: usize, stats: ProcessStats) {
        let jm = &mut self.job_metrics[job];
        jm.vertex_ops += stats.vertex_ops;
        jm.edge_ops += stats.edge_ops;
        let m = self.hierarchy.metrics_mut();
        m.vertex_ops += stats.vertex_ops;
        m.edge_ops += stats.edge_ops;
    }

    /// Charges one Push stage: sync records plus one private-table access
    /// per touched partition (or one per record under
    /// [`SyncStrategy::Immediate`] — the paper's D4 ablation).
    pub fn charge_push(
        &mut self,
        job: usize,
        runtime: &dyn JobRuntime,
        stats: &PushStats,
        sync: SyncStrategy,
    ) {
        self.hierarchy.metrics_mut().sync_ops += stats.sync_records;
        self.job_metrics[job].sync_ops += stats.sync_records;
        let touched = stats
            .touched_master_parts
            .iter()
            .chain(stats.touched_mirror_parts.iter());
        for &(pid, records) in touched {
            let tbytes = runtime.private_table_bytes(pid);
            let times = match sync {
                SyncStrategy::BatchedSorted => 1,
                SyncStrategy::Immediate => records.max(1),
            };
            for _ in 0..times {
                self.charge_access(
                    job,
                    CacheObject::PrivateTable { job: job as u32, pid },
                    tbytes,
                );
            }
        }
    }

    /// Counts one completed iteration (Push stage) for the job.
    pub fn bump_iterations(&mut self, job: usize) {
        self.job_metrics[job].iterations += 1;
    }

    /// Pins `obj` in the cache tier for the duration of a slot.
    pub fn pin(&mut self, obj: &CacheObject) {
        self.hierarchy.pin(obj);
    }

    /// Releases one pin of `obj`.
    pub fn unpin(&mut self, obj: &CacheObject) {
        self.hierarchy.unpin(obj);
    }

    /// Drops a finished job's state from every simulated tier.
    pub fn evict_job(&mut self, job: u32) {
        self.hierarchy.evict_job(job);
    }

    /// Accumulated global counters.
    pub fn metrics(&self) -> &Metrics {
        self.hierarchy.metrics()
    }

    /// A job's attributed metrics (default if out of range).
    pub fn job_metrics(&self, job: usize) -> JobMetrics {
        self.job_metrics.get(job).copied().unwrap_or_default()
    }

    /// The underlying hierarchy (read-only, for inspection in tests).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> ChargeLedger {
        let mut l = ChargeLedger::new(HierarchyConfig { cache_bytes: 100, memory_bytes: 1000 });
        l.register_job();
        l.register_job();
        l
    }

    #[test]
    fn miss_attributes_bytes_hit_does_not() {
        let mut l = ledger();
        let obj = CacheObject::Structure { pid: 0, version: 0 };
        let first = l.charge_access(0, obj, 40);
        assert!(!first.cache_hit);
        let second = l.charge_access(1, obj, 40);
        assert!(second.cache_hit);
        assert_eq!(l.job_metrics(0).attributed_bytes, 40.0);
        assert_eq!(l.job_metrics(1).attributed_bytes, 0.0);
        assert_eq!(l.job_metrics(1).attributed_accesses, 1.0);
        assert_eq!(l.metrics().cache_accesses, 2);
        assert_eq!(l.metrics().cache_misses, 1);
    }

    #[test]
    fn compute_charges_job_and_global() {
        let mut l = ledger();
        l.charge_compute(1, ProcessStats { vertex_ops: 3, edge_ops: 7 });
        assert_eq!(l.job_metrics(1).vertex_ops, 3);
        assert_eq!(l.job_metrics(1).edge_ops, 7);
        assert_eq!(l.metrics().vertex_ops, 3);
        assert_eq!(l.metrics().edge_ops, 7);
        assert_eq!(l.job_metrics(0).vertex_ops, 0);
    }

    #[test]
    fn evict_job_clears_only_that_job() {
        let mut l = ledger();
        l.charge_access(0, CacheObject::PrivateTable { job: 0, pid: 1 }, 10);
        l.charge_access(1, CacheObject::PrivateTable { job: 1, pid: 1 }, 10);
        l.evict_job(0);
        let h = l.hierarchy();
        assert!(!h.in_cache(&CacheObject::PrivateTable { job: 0, pid: 1 }));
        assert!(h.in_cache(&CacheObject::PrivateTable { job: 1, pid: 1 }));
    }

    #[test]
    fn out_of_range_job_metrics_default() {
        let l = ledger();
        assert_eq!(l.job_metrics(99), JobMetrics::default());
    }

    #[test]
    fn timings_record_once_and_expose_wait_and_latency() {
        let mut l = ledger();
        assert_eq!(l.job_timing(0), None, "no timing before admission");
        l.record_admission(0, 1.0, 3.5);
        let t = l.job_timing(0).unwrap();
        assert_eq!(t.wait(), 2.5);
        assert_eq!(t.latency(), None, "still running");
        l.record_completion(0, 10.0);
        l.record_completion(0, 99.0); // idempotent: first completion sticks
        let t = l.job_timing(0).unwrap();
        assert_eq!(t.completed, Some(10.0));
        assert_eq!(t.latency(), Some(9.0));
        // Untimed and out-of-range jobs stay None.
        l.record_completion(1, 5.0);
        assert_eq!(l.job_timing(1), None);
        assert_eq!(l.job_timing(42), None);
    }

    #[test]
    fn spill_fetches_price_disk_and_stay_lane_attributed() {
        let mut l = ledger();
        let obj = CacheObject::Structure { pid: 0, version: 0 };
        l.charge_access_on(1, 0, obj, 40);
        let disk_before = l.metrics().bytes_disk_to_mem;
        l.charge_spill_fetch(1, 0, 25);
        // Spill re-fetches are disk traffic on the lane, attributed to
        // the job, and separately visible as spill bytes.
        assert_eq!(l.metrics().bytes_disk_to_mem, disk_before + 25);
        assert_eq!(l.shard_fetch_bytes()[1], 40 + 25);
        assert_eq!(l.spill_fetch_bytes(), &[0, 25]);
        assert_eq!(l.job_metrics(0).attributed_bytes, 65.0);
        // Cache counters untouched: a spill round-trip is not an access.
        assert_eq!(l.metrics().cache_accesses, 1);
    }

    #[test]
    fn cross_shard_bytes_count_traffic_off_the_home_lane() {
        let mut l = ledger();
        // Job 0: 60 bytes on lane 0 (home), 10 on lane 2.
        l.charge_access_on(0, 0, CacheObject::Structure { pid: 0, version: 0 }, 60);
        l.charge_access_on(2, 0, CacheObject::Structure { pid: 2, version: 0 }, 10);
        // Job 1: everything on one lane — no cross traffic.
        l.charge_access_on(1, 1, CacheObject::Structure { pid: 1, version: 0 }, 50);
        assert_eq!(l.job_fetch_by_lane(0), &[60, 0, 10]);
        assert_eq!(l.job_fetch_by_lane(1), &[0, 50]);
        assert_eq!(l.job_fetch_by_lane(42), &[] as &[u64]);
        assert_eq!(l.cross_shard_fetch_bytes(), 10);
    }

    #[test]
    fn shard_lanes_attribute_only_disk_traffic() {
        let mut l = ledger();
        let a = CacheObject::Structure { pid: 0, version: 0 };
        let b = CacheObject::Structure { pid: 1, version: 0 };
        // Cold: both go to disk, on different lanes.
        l.charge_access_on(0, 0, a, 40);
        l.charge_access_on(2, 0, b, 30);
        assert_eq!(l.shard_fetch_bytes(), &[40, 0, 30]);
        // Warm re-access on lane 2: cache hit, no disk, lane unchanged.
        l.charge_access_on(2, 1, a, 40);
        assert_eq!(l.shard_fetch_bytes(), &[40, 0, 30]);
        // Global metrics agree with the plain charging path.
        assert_eq!(l.metrics().bytes_disk_to_mem, 70);
    }
}
