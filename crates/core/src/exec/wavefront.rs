//! The pipelined Load–Trigger–Push round executor.
//!
//! One round executes a scheduler-planned *wavefront* of slots:
//!
//! 1. **Load** — each planned slot's structure partition and private
//!    tables are charged through the [`ChargeLedger`](super::ChargeLedger)
//!    in plan order, structures staying pinned for the whole round.
//! 2. **Trigger** — every slot's chunk tasks drain through one shared
//!    [`TaskPool`] pass, so cores finishing one slot's jobs immediately
//!    pick up the next slot's chunks instead of idling behind a straggler.
//! 3. **Push** — each job whose iteration completed synchronizes replicas
//!    and advances, and the slot planner is patched incrementally.
//!
//! With a wavefront of width 1 the executor degenerates to the original
//! single-slot engine: identical access sequence, identical batching,
//! identical per-batch chunk drains — bit-for-bit the legacy behavior.
//! With width > 1 the modeled round time accounts for the pipelining:
//! slot *i+1*'s Load (serialized on the shared memory channel) overlaps
//! slot *i*'s Trigger (on the worker cores), a classic two-machine
//! flow shop whose makespan [`flowshop_makespan`] computes exactly.

use cgraph_memsim::{CacheObject, Metrics};

use crate::engine::Engine;
use crate::exec::planner::SlotKey;
use crate::job::{JobRuntime, ProcessStats};
use crate::workers::TaskPool;

/// Makespan of a fixed-sequence two-stage pipeline: stage-one times
/// `loads` (serialized, e.g. the shared memory channel) feed stage-two
/// times `triggers` (a distinct resource, e.g. the worker cores), with
/// item `i+1`'s first stage overlapping item `i`'s second stage.
///
/// `C = max_j (Σ_{i≤j} load_i + Σ_{i≥j} trigger_i)` — for a single item
/// this is `load + trigger`, i.e. no overlap, matching the linear model.
pub fn flowshop_makespan(loads: &[f64], triggers: &[f64]) -> f64 {
    debug_assert_eq!(loads.len(), triggers.len());
    let mut best = 0.0f64;
    let mut prefix = 0.0f64;
    let mut suffix: f64 = triggers.iter().sum();
    for (load, trigger) in loads.iter().zip(triggers) {
        prefix += load;
        best = best.max(prefix + suffix);
        suffix -= trigger;
    }
    best
}

impl Engine {
    /// Executes one round over the planned slots (indices into the slot
    /// planner's ordered view) and returns the round's modeled seconds
    /// under the pipeline cost model.
    pub(crate) fn exec_round(&mut self, picks: &[usize]) -> f64 {
        let workers = self.config.workers;
        let batch_size = workers.max(1);
        let cost = self.config.cost;
        // Width 1 must reproduce the legacy engine bit-for-bit, including
        // its per-batch chunk drains (which fix the thread-pool task sets);
        // wider waves pool every slot's tasks into one drain.
        let pipelined = picks.len() > 1;

        let slots: Vec<(SlotKey, Vec<usize>)> = picks
            .iter()
            .map(|&idx| {
                let (key, jobs) = self.planner.slot(idx);
                (key, jobs.to_vec())
            })
            .collect();

        let mut load_secs = vec![0.0f64; slots.len()];
        let mut trigger_secs = vec![0.0f64; slots.len()];
        let mut results: Vec<(usize, usize, ProcessStats)> = Vec::new();
        let mut pool = TaskPool::new();

        // --- Load (and, at width 1, per-batch Trigger) ---
        for (si, ((pid, version), job_idxs)) in slots.iter().enumerate() {
            let (pid, version) = (*pid, *version);
            let before = *self.ledger.metrics();
            let structure = CacheObject::Structure { pid, version };
            let sbytes = self.jobs[job_idxs[0]]
                .runtime
                .view()
                .partition(pid)
                .structure_bytes();
            let mut pinned = false;
            for batch in job_idxs.chunks(batch_size) {
                // Each job in the batch touches the structure partition;
                // after the first touch it is pinned resident for the
                // whole round (§3.2.3).
                for &j in batch {
                    self.ledger.charge_access(j, structure, sbytes);
                    if !pinned {
                        self.ledger.pin(&structure);
                        pinned = true;
                    }
                }
                // Load the batch's private tables (structure stays
                // pinned; only job-specific tables rotate).
                for &j in batch {
                    let tbytes = self.jobs[j].runtime.private_table_bytes(pid);
                    self.ledger.charge_access(
                        j,
                        CacheObject::PrivateTable { job: j as u32, pid },
                        tbytes,
                    );
                }
                let unprocessed: Vec<u64> = batch
                    .iter()
                    .map(|&j| self.jobs[j].runtime.unprocessed_vertices(pid))
                    .collect();
                let runtimes: Vec<(usize, &dyn JobRuntime)> =
                    batch.iter().map(|&j| (j, &*self.jobs[j].runtime)).collect();
                pool.plan_slot_batch(
                    si,
                    pid,
                    &runtimes,
                    &unprocessed,
                    workers.max(batch.len()),
                    self.config.straggler_split,
                );
                if !pipelined {
                    results.extend(pool.run(workers));
                }
            }
            // Trigger compute has not been charged yet, so this interval
            // is pure data access: the slot's Load leg.
            let delta = self.ledger.metrics().since(&before);
            (load_secs[si], _) = cost.stage_seconds(&delta, workers);
        }

        // --- Trigger: drain every slot's tasks in one scoped pass ---
        if pipelined {
            results = pool.run(workers);
        }
        drop(pool);
        for (si, j, stats) in results {
            self.ledger.charge_compute(j, stats);
            let as_metrics = Metrics {
                vertex_ops: stats.vertex_ops,
                edge_ops: stats.edge_ops,
                ..Metrics::default()
            };
            trigger_secs[si] += cost.stage_seconds(&as_metrics, workers).1;
        }
        for ((pid, version), job_idxs) in &slots {
            for &j in job_idxs {
                self.jobs[j].runtime.mark_processed(*pid);
                self.planner.note_processed(j, (*pid, *version));
            }
            self.ledger
                .unpin(&CacheObject::Structure { pid: *pid, version: *version });
        }
        // Slot keys are distinct, so one unpin per slot must release the
        // whole wave's pinned footprint (pins are reference-counted).
        debug_assert_eq!(
            self.ledger.hierarchy().pinned_bytes(),
            0,
            "wavefront round leaked structure pins"
        );

        // --- Push for every job that finished its iteration ---
        let push_before = *self.ledger.metrics();
        let mut push_jobs: Vec<usize> = slots
            .iter()
            .flat_map(|(_, jobs)| jobs.iter().copied())
            .collect();
        push_jobs.sort_unstable();
        push_jobs.dedup();
        for j in push_jobs {
            let skip = {
                let entry = &self.jobs[j];
                entry.done || entry.runtime.is_converged() || !entry.runtime.iteration_complete()
            };
            if skip {
                if self.jobs[j].runtime.is_converged() {
                    self.finish_job(j);
                }
                continue;
            }
            let stats = self.jobs[j].runtime.push_and_advance();
            let runtime = &*self.jobs[j].runtime;
            self.ledger
                .charge_push(j, runtime, &stats, self.config.sync);
            self.ledger.bump_iterations(j);
            if stats.converged {
                self.finish_job(j);
            } else {
                let runtime = &*self.jobs[j].runtime;
                self.planner.refresh_job(j, runtime);
            }
        }
        let push_delta = self.ledger.metrics().since(&push_before);
        let (push_access, push_compute) = cost.stage_seconds(&push_delta, workers);

        flowshop_makespan(&load_secs, &trigger_secs) + push_access + push_compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_item_flowshop_is_linear() {
        assert_eq!(flowshop_makespan(&[3.0], &[2.0]), 5.0);
    }

    #[test]
    fn empty_flowshop_is_zero() {
        assert_eq!(flowshop_makespan(&[], &[]), 0.0);
    }

    #[test]
    fn pipeline_overlaps_but_never_beats_bottleneck() {
        let loads = [2.0, 2.0, 2.0];
        let triggers = [1.0, 1.0, 1.0];
        let c = flowshop_makespan(&loads, &triggers);
        // Sequential would be 9; the pipeline hides trigger time behind
        // loads except the last: 2+2+2+1 = 7.
        assert!((c - 7.0).abs() < 1e-12, "got {c}");
        // Lower bounds: each stage's total plus the other's minimum.
        assert!(c >= 6.0 + 1.0);
    }

    #[test]
    fn trigger_bound_pipeline() {
        let c = flowshop_makespan(&[1.0, 1.0], &[5.0, 5.0]);
        // First load, then triggers dominate: 1 + 5 + 5 = 11.
        assert!((c - 11.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn flowshop_at_most_linear_sum() {
        let loads = [0.5, 1.5, 0.25, 2.0];
        let triggers = [1.0, 0.5, 3.0, 0.1];
        let linear: f64 = loads.iter().sum::<f64>() + triggers.iter().sum::<f64>();
        let c = flowshop_makespan(&loads, &triggers);
        assert!(c <= linear + 1e-12);
        assert!(c >= loads.iter().sum::<f64>());
        assert!(c >= triggers.iter().sum::<f64>());
    }
}
