//! The pipelined Load–Trigger–Push round executor.
//!
//! One round executes a scheduler-planned *wavefront* of slots:
//!
//! 1. **Load** — each planned slot's structure partition and private
//!    tables are charged through the [`ChargeLedger`](super::ChargeLedger)
//!    in plan order, structures staying pinned for the whole round.  With
//!    an active [`PrefetchQueue`](super::PrefetchQueue) the wave's
//!    stage-one probe scans run ahead of the serial charge loop, and the
//!    slot's disk fetch is priced on its snapshot-store shard's I/O lane
//!    rather than the shared channel.
//! 2. **Trigger** — every slot's chunk tasks drain through a shared
//!    worker pass, so cores finishing one slot's jobs immediately pick
//!    up the next slot's chunks instead of idling behind a straggler.
//! 3. **Push** — each job whose iteration completed synchronizes replicas
//!    and advances, and the slot planner is patched incrementally.
//!
//! # Execution paths
//!
//! With a wavefront of width 1 the executor degenerates to the original
//! single-slot engine: identical access sequence, identical batching,
//! identical per-batch chunk drains — bit-for-bit the legacy behavior.
//! Wider waves run on one of two executors selected by
//! `EngineConfig::io_workers`:
//!
//! * **Fork-join** (`io_workers = 0`, the default): all slots charge
//!   serially, then one scoped [`TaskPool`] pass drains every chunk.
//! * **Concurrent pipeline** (`io_workers ≥ 1`): the actor-style crew
//!   of [`super::crew`].  Long-lived per-shard I/O worker threads own
//!   their lanes' fetch queues (bounded `sync_channel`s); the main
//!   thread dispatches slot fetches in plan order — never more than
//!   `prefetch_depth + 1` slots beyond the installing slot, the modeled
//!   release constraint enforced for real — and I/O workers run each
//!   slot's probe scans before streaming the completed load back over
//!   the bounded completion channel.  The main-thread install stage
//!   reorders completions back into plan order, runs the ledger charge
//!   loop, and feeds chunk tasks to the persistent trigger workers.
//!
//! # Why determinism survives the concurrency
//!
//! Every merge point is ordered or commutative:
//!
//! * Probe scans are pure reads of state only mutated at the round tail
//!   (after all fetches and chunks drain), so their values are
//!   schedule-independent.
//! * Ledger charging — the only mutation that decides modeled times and
//!   traffic counters — happens solely on the main thread, in plan
//!   order, behind the reorder buffer: the exact serial sequence.
//! * Chunk statistics accumulate as `u64` additions (commutative,
//!   exact) per pooled entry; the `f64` stage-time conversion happens
//!   afterwards on the main thread in entry order, reproducing the
//!   serial float-accumulation order bit-for-bit.
//! * Vertex-state folds inside `process_chunk` use the same per-
//!   partition locks and accumulator algebra as the fork-join path —
//!   chunk-level parallelism was already result-neutral, and the crew
//!   only changes *when* chunks run, not how their results merge.
//!
//! # Modeled time
//!
//! With width > 1 and `prefetch_depth = 0` the modeled round time is the
//! two-machine flow shop of PR 1 ([`flowshop_makespan`]): slot *i+1*'s
//! fused Load overlapping slot *i*'s Trigger.  With `prefetch_depth > 0`
//! Load splits into disk-fetch (per-shard lanes, issued up to `depth`
//! slots early) and memory-install (shared channel), and the round is
//! priced by the three-stage
//! [`pipeline_makespan`](super::prefetch::pipeline_makespan).  The
//! executor choice never changes modeled figures — both paths drive the
//! ledger identically.

use std::sync::Arc;

use cgraph_memsim::{CacheObject, Metrics};

use crate::engine::Engine;
use crate::exec::crew::{Dispatch, ExecCrew, ExecError, FetchMsg};
use crate::exec::planner::SlotKey;
use crate::job::{JobRuntime, ProcessStats};
use crate::obs::{EventKind, NONE};
use crate::workers::{plan_chunks_into, ChunkTask, ProbeTask, TaskPool};

/// Makespan of a fixed-sequence two-stage pipeline: stage-one times
/// `loads` (serialized, e.g. the shared memory channel) feed stage-two
/// times `triggers` (a distinct resource, e.g. the worker cores), with
/// item `i+1`'s first stage overlapping item `i`'s second stage.
///
/// `C = max_j (Σ_{i≤j} load_i + Σ_{i≥j} trigger_i)` — for a single item
/// this is `load + trigger`, i.e. no overlap, matching the linear model.
pub fn flowshop_makespan(loads: &[f64], triggers: &[f64]) -> f64 {
    debug_assert_eq!(loads.len(), triggers.len());
    let mut best = 0.0f64;
    let mut prefix = 0.0f64;
    let mut suffix: f64 = triggers.iter().sum();
    for (load, trigger) in loads.iter().zip(triggers) {
        prefix += load;
        best = best.max(prefix + suffix);
        suffix -= trigger;
    }
    best
}

/// Reusable per-round scratch: the wave description, the stage-time
/// vectors, and the concurrent executor's recycled channel payloads.
/// Kept on the [`Engine`] across rounds so the hot loop stops recloning
/// job lists and rebuilding batch vectors every round — after the first
/// round at a given wave shape, a round allocates nothing here (the
/// fetch/completion messages and their buffers round-trip through
/// `fetch_pool` instead of being reallocated per round).
#[derive(Default)]
pub(crate) struct RoundBuffers {
    /// Planned slots as `(key, start, end)` ranges into `jobs`.
    slots: Vec<(SlotKey, usize, usize)>,
    /// Every planned slot's interested jobs, flattened.
    jobs: Vec<usize>,
    /// Stage-one probe tasks (fork-join active prefetch only).
    probes: Vec<ProbeTask>,
    /// Probe results aligned with `jobs` (fork-join active prefetch only).
    unprocessed: Vec<u64>,
    /// Per-slot fused Load seconds (two-stage model).
    load: Vec<f64>,
    /// Per-slot disk-fetch seconds (three-stage model).
    fetch: Vec<f64>,
    /// Per-slot memory-install seconds (three-stage model).
    install: Vec<f64>,
    /// Per-slot Trigger seconds.
    trigger: Vec<f64>,
    /// Per-slot stage-one I/O lane.
    lanes: Vec<usize>,
    /// Deduplicated jobs due a Push check this round.
    push_jobs: Vec<usize>,
    /// One batch's unprocessed counts (straggler detection).
    batch_unprocessed: Vec<u64>,
    /// Concurrent path: reorder buffer for completed loads.
    ready: Vec<Option<FetchMsg>>,
    /// Concurrent path: recycled fetch/completion message payloads.
    fetch_pool: Vec<FetchMsg>,
    /// Concurrent path: pooled `(slot, job)` entry origins, in the
    /// fork-join executor's exact entry order.
    origins: Vec<(usize, usize)>,
    /// Concurrent path: per-entry chunk statistics, aligned with
    /// `origins`.
    stats: Vec<ProcessStats>,
    /// Concurrent path: one batch's planned chunk tasks.
    chunk_scratch: Vec<ChunkTask>,
}

impl RoundBuffers {
    fn begin(&mut self, nslots: usize) {
        self.slots.clear();
        self.jobs.clear();
        self.probes.clear();
        self.unprocessed.clear();
        self.load.clear();
        self.fetch.clear();
        self.install.clear();
        self.trigger.clear();
        self.trigger.resize(nslots, 0.0);
        self.lanes.clear();
        self.push_jobs.clear();
        self.batch_unprocessed.clear();
        self.origins.clear();
        self.stats.clear();
    }
}

impl Engine {
    /// Executes one round over the planned slots (indices into the slot
    /// planner's ordered view) and returns the round's modeled seconds
    /// under the pipeline cost model.
    pub(crate) fn exec_round(&mut self, picks: &[usize]) -> f64 {
        // Width 1 must reproduce the legacy engine bit-for-bit, so only
        // multi-slot waves may take the concurrent executor.
        if picks.len() > 1 && self.config.io_workers > 0 {
            self.exec_round_concurrent(picks)
        } else {
            self.exec_round_forkjoin(picks)
        }
    }

    /// Collects the planned wave into the round buffers.
    fn collect_wave(&mut self, picks: &[usize], round: &mut RoundBuffers) {
        round.begin(picks.len());
        for &idx in picks {
            let (key, jobs) = self.planner.slot(idx);
            let start = round.jobs.len();
            round.jobs.extend_from_slice(jobs);
            round.slots.push((key, start, round.jobs.len()));
        }
    }

    /// The classic fork-join executor: serial charge loop, then one
    /// scoped [`TaskPool`] drain (per batch at width 1).
    fn exec_round_forkjoin(&mut self, picks: &[usize]) -> f64 {
        let workers = self.config.workers;
        let batch_size = workers.max(1);
        let cost = self.config.cost;
        // Width 1 must reproduce the legacy engine bit-for-bit, including
        // its per-batch chunk drains (which fix the thread-pool task sets);
        // wider waves pool every slot's tasks into one drain.
        let pipelined = picks.len() > 1;
        // The prefetch queue only engages on multi-slot waves: a single
        // slot has nothing to overlap, and `depth = 0` must stay on the
        // two-stage path exactly.
        let prefetching = pipelined && self.prefetch.is_active();

        let mut round = std::mem::take(&mut self.round);
        self.collect_wave(picks, &mut round);

        // --- Prefetch: issue the wave's stage-one probe scans through
        // the worker pool in one parallel drain, before the serial charge
        // loop consumes the counts batch by batch. ---
        if prefetching {
            for &((pid, _), start, end) in &round.slots {
                for job_slot in start..end {
                    round.probes.push(ProbeTask { job_slot, pid });
                }
            }
            let runtimes: Vec<&dyn JobRuntime> =
                round.jobs.iter().map(|&j| &*self.jobs[j].runtime).collect();
            self.prefetch
                .probe_wave(workers, &runtimes, &round.probes, &mut round.unprocessed);
        }

        let mut results: Vec<(usize, usize, ProcessStats)> = Vec::new();
        let mut pool = TaskPool::new();
        let mut batch_rt: Vec<(usize, &dyn JobRuntime)> = Vec::new();

        // --- Load (and, at width 1, per-batch Trigger) ---
        for (si, &((pid, version), start, end)) in round.slots.iter().enumerate() {
            let slot_t0 = self.rec.start();
            let before = *self.ledger.metrics();
            let structure = CacheObject::Structure { pid, version };
            let sbytes = self.jobs[round.jobs[start]]
                .runtime
                .view()
                .partition(pid)
                .structure_bytes();
            let lane = self.prefetch.lane_of(pid);
            round.lanes.push(lane);
            let spills_possible = self.store.has_spills();
            let mut pinned = false;
            let mut off = start;
            while off < end {
                let batch_end = (off + batch_size).min(end);
                // Each job in the batch touches the structure partition;
                // after the first touch it is pinned resident for the
                // whole round (§3.2.3).
                for &j in &round.jobs[off..batch_end] {
                    let outcome = self.ledger.charge_access_on(lane, j, structure, sbytes);
                    // Capacity-spilled snapshot state: when the fetch
                    // actually reaches disk *and* this job's view
                    // resolves the partition through a spilled record,
                    // the load pays one extra re-fetch from (modeled)
                    // spill storage on the owning lane — inside the
                    // Load interval, so the pipeline's fetch stage
                    // prices it.  Cache-resident structures never pay.
                    if spills_possible
                        && outcome.bytes_from_disk > 0
                        && self.jobs[j].runtime.view().partition_spilled(pid)
                    {
                        self.ledger.charge_spill_fetch(lane, j, sbytes);
                    }
                    if !pinned {
                        self.ledger.pin(&structure);
                        pinned = true;
                    }
                }
                // Load the batch's private tables (structure stays
                // pinned; only job-specific tables rotate).
                for &j in &round.jobs[off..batch_end] {
                    let tbytes = self.jobs[j].runtime.private_table_bytes(pid);
                    self.ledger.charge_access_on(
                        lane,
                        j,
                        CacheObject::PrivateTable { job: j as u32, pid },
                        tbytes,
                    );
                }
                round.batch_unprocessed.clear();
                if prefetching {
                    round
                        .batch_unprocessed
                        .extend_from_slice(&round.unprocessed[off..batch_end]);
                } else {
                    round.batch_unprocessed.extend(
                        round.jobs[off..batch_end]
                            .iter()
                            .map(|&j| self.jobs[j].runtime.unprocessed_vertices(pid)),
                    );
                }
                batch_rt.clear();
                batch_rt.extend(
                    round.jobs[off..batch_end]
                        .iter()
                        .map(|&j| (j, &*self.jobs[j].runtime)),
                );
                pool.plan_slot_batch(
                    si,
                    pid,
                    &batch_rt,
                    &round.batch_unprocessed,
                    workers.max(batch_end - off),
                    self.config.straggler_split,
                );
                if !pipelined {
                    results.extend(pool.run(workers));
                }
                off = batch_end;
            }
            // Trigger compute has not been charged yet, so this interval
            // is pure data access: the slot's Load leg — fused for the
            // two-stage model, split disk/memory for the three-stage one.
            let delta = self.ledger.metrics().since(&before);
            if prefetching {
                let stages = cost.stage_seconds(&delta, workers);
                round.fetch.push(stages.fetch);
                round.install.push(stages.install);
            } else {
                round.load.push(cost.access_seconds(&delta));
            }
            // Fork-join slots have no separate fetch leg, so the whole
            // charge loop (plus per-batch chunk drains at width 1)
            // reports as one Install span.
            self.rec.complete(
                EventKind::Install,
                NONE,
                pid,
                self.round_no,
                slot_t0,
                (end - start) as u64,
            );
        }

        // --- Trigger: drain every slot's tasks in one scoped pass ---
        if pipelined {
            results = pool.run(workers);
        }
        drop(pool);
        drop(batch_rt);
        for (si, j, stats) in results {
            self.ledger.charge_compute(j, stats);
            let as_metrics = Metrics {
                vertex_ops: stats.vertex_ops,
                edge_ops: stats.edge_ops,
                ..Metrics::default()
            };
            round.trigger[si] += cost.compute_seconds(&as_metrics) / workers.max(1) as f64;
        }
        self.finish_round(round, prefetching)
    }

    /// The concurrent executor: per-shard I/O workers stream completed
    /// loads over bounded channels into the main-thread install stage,
    /// which feeds the persistent trigger workers.  Charge sequence,
    /// chunk plan, and float-accumulation order replicate
    /// [`Self::exec_round_forkjoin`] exactly — see the module docs.
    fn exec_round_concurrent(&mut self, picks: &[usize]) -> f64 {
        let workers = self.config.workers;
        let cost = self.config.cost;
        let prefetching = self.prefetch.is_active();

        let mut round = std::mem::take(&mut self.round);
        self.collect_wave(picks, &mut round);
        let mut crew = self.ensure_crew();

        match self.pump_concurrent_round(&mut round, &mut crew) {
            Ok(()) => {
                // --- Trigger merge: charge compute in pooled-entry
                // order (the fork-join order). ---
                for (idx, stats) in round.stats.iter().enumerate() {
                    let (si, j) = round.origins[idx];
                    self.ledger.charge_compute(j, *stats);
                    let as_metrics = Metrics {
                        vertex_ops: stats.vertex_ops,
                        edge_ops: stats.edge_ops,
                        ..Metrics::default()
                    };
                    round.trigger[si] += cost.compute_seconds(&as_metrics) / workers.max(1) as f64;
                }
                self.crew = Some(crew);
                self.finish_round(round, prefetching)
            }
            Err(fault) => {
                // Graceful shutdown instead of a panic or a hang:
                // dropping the crew closes every channel and joins the
                // surviving workers; the typed error parks on the
                // engine, which refuses further rounds (the round's
                // partial ledger state is unreachable behind the fault).
                drop(crew);
                self.round = round;
                self.fault = Some(fault);
                0.0
            }
        }
    }

    /// The failable half of the concurrent round: fetch dispatch, the
    /// ordered install loop, and the trigger drain.  Any dead worker or
    /// disconnected channel surfaces here as a typed [`ExecError`].
    fn pump_concurrent_round(
        &mut self,
        round: &mut RoundBuffers,
        crew: &mut ExecCrew,
    ) -> Result<(), ExecError> {
        let nslots = round.slots.len();
        crew.begin_round(round.jobs.len());
        round.ready.clear();
        round.ready.resize_with(nslots, || None);
        let window = crew.window();

        let mut installed = 0usize;
        let mut next_dispatch = 0usize;
        let mut stalled: Option<FetchMsg> = None;
        while installed < nslots {
            // Dispatch fetches in plan order, at most `window` slots
            // beyond the installing slot, without ever blocking on a
            // full fetch queue (deadlock freedom at capacity 1).
            while next_dispatch < nslots && next_dispatch < installed + window {
                let msg = match stalled.take() {
                    Some(msg) => msg,
                    None => {
                        let ((pid, _), start, end) = round.slots[next_dispatch];
                        let mut msg = round.fetch_pool.pop().unwrap_or_default();
                        msg.seq = next_dispatch;
                        msg.pid = pid;
                        msg.jobs.clear();
                        msg.jobs.extend(
                            round.jobs[start..end]
                                .iter()
                                .map(|&j| (j, Arc::clone(&self.jobs[j].runtime))),
                        );
                        msg
                    }
                };
                let lane = self.prefetch.lane_of(msg.pid);
                let issue_pid = msg.pid;
                match crew.try_dispatch(lane, msg) {
                    Dispatch::Sent => {
                        self.rec.instant(
                            EventKind::FetchIssue,
                            NONE,
                            issue_pid,
                            self.round_no,
                            next_dispatch as u64,
                        );
                        next_dispatch += 1;
                    }
                    Dispatch::Full(msg) => {
                        if self.rec.on() {
                            self.obs.registry().counter("fetch_dispatch_stalls").inc();
                        }
                        stalled = Some(msg);
                        break;
                    }
                    Dispatch::Dead(err) => return Err(err),
                }
            }
            // Install strictly in plan order; block only on the
            // completion channel, whose producers never wait on us.
            if round.ready[installed].is_none() {
                let wait_t0 = self.rec.start();
                let msg = crew.recv_done()?;
                if self.rec.on() {
                    self.rec.complete(
                        EventKind::ReorderWait,
                        NONE,
                        msg.pid,
                        self.round_no,
                        wait_t0,
                        msg.seq as u64,
                    );
                    self.obs
                        .registry()
                        .histogram("reorder_wait_us")
                        .record(self.obs.now_ns().saturating_sub(wait_t0) / 1000);
                }
                let seq = msg.seq;
                debug_assert!(round.ready[seq].is_none(), "duplicate completion");
                round.ready[seq] = Some(msg);
                continue;
            }
            let mut msg = round.ready[installed].take().expect("checked above");
            let install_t0 = self.rec.start();
            self.install_slot(installed, &msg, round, crew);
            if self.rec.on() {
                let (_, start, end) = round.slots[installed];
                self.rec.complete(
                    EventKind::Install,
                    NONE,
                    msg.pid,
                    self.round_no,
                    install_t0,
                    (end - start) as u64,
                );
                self.obs
                    .registry()
                    .histogram("install_us")
                    .record(self.obs.now_ns().saturating_sub(install_t0) / 1000);
            }
            msg.jobs.clear();
            msg.counts.clear();
            round.fetch_pool.push(msg);
            installed += 1;
        }
        debug_assert!(stalled.is_none());
        if self.rec.on() {
            let r = self.obs.registry();
            r.histogram("chunk_tasks_per_round")
                .record(crew.outstanding() as u64);
            r.histogram("round_entries")
                .record(round.origins.len() as u64);
        }
        crew.finish_round(&mut round.stats)
    }

    /// Installs one completed load: the slot's ledger charge loop (the
    /// fork-join executor's exact sequence) plus chunk-task handoff to
    /// the crew's trigger workers.
    fn install_slot(
        &mut self,
        si: usize,
        msg: &FetchMsg,
        round: &mut RoundBuffers,
        crew: &mut ExecCrew,
    ) {
        let workers = self.config.workers;
        let batch_size = workers.max(1);
        let cost = self.config.cost;
        let prefetching = self.prefetch.is_active();
        let ((pid, version), start, end) = round.slots[si];
        debug_assert_eq!(pid, msg.pid);
        let before = *self.ledger.metrics();
        let structure = CacheObject::Structure { pid, version };
        let sbytes = self.jobs[round.jobs[start]]
            .runtime
            .view()
            .partition(pid)
            .structure_bytes();
        let lane = self.prefetch.lane_of(pid);
        round.lanes.push(lane);
        let spills_possible = self.store.has_spills();
        let mut pinned = false;
        let mut off = start;
        while off < end {
            let batch_end = (off + batch_size).min(end);
            for &j in &round.jobs[off..batch_end] {
                let outcome = self.ledger.charge_access_on(lane, j, structure, sbytes);
                if spills_possible
                    && outcome.bytes_from_disk > 0
                    && self.jobs[j].runtime.view().partition_spilled(pid)
                {
                    self.ledger.charge_spill_fetch(lane, j, sbytes);
                }
                if !pinned {
                    self.ledger.pin(&structure);
                    pinned = true;
                }
            }
            for &j in &round.jobs[off..batch_end] {
                let tbytes = self.jobs[j].runtime.private_table_bytes(pid);
                self.ledger.charge_access_on(
                    lane,
                    j,
                    CacheObject::PrivateTable { job: j as u32, pid },
                    tbytes,
                );
            }
            // The I/O worker already ran this slot's probe scans; their
            // values are position-aligned with the slot's job list.
            round.batch_unprocessed.clear();
            round
                .batch_unprocessed
                .extend_from_slice(&msg.counts[(off - start)..(batch_end - start)]);
            let base = round.origins.len();
            for &j in &round.jobs[off..batch_end] {
                round.origins.push((si, j));
            }
            plan_chunks_into(
                pid,
                &round.batch_unprocessed,
                workers.max(batch_end - off),
                self.config.straggler_split,
                &mut round.chunk_scratch,
            );
            for task in &round.chunk_scratch {
                let job = round.jobs[off + task.job_slot];
                crew.push_chunk(
                    base + task.job_slot,
                    pid,
                    task.chunk,
                    task.nchunks,
                    Arc::clone(&self.jobs[job].runtime),
                );
            }
            off = batch_end;
        }
        let delta = self.ledger.metrics().since(&before);
        if prefetching {
            let stages = cost.stage_seconds(&delta, workers);
            round.fetch.push(stages.fetch);
            round.install.push(stages.install);
        } else {
            round.load.push(cost.access_seconds(&delta));
        }
    }

    /// The round tail shared by both executors: mark the wave processed,
    /// run Push for every finished iteration, and price the round.
    fn finish_round(&mut self, mut round: RoundBuffers, prefetching: bool) -> f64 {
        let workers = self.config.workers;
        let cost = self.config.cost;
        for &((pid, version), start, end) in &round.slots {
            for &j in &round.jobs[start..end] {
                self.jobs[j].runtime.mark_processed(pid);
                self.planner.note_processed(j, (pid, version));
            }
            self.ledger.unpin(&CacheObject::Structure { pid, version });
        }
        // Slot keys are distinct, so one unpin per slot must release the
        // whole wave's pinned footprint (pins are reference-counted).
        debug_assert_eq!(
            self.ledger.hierarchy().pinned_bytes(),
            0,
            "wavefront round leaked structure pins"
        );

        // --- Push for every job that finished its iteration ---
        let push_t0 = self.rec.start();
        let push_before = *self.ledger.metrics();
        round.push_jobs.extend_from_slice(&round.jobs);
        round.push_jobs.sort_unstable();
        round.push_jobs.dedup();
        for idx in 0..round.push_jobs.len() {
            let j = round.push_jobs[idx];
            let skip = {
                let entry = &self.jobs[j];
                entry.done || entry.runtime.is_converged() || !entry.runtime.iteration_complete()
            };
            if skip {
                if self.jobs[j].runtime.is_converged() {
                    self.finish_job(j);
                }
                continue;
            }
            let stats = self.jobs[j].runtime.push_and_advance();
            let runtime = &*self.jobs[j].runtime;
            self.ledger
                .charge_push(j, runtime, &stats, self.config.sync);
            self.ledger.bump_iterations(j);
            if stats.converged {
                self.finish_job(j);
            } else {
                let runtime = &*self.jobs[j].runtime;
                self.planner.refresh_job(j, runtime);
            }
        }
        let push_delta = self.ledger.metrics().since(&push_before);
        let push_access = cost.access_seconds(&push_delta);
        let push_compute = cost.compute_seconds(&push_delta) / workers.max(1) as f64;
        if self.rec.on() {
            self.rec.complete(
                EventKind::Push,
                NONE,
                NONE,
                self.round_no,
                push_t0,
                round.push_jobs.len() as u64,
            );
            let r = self.obs.registry();
            r.counter("rounds").inc();
            r.histogram("wave_width").record(round.slots.len() as u64);
            r.histogram("push_us")
                .record(self.obs.now_ns().saturating_sub(push_t0) / 1000);
        }

        let wave = if prefetching {
            self.prefetch
                .makespan(&round.fetch, &round.install, &round.trigger, &round.lanes)
        } else {
            flowshop_makespan(&round.load, &round.trigger)
        };
        self.round = round;
        wave + push_access + push_compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_item_flowshop_is_linear() {
        assert_eq!(flowshop_makespan(&[3.0], &[2.0]), 5.0);
    }

    #[test]
    fn empty_flowshop_is_zero() {
        assert_eq!(flowshop_makespan(&[], &[]), 0.0);
    }

    #[test]
    fn pipeline_overlaps_but_never_beats_bottleneck() {
        let loads = [2.0, 2.0, 2.0];
        let triggers = [1.0, 1.0, 1.0];
        let c = flowshop_makespan(&loads, &triggers);
        // Sequential would be 9; the pipeline hides trigger time behind
        // loads except the last: 2+2+2+1 = 7.
        assert!((c - 7.0).abs() < 1e-12, "got {c}");
        // Lower bounds: each stage's total plus the other's minimum.
        assert!(c >= 6.0 + 1.0);
    }

    #[test]
    fn trigger_bound_pipeline() {
        let c = flowshop_makespan(&[1.0, 1.0], &[5.0, 5.0]);
        // First load, then triggers dominate: 1 + 5 + 5 = 11.
        assert!((c - 11.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn flowshop_at_most_linear_sum() {
        let loads = [0.5, 1.5, 0.25, 2.0];
        let triggers = [1.0, 0.5, 3.0, 0.1];
        let linear: f64 = loads.iter().sum::<f64>() + triggers.iter().sum::<f64>();
        let c = flowshop_makespan(&loads, &triggers);
        assert!(c <= linear + 1e-12);
        assert!(c >= loads.iter().sum::<f64>());
        assert!(c >= triggers.iter().sum::<f64>());
    }
}
