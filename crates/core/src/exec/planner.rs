//! Incremental maintenance of the pending-slot map.
//!
//! The original engine re-derived the full `(partition, version) → jobs`
//! map from every job's pending set at the top of every round — O(jobs ×
//! partitions) work per partition load — and then resolved the
//! scheduler's pick with an O(n) ordered-map walk.  The planner instead
//! applies the semi-naive delta idea: the slot map changes only when a
//! job's pending set changes, which happens at exactly three points
//! (submit, a partition getting processed, a Push recomputing the active
//! set), so those events patch the map in place and a round costs only
//! O(slots) to describe to the scheduler.

use std::collections::{BTreeMap, BTreeSet};

use cgraph_graph::{PartitionId, PlacementStats, ShardPlacement, VersionId};

use crate::job::JobRuntime;
use crate::scheduler::SlotInfo;

/// A loadable slot: one partition at one snapshot version.
pub type SlotKey = (PartitionId, VersionId);

/// Incrementally maintained map of pending slots to interested jobs.
///
/// Invariants mirrored from the legacy full rescan: slots are ordered by
/// `(partition, version)`, each slot's job list is ascending, and a slot
/// exists iff at least one live job has the partition pending.
#[derive(Default)]
pub struct SlotPlanner {
    slots: BTreeMap<SlotKey, Vec<usize>>,
    /// Per job: the slot keys it is currently registered under.
    job_slots: Vec<Vec<SlotKey>>,
    /// Per job: every partition the job has ever had pending — the
    /// observed co-access footprint the locality placer consumes
    /// (never cleared; retiring a job keeps its history).
    footprints: Vec<BTreeSet<PartitionId>>,
    /// Sorted slot keys, rebuilt lazily after mutations, giving the
    /// scheduler's indices O(1) resolution (plus one map lookup).
    index: Vec<SlotKey>,
    index_dirty: bool,
}

impl SlotPlanner {
    /// An empty planner.
    pub fn new() -> Self {
        SlotPlanner::default()
    }

    /// Registers a newly submitted job.  `active` is false for jobs that
    /// converged at submission (they never contribute slots).
    pub fn track_job(&mut self, job: usize, runtime: &dyn JobRuntime, active: bool) {
        debug_assert_eq!(job, self.job_slots.len(), "jobs must be tracked in order");
        self.job_slots.push(Vec::new());
        self.footprints.push(BTreeSet::new());
        if active {
            self.add_job_slots(job, runtime.pending_slots());
        }
    }

    /// Re-derives one job's slots after its pending set changed wholesale
    /// (a Push recomputed the active set).  A converged job simply ends
    /// up registered nowhere.
    pub fn refresh_job(&mut self, job: usize, runtime: &dyn JobRuntime) {
        self.remove_job_slots(job);
        self.add_job_slots(job, runtime.pending_slots());
    }

    /// Removes every registration of a finished job.
    pub fn retire_job(&mut self, job: usize) {
        self.remove_job_slots(job);
    }

    /// Records that `job` processed the partition of `key` this
    /// iteration: the job leaves that slot; the slot disappears when its
    /// last job leaves.
    pub fn note_processed(&mut self, job: usize, key: SlotKey) {
        if let Some(pos) = self.job_slots[job].iter().position(|&k| k == key) {
            self.job_slots[job].swap_remove(pos);
        }
        if let Some(jobs) = self.slots.get_mut(&key) {
            if let Ok(pos) = jobs.binary_search(&job) {
                jobs.remove(pos);
            }
            if jobs.is_empty() {
                self.slots.remove(&key);
            }
            self.index_dirty = true;
        }
    }

    /// Whether no slot is pending.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of pending slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// The slot at `idx` in `(partition, version)` order: its key and its
    /// interested jobs (ascending).  Indices come from the scheduler's
    /// plan over [`infos`](Self::infos).
    pub fn slot(&mut self, idx: usize) -> (SlotKey, &[usize]) {
        self.rebuild_index();
        let key = self.index[idx];
        (key, self.slots.get(&key).expect("indexed slot exists"))
    }

    /// Describes every pending slot to the scheduler, in key order —
    /// the same `SlotInfo` the legacy full rescan produced.  `shards`
    /// is the engine's stage-one lane count and `placement` its
    /// partition→lane assignment: each slot carries its lane so the
    /// scheduler can interleave shards when priorities tie.
    pub fn infos(
        &mut self,
        runtimes: &[&dyn JobRuntime],
        shards: usize,
        placement: &ShardPlacement,
    ) -> Vec<SlotInfo> {
        self.rebuild_index();
        let shards = shards.max(1);
        self.slots
            .iter()
            .map(|(&(pid, version), jobs)| {
                let part = runtimes[jobs[0]].view().partition(pid);
                let avg_change = jobs
                    .iter()
                    .map(|&j| runtimes[j].partition_change(pid))
                    .sum::<f64>()
                    / jobs.len() as f64;
                SlotInfo {
                    pid,
                    version,
                    shard: placement.shard_of(pid, shards),
                    num_jobs: jobs.len(),
                    avg_degree: part.avg_degree(),
                    avg_change,
                }
            })
            .collect()
    }

    /// Every pending slot's interested-job list, in the same key order
    /// as [`infos`](Self::infos) — the whole-wave overlap input of the
    /// lookahead scheduler.
    pub fn slot_job_lists(&mut self) -> Vec<&[usize]> {
        self.rebuild_index();
        self.slots.values().map(Vec::as_slice).collect()
    }

    /// Every tracked job's observed partition footprint (ascending,
    /// retired jobs included) — the co-access record
    /// [`ShardPlacement::locality`](cgraph_graph::ShardPlacement::locality)
    /// consumes.  Jobs that never had a pending slot are skipped.
    pub fn job_footprints(&self) -> Vec<Vec<PartitionId>> {
        self.footprints
            .iter()
            .filter(|fp| !fp.is_empty())
            .map(|fp| fp.iter().copied().collect())
            .collect()
    }

    fn add_job_slots(&mut self, job: usize, keys: Vec<SlotKey>) {
        for key in keys {
            let jobs = self.slots.entry(key).or_default();
            if let Err(pos) = jobs.binary_search(&job) {
                jobs.insert(pos, job);
            }
            self.footprints[job].insert(key.0);
            self.job_slots[job].push(key);
        }
        self.index_dirty = true;
    }

    fn remove_job_slots(&mut self, job: usize) {
        let keys = std::mem::take(&mut self.job_slots[job]);
        for key in keys {
            if let Some(jobs) = self.slots.get_mut(&key) {
                if let Ok(pos) = jobs.binary_search(&job) {
                    jobs.remove(pos);
                }
                if jobs.is_empty() {
                    self.slots.remove(&key);
                }
            }
        }
        self.index_dirty = true;
    }

    fn rebuild_index(&mut self) {
        if self.index_dirty {
            self.index.clear();
            self.index.extend(self.slots.keys().copied());
            self.index_dirty = false;
        }
    }
}

impl PlacementStats for SlotPlanner {
    fn footprints(&self) -> Vec<Vec<PartitionId>> {
        self.job_footprints()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TypedJob;
    use crate::program::{VertexInfo, VertexProgram};
    use cgraph_graph::snapshot::SnapshotStore;
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Partitioner, Weight};
    use std::sync::Arc;

    struct Bfs;
    impl VertexProgram for Bfs {
        type Value = u32;
        fn init(&self, info: &VertexInfo) -> (u32, u32) {
            if info.vid == 0 {
                (u32::MAX, 0)
            } else {
                (u32::MAX, u32::MAX)
            }
        }
        fn identity(&self) -> u32 {
            u32::MAX
        }
        fn acc(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn is_active(&self, value: &u32, delta: &u32) -> bool {
            delta < value
        }
        fn compute(&self, _i: &VertexInfo, value: u32, delta: u32) -> (u32, Option<u32>) {
            if delta < value {
                (delta, Some(delta))
            } else {
                (value, None)
            }
        }
        fn edge_contrib(&self, basis: u32, _w: Weight, _i: &VertexInfo) -> u32 {
            basis.saturating_add(1)
        }
    }

    fn job(n: u32, parts: usize) -> TypedJob<Bfs> {
        let el = generate::cycle(n);
        let ps = VertexCutPartitioner::new(parts).partition(&el);
        let store = Arc::new(SnapshotStore::new(ps));
        TypedJob::new(0, Bfs, store.base_view())
    }

    /// The planner's slot map must always equal a from-scratch rescan.
    fn assert_matches_rescan(planner: &mut SlotPlanner, runtimes: &[&dyn JobRuntime]) {
        let mut expect: BTreeMap<SlotKey, Vec<usize>> = BTreeMap::new();
        for (j, rt) in runtimes.iter().enumerate() {
            for key in rt.pending_slots() {
                expect.entry(key).or_default().push(j);
            }
        }
        assert_eq!(
            planner.slots, expect,
            "incremental map diverged from rescan"
        );
        planner.rebuild_index();
        let keys: Vec<SlotKey> = expect.keys().copied().collect();
        assert_eq!(planner.index, keys);
    }

    #[test]
    fn tracks_note_processed_and_refresh_incrementally() {
        let a = job(24, 4);
        let b = job(24, 4);
        let runtimes: Vec<&dyn JobRuntime> = vec![&a, &b];
        let mut p = SlotPlanner::new();
        p.track_job(0, runtimes[0], true);
        p.track_job(1, runtimes[1], true);
        assert_matches_rescan(&mut p, &runtimes);

        // Drive one full iteration of job a through the planner.
        for key in a.pending_slots() {
            a.process_chunk(key.0, 0, 1);
            a.mark_processed(key.0);
            p.note_processed(0, key);
            assert_matches_rescan(&mut p, &runtimes);
        }
        a.push_and_advance();
        p.refresh_job(0, runtimes[0]);
        assert_matches_rescan(&mut p, &runtimes);
        assert!(!p.is_empty(), "job b still pending");
    }

    #[test]
    fn retire_removes_all_registrations() {
        let a = job(16, 3);
        let runtimes: Vec<&dyn JobRuntime> = vec![&a];
        let mut p = SlotPlanner::new();
        p.track_job(0, runtimes[0], true);
        assert!(!p.is_empty());
        p.retire_job(0);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn infos_match_slot_order_and_job_counts() {
        let a = job(24, 4);
        let b = job(24, 4);
        let runtimes: Vec<&dyn JobRuntime> = vec![&a, &b];
        let mut p = SlotPlanner::new();
        p.track_job(0, runtimes[0], true);
        p.track_job(1, runtimes[1], true);
        let infos = p.infos(&runtimes, 2, &ShardPlacement::RoundRobin);
        assert_eq!(infos.len(), p.len());
        for (i, info) in infos.iter().enumerate() {
            let (key, jobs) = p.slot(i);
            assert_eq!((info.pid, info.version), key);
            assert_eq!(info.num_jobs, jobs.len());
            assert_eq!(info.shard, info.pid as usize % 2, "round-robin lane");
            // Identical jobs on identical views: both pend everywhere.
            assert_eq!(info.num_jobs, 2);
        }
        // Job lists line up with the info order and are ascending.
        let lists = p.slot_job_lists();
        assert_eq!(lists.len(), infos.len());
        for jobs in lists {
            assert_eq!(jobs, &[0, 1]);
        }
    }

    /// Footprints accumulate every partition a job ever pends and
    /// survive retirement — the locality placer's co-access record.
    #[test]
    fn footprints_accumulate_and_survive_retirement() {
        let a = job(24, 4);
        let mut p = SlotPlanner::new();
        p.track_job(0, &a, true);
        let before = p.job_footprints();
        assert_eq!(before.len(), 1);
        assert!(!before[0].is_empty());
        let mut sorted = before[0].clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(before[0], sorted, "footprints are ascending and distinct");
        p.retire_job(0);
        assert_eq!(
            PlacementStats::footprints(&p),
            before,
            "retirement keeps the observed footprint"
        );
    }

    #[test]
    fn inactive_job_contributes_nothing() {
        let a = job(8, 2);
        let mut p = SlotPlanner::new();
        p.track_job(0, &a, false);
        assert!(p.is_empty());
        // Refresh after a (hypothetical) convergence keeps it empty.
        p.retire_job(0);
        assert!(p.is_empty());
    }
}
