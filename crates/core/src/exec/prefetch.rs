//! Asynchronous partition prefetch: the three-stage pipelined wavefront.
//!
//! PR 1's executor overlapped slot *i+1*'s Load with slot *i*'s Trigger,
//! but Load itself was still one serialized disk→memory→cache stage —
//! and disk is the slowest resource in the cost model (0.5 GB/s vs the
//! memory channel's 20 GB/s).  The prefetch queue splits Load in two and
//! schedules the halves on the resources they actually occupy:
//!
//! 1. **fetch** (disk → memory) — runs on per-shard I/O lanes: the
//!    sharded snapshot store gives every shard an independent delta
//!    chain, so fetches of slots on distinct shards proceed in parallel.
//!    A fetch may be *issued early*: up to `depth` wave slots ahead of
//!    the slot currently installing, bounded by the prefetch buffer.
//! 2. **install** (memory → cache, plus miss latency) — serialized on
//!    the one shared memory channel, in plan order.
//! 3. **trigger** (compute) — the worker cores, as before.
//!
//! With `depth = 0` the first two stages fuse back into one serialized
//! Load chain and the model degenerates *exactly* to the two-stage
//! flow-shop of [`super::wavefront::flowshop_makespan`] — which is why
//! `prefetch_depth = 0` reproduces PR 1 bit-for-bit.
//!
//! With `EngineConfig::io_workers > 0` this window is no longer only
//! modeled: [`super::crew`] runs the fetch stage on real per-shard I/O
//! worker threads behind bounded channels, and its dispatch loop
//! enforces the same `depth + 1`-slot release constraint (slot `i`'s
//! fetch is dispatched only once slot `i - 1 - depth` has installed),
//! so the producer/consumer handoff obeys exactly the buffer bound
//! this model prices.

use cgraph_graph::{PartitionId, ShardPlacement};

use crate::job::JobRuntime;
use crate::workers::{run_probe_tasks, ProbeTask};

/// Makespan of a fixed-sequence three-stage pipeline whose first stage
/// has per-lane capacity and a bounded issue window.
///
/// Slot `i` fetches on lane `lanes[i]` (one fetch in flight per lane),
/// installs on the shared channel in sequence order, and triggers on the
/// cores in sequence order.  The prefetch buffer holds at most `depth`
/// fetched-but-not-installed slots, so slot `i`'s fetch may start only
/// once slot `i - 1 - depth`'s install has completed:
///
/// ```text
/// C1[i] = max(lane_free[lanes[i]], C2[i - 1 - depth]) + fetch[i]
/// C2[i] = max(C1[i], C2[i - 1]) + install[i]
/// C3[i] = max(C2[i], C3[i - 1]) + trigger[i]
/// ```
///
/// At `depth = 0` the release constraint `C2[i-1]` dominates every lane,
/// collapsing stages one and two into the fused serialized chain of the
/// two-stage model; deeper windows and more lanes only relax
/// constraints, so the makespan is monotonically non-increasing in both.
pub fn pipeline_makespan(
    fetch: &[f64],
    install: &[f64],
    trigger: &[f64],
    lanes: &[usize],
    depth: usize,
) -> f64 {
    debug_assert_eq!(fetch.len(), install.len());
    debug_assert_eq!(fetch.len(), trigger.len());
    debug_assert_eq!(fetch.len(), lanes.len());
    let nlanes = lanes.iter().map(|&l| l + 1).max().unwrap_or(1);
    let mut lane_free = vec![0.0f64; nlanes];
    let mut c2 = vec![0.0f64; fetch.len()];
    let mut c2_prev = 0.0f64;
    let mut c3_prev = 0.0f64;
    for i in 0..fetch.len() {
        let released = match i.checked_sub(depth + 1) {
            Some(j) => c2[j],
            None => 0.0,
        };
        let c1 = lane_free[lanes[i]].max(released) + fetch[i];
        lane_free[lanes[i]] = c1;
        c2[i] = c1.max(c2_prev) + install[i];
        c2_prev = c2[i];
        c3_prev = c2[i].max(c3_prev) + trigger[i];
    }
    c3_prev
}

/// The stage-one scheduler of the wavefront executor: owns the lane
/// placement (mirroring the sharded snapshot store's partition→shard
/// assignment) and the prefetch window, issues the wave's probe scans
/// through the worker pool, and prices waves under the three-stage
/// pipeline model.
#[derive(Clone, Debug)]
pub struct PrefetchQueue {
    shards: usize,
    depth: usize,
    placement: ShardPlacement,
}

impl PrefetchQueue {
    /// A queue over `shards` round-robin stage-one I/O lanes with a
    /// `depth`-slot prefetch window (`depth = 0` disables asynchronous
    /// fetch).
    pub fn new(shards: usize, depth: usize) -> Self {
        Self::with_placement(shards, depth, ShardPlacement::RoundRobin)
    }

    /// A queue whose lane assignment follows `placement` — the engine
    /// passes the backing store's placement so modeled lanes and actual
    /// shard chains always agree.
    pub fn with_placement(shards: usize, depth: usize, placement: ShardPlacement) -> Self {
        PrefetchQueue { shards: shards.max(1), depth, placement }
    }

    /// Number of stage-one I/O lanes (snapshot-store shards).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Prefetch window depth in wave slots.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether asynchronous prefetch is enabled at all.
    pub fn is_active(&self) -> bool {
        self.depth > 0
    }

    /// The partition→lane placement strategy.
    pub fn placement(&self) -> &ShardPlacement {
        &self.placement
    }

    /// The I/O lane partition `pid` fetches on.
    pub fn lane_of(&self, pid: PartitionId) -> usize {
        self.placement.shard_of(pid, self.shards)
    }

    /// Issues a wave's stage-one probe scans (per-(slot, job) unprocessed
    /// counts) through the worker pool in one parallel drain, writing the
    /// counts to `out` in probe order.
    pub fn probe_wave(
        &self,
        workers: usize,
        runtimes: &[&dyn JobRuntime],
        probes: &[ProbeTask],
        out: &mut Vec<u64>,
    ) {
        run_probe_tasks(workers, runtimes, probes, out);
    }

    /// Modeled makespan of a wave whose slot `i` fetches `fetch[i]`
    /// seconds on lane `lanes[i]`, installs `install[i]` seconds, and
    /// triggers `trigger[i]` seconds, under this queue's window.
    pub fn makespan(
        &self,
        fetch: &[f64],
        install: &[f64],
        trigger: &[f64],
        lanes: &[usize],
    ) -> f64 {
        pipeline_makespan(fetch, install, trigger, lanes, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::wavefront::flowshop_makespan;

    fn fused(fetch: &[f64], install: &[f64], trigger: &[f64]) -> f64 {
        let loads: Vec<f64> = fetch.iter().zip(install).map(|(f, m)| f + m).collect();
        flowshop_makespan(&loads, trigger)
    }

    #[test]
    fn empty_pipeline_is_zero() {
        assert_eq!(pipeline_makespan(&[], &[], &[], &[], 4), 0.0);
    }

    #[test]
    fn single_slot_is_linear() {
        let c = pipeline_makespan(&[3.0], &[1.0], &[2.0], &[0], 8);
        assert!((c - 6.0).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn depth_zero_degenerates_to_two_stage() {
        let fetch = [2.0, 0.5, 3.0, 1.0];
        let install = [0.25, 0.5, 0.1, 0.4];
        let trigger = [1.0, 2.0, 0.5, 0.75];
        for lanes in [[0usize, 0, 0, 0], [0, 1, 2, 3]] {
            let c = pipeline_makespan(&fetch, &install, &trigger, &lanes, 0);
            let two = fused(&fetch, &install, &trigger);
            assert!((c - two).abs() < 1e-12, "lanes {lanes:?}: {c} vs {two}");
        }
    }

    #[test]
    fn lanes_overlap_fetches() {
        // Four disk-bound slots on four lanes with a wide window: the
        // first three fetches all start at time 0.
        let fetch = [10.0, 10.0, 10.0, 10.0];
        let install = [0.5, 0.5, 0.5, 0.5];
        let trigger = [0.1, 0.1, 0.1, 0.1];
        let lanes = [0, 1, 2, 3];
        let wide = pipeline_makespan(&fetch, &install, &trigger, &lanes, 8);
        let serial = fused(&fetch, &install, &trigger);
        assert!(
            wide < 0.5 * serial,
            "parallel lanes {wide} vs fused {serial}"
        );
        // Same lane for everything: fetches serialize again.
        let one_lane = pipeline_makespan(&fetch, &install, &trigger, &[0, 0, 0, 0], 8);
        assert!(one_lane > wide);
        assert!(one_lane <= serial + 1e-12);
    }

    #[test]
    fn deeper_windows_never_hurt() {
        let fetch = [4.0, 1.0, 3.0, 2.0, 5.0];
        let install = [0.5, 0.25, 0.75, 0.5, 0.25];
        let trigger = [1.0, 2.0, 0.5, 1.5, 1.0];
        let lanes = [0, 1, 0, 1, 0];
        let mut prev = f64::INFINITY;
        for depth in 0..6 {
            let c = pipeline_makespan(&fetch, &install, &trigger, &lanes, depth);
            assert!(c <= prev + 1e-12, "depth {depth}: {c} > {prev}");
            prev = c;
        }
    }

    #[test]
    fn bounded_by_linear_sum_and_stage_floors() {
        let fetch = [2.0, 1.0, 4.0];
        let install = [0.5, 0.25, 0.75];
        let trigger = [1.0, 3.0, 0.5];
        let lanes = [0, 1, 0];
        let c = pipeline_makespan(&fetch, &install, &trigger, &lanes, 2);
        let linear: f64 =
            fetch.iter().sum::<f64>() + install.iter().sum::<f64>() + trigger.iter().sum::<f64>();
        assert!(c <= linear + 1e-12);
        // Floors: every stage's serialized resource is a lower bound —
        // the busiest lane, the install channel, the trigger chain.
        assert!(c >= 2.0 + 4.0, "lane 0 fetch floor");
        assert!(c >= install.iter().sum::<f64>());
        assert!(c >= trigger.iter().sum::<f64>());
    }

    #[test]
    fn queue_accessors_and_lane_placement() {
        let q = PrefetchQueue::new(4, 2);
        assert_eq!(q.shards(), 4);
        assert_eq!(q.depth(), 2);
        assert!(q.is_active());
        assert_eq!(q.lane_of(0), 0);
        assert_eq!(q.lane_of(6), 2);
        let off = PrefetchQueue::new(0, 0);
        assert_eq!(off.shards(), 1, "lanes clamp to one");
        assert!(!off.is_active());
    }

    #[test]
    fn lane_placement_follows_strategy() {
        let hashed = PrefetchQueue::with_placement(4, 2, ShardPlacement::Hash);
        assert_eq!(*hashed.placement(), ShardPlacement::Hash);
        for pid in 0..16u32 {
            assert_eq!(hashed.lane_of(pid), ShardPlacement::Hash.shard_of(pid, 4));
        }
        let rr = PrefetchQueue::new(4, 2);
        assert_eq!(*rr.placement(), ShardPlacement::RoundRobin);
        assert_eq!(rr.lane_of(6), 2);
    }
}
