//! The layered execution core behind [`crate::Engine`].
//!
//! The original engine was a single ~460-line module mixing four
//! concerns; they now live in three composable layers that every engine
//! in the workspace (and every future scaling feature — async loading,
//! sharded stores, multi-tenant batching) builds on:
//!
//! * [`SlotPlanner`] — maintains the pending `(partition, version)` slot
//!   map **incrementally**: delta updates on `note_processed` /
//!   `refresh_job` instead of rescanning every job's pending set each
//!   round, and an indexed slot vector so the scheduler's choice resolves
//!   in O(log n) instead of an O(n) ordered-map walk.
//! * [`ChargeLedger`] — the single place where simulated-hierarchy
//!   traffic and compute are charged and attributed to jobs; unifies the
//!   charging code previously duplicated between the CGraph engine's
//!   Load/Push paths and the baseline streaming engine.
//! * [`wavefront`] — the pipelined Load–Trigger–Push round executor: a
//!   wave of up to `k` scheduler-planned slots is loaded, their chunk
//!   tasks drain through one shared worker pass, and the round's modeled
//!   time overlaps slot *i+1*'s Load with slot *i*'s Trigger (two-stage
//!   flow-shop makespan).  At `k = 1` the executor reproduces the
//!   original single-slot engine exactly.
//! * [`prefetch`] — the asynchronous-prefetch stage-one scheduler: the
//!   [`PrefetchQueue`] issues wave slots' disk fetches on per-shard I/O
//!   lanes up to `prefetch_depth` slots early and prices rounds with the
//!   three-stage pipeline makespan (disk-fetch → memory-install →
//!   trigger).  At depth 0 it degenerates to the two-stage model above.
//! * [`crew`] — the long-lived concurrent executor behind
//!   `EngineConfig::io_workers`: dedicated per-shard I/O worker threads
//!   stream completed loads over bounded channels into the main-thread
//!   install stage, which feeds a persistent trigger-worker pool — the
//!   modeled pipeline above, executed for real.  Results and modeled
//!   costs are bit-identical to the fork-join path at any worker or
//!   channel configuration (see the module docs for the ordering
//!   argument).

pub mod crew;
pub mod ledger;
pub mod planner;
pub mod prefetch;
pub mod wavefront;

pub use crew::ExecError;
pub use ledger::{ChargeLedger, JobTiming};
pub use planner::{SlotKey, SlotPlanner};
pub use prefetch::{pipeline_makespan, PrefetchQueue};
pub use wavefront::flowshop_makespan;
