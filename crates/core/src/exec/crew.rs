//! The long-lived executor crew: per-shard I/O workers and trigger
//! compute workers behind bounded channels.
//!
//! PR 1–5 *modeled* the three-stage disk→install→trigger pipeline but
//! executed it with fork-join `TaskPool` passes: every round spawned
//! scoped threads, drained them, and joined — so modeled overlap never
//! became measured overlap.  The crew replaces that with an actor-style
//! topology that lives as long as the engine:
//!
//! ```text
//!             fetch queues (bounded sync_channel, capacity k)
//!   main ──┬──────────────▶ I/O worker 0  (owns lanes 0, n, 2n, …)
//!          ├──────────────▶ I/O worker 1  (owns lanes 1, n+1, …)
//!          └──────────────▶ …
//!                               │ completed loads (bounded sync_channel)
//!                               ▼
//!   main: install stage ── ordered reorder buffer, ledger charging
//!          │ chunk tasks (shared queue, capacity reused across rounds)
//!          ▼
//!   compute workers 0..w ── process_chunk, commutative stat merge
//! ```
//!
//! Ordering guarantees (why determinism survives the concurrency):
//!
//! * **Fetch stage** — an I/O worker only *reads* (probe scans of the
//!   slot's per-job unprocessed counts).  Those counts live in each
//!   job's pending set, which the round mutates exclusively at its tail
//!   (`mark_processed` / `push_and_advance`, both on the main thread
//!   after every in-flight fetch and chunk has drained), so a probe
//!   observes the same value no matter when its worker runs it.
//! * **Install stage** — completions arrive in any order but pass
//!   through a reorder buffer and install strictly in plan order on the
//!   main thread, so the `ChargeLedger` sees the exact charge sequence
//!   of the serial executor: identical counters, identical modeled
//!   stage times.
//! * **Trigger stage** — chunk results fold into per-entry `u64`
//!   counters under one mutex; integer addition is commutative, so the
//!   totals are independent of completion order.  The conversion to
//!   `f64` stage seconds happens afterwards on the main thread in entry
//!   order — the serial executor's exact float-accumulation order.
//!
//! Deadlock freedom at any channel capacity ≥ 1: the main thread
//! dispatches fetches with `try_send` (never blocking on a full fetch
//! queue) and blocks only on the completion channel, whose producers
//! (the I/O workers) never wait on anything main holds; the chunk queue
//! is unbounded-but-recycled, so compute workers always make progress
//! and signal completion through a condvar main waits on last.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use cgraph_graph::PartitionId;

use crate::job::{JobRuntime, ProcessStats};

/// One slot's fetch order: the I/O worker runs the slot's stage-one
/// probe scans and sends the message back on the completion channel
/// with `counts` filled.  Buffers travel with the message and are
/// recycled through [`RoundBuffers`](super::wavefront::RoundBuffers)'
/// fetch pool, so a steady-state round allocates no channel payloads.
#[derive(Default)]
pub(crate) struct FetchMsg {
    /// Plan-order slot index within the round (reorder-buffer key).
    pub seq: usize,
    /// The slot's structure partition.
    pub pid: PartitionId,
    /// The slot's interested jobs: engine index + runtime handle.
    pub jobs: Vec<(usize, Arc<dyn JobRuntime>)>,
    /// Probe results, aligned with `jobs` (filled by the I/O worker).
    pub counts: Vec<u64>,
}

/// One trigger-stage work unit routed to the compute workers.
struct ChunkMsg {
    /// Pooled entry index (round-local `(slot, job)` pair).
    entry: usize,
    pid: PartitionId,
    chunk: usize,
    nchunks: usize,
    runtime: Arc<dyn JobRuntime>,
}

/// The shared chunk-task queue: a mutex-guarded deque (capacity kept
/// across rounds) plus a close flag for shutdown.
struct ChunkQueue {
    state: Mutex<ChunkQueueState>,
    ready: Condvar,
}

struct ChunkQueueState {
    tasks: VecDeque<ChunkMsg>,
    closed: bool,
}

impl ChunkQueue {
    fn new() -> Self {
        ChunkQueue {
            state: Mutex::new(ChunkQueueState { tasks: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    fn pop(&self) -> Option<ChunkMsg> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(msg) = st.tasks.pop_front() {
                return Some(msg);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// Per-round accumulation state shared with the compute workers: one
/// `ProcessStats` cell per pooled entry plus the outstanding-task count
/// the main thread waits on.  Folding is `u64` addition under a mutex —
/// commutative, so totals are independent of completion order.
struct RoundState {
    inner: Mutex<RoundInner>,
    done: Condvar,
}

struct RoundInner {
    totals: Vec<ProcessStats>,
    remaining: usize,
}

impl RoundState {
    fn record(&self, entry: usize, stats: ProcessStats) {
        let mut inner = self.inner.lock().unwrap();
        inner.totals[entry].vertex_ops += stats.vertex_ops;
        inner.totals[entry].edge_ops += stats.edge_ops;
        inner.remaining -= 1;
        if inner.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// The engine's long-lived execution crew.  Spawned lazily on the first
/// concurrent round; dropped (channels closed, threads joined) with the
/// engine.
pub(crate) struct ExecCrew {
    /// One bounded fetch queue per I/O worker; lane `l` is owned by
    /// worker `l % nio`.
    fetch_txs: Vec<SyncSender<FetchMsg>>,
    /// Completed loads, any order; `None` only mid-shutdown.
    done_rx: Option<Receiver<FetchMsg>>,
    chunks: Arc<ChunkQueue>,
    round: Arc<RoundState>,
    handles: Vec<JoinHandle<()>>,
    nio: usize,
    /// Dispatch window in slots (`prefetch depth + 1`): how many fetches
    /// may be in flight beyond the slot currently installing — the
    /// modeled prefetch release constraint, enforced for real.
    window: usize,
    /// Chunk tasks enqueued but not yet drained this round.
    outstanding: usize,
}

impl ExecCrew {
    /// Spawns `nio` I/O workers and `compute` trigger workers over
    /// channels bounded at `capacity` messages, with a `window`-slot
    /// fetch dispatch window.
    pub(crate) fn spawn(nio: usize, compute: usize, capacity: usize, window: usize) -> Self {
        let nio = nio.max(1);
        let compute = compute.max(1);
        let capacity = capacity.max(1);
        let window = window.max(1);
        let (done_tx, done_rx) = std::sync::mpsc::sync_channel::<FetchMsg>(capacity);
        let mut fetch_txs = Vec::with_capacity(nio);
        let mut handles = Vec::with_capacity(nio + compute);
        for w in 0..nio {
            let (tx, rx) = std::sync::mpsc::sync_channel::<FetchMsg>(capacity);
            fetch_txs.push(tx);
            let done_tx = done_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cgraph-io-{w}"))
                    .spawn(move || io_loop(rx, done_tx))
                    .expect("spawn I/O worker"),
            );
        }
        drop(done_tx);
        let chunks = Arc::new(ChunkQueue::new());
        let round = Arc::new(RoundState {
            inner: Mutex::new(RoundInner { totals: Vec::new(), remaining: 0 }),
            done: Condvar::new(),
        });
        for w in 0..compute {
            let queue = Arc::clone(&chunks);
            let state = Arc::clone(&round);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cgraph-trigger-{w}"))
                    .spawn(move || compute_loop(queue, state))
                    .expect("spawn trigger worker"),
            );
        }
        ExecCrew {
            fetch_txs,
            done_rx: Some(done_rx),
            chunks,
            round,
            handles,
            nio,
            window,
            outstanding: 0,
        }
    }

    /// Fetch dispatch window in slots.
    pub(crate) fn window(&self) -> usize {
        self.window
    }

    /// Resets the per-round accumulation state for `entries` pooled
    /// `(slot, job)` pairs.  Must only be called between rounds (no
    /// chunk in flight).
    pub(crate) fn begin_round(&mut self, entries: usize) {
        debug_assert_eq!(self.outstanding, 0, "round started with chunks in flight");
        let mut inner = self.round.inner.lock().unwrap();
        debug_assert_eq!(inner.remaining, 0);
        inner.totals.clear();
        inner.totals.resize(entries, ProcessStats::default());
    }

    /// Non-blocking fetch dispatch to the lane's owning I/O worker; the
    /// message is handed back when the worker's queue is full so the
    /// caller can stash it and drain completions instead of blocking.
    pub(crate) fn try_dispatch(&self, lane: usize, msg: FetchMsg) -> Result<(), FetchMsg> {
        match self.fetch_txs[lane % self.nio].try_send(msg) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(msg)) => Err(msg),
            Err(TrySendError::Disconnected(_)) => panic!("I/O worker died"),
        }
    }

    /// Blocks for the next completed load (any plan order).  Safe to
    /// block on: completion producers never wait on the main thread.
    pub(crate) fn recv_done(&self) -> FetchMsg {
        self.done_rx
            .as_ref()
            .expect("crew active")
            .recv()
            .expect("I/O workers alive")
    }

    /// Queues one chunk task for the compute workers.
    pub(crate) fn push_chunk(
        &mut self,
        entry: usize,
        pid: PartitionId,
        chunk: usize,
        nchunks: usize,
        runtime: Arc<dyn JobRuntime>,
    ) {
        {
            let mut inner = self.round.inner.lock().unwrap();
            inner.remaining += 1;
        }
        let mut st = self.chunks.state.lock().unwrap();
        st.tasks
            .push_back(ChunkMsg { entry, pid, chunk, nchunks, runtime });
        drop(st);
        self.chunks.ready.notify_one();
        self.outstanding += 1;
    }

    /// Blocks until every queued chunk has been processed, then copies
    /// the per-entry totals into `out` (cleared first) in entry order.
    pub(crate) fn finish_round(&mut self, out: &mut Vec<ProcessStats>) {
        let mut inner = self.round.inner.lock().unwrap();
        while inner.remaining > 0 {
            inner = self.round.done.wait(inner).unwrap();
        }
        out.clear();
        out.extend_from_slice(&inner.totals);
        self.outstanding = 0;
    }
}

impl Drop for ExecCrew {
    fn drop(&mut self) {
        // Close every intake: fetch queues (wakes I/O workers), the
        // completion channel (unblocks any worker mid-send after a
        // panic), and the chunk queue.
        self.fetch_txs.clear();
        self.done_rx = None;
        self.chunks.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn io_loop(rx: Receiver<FetchMsg>, done_tx: SyncSender<FetchMsg>) {
    while let Ok(mut msg) = rx.recv() {
        msg.counts.clear();
        msg.counts.extend(
            msg.jobs
                .iter()
                .map(|(_, rt)| rt.unprocessed_vertices(msg.pid)),
        );
        if done_tx.send(msg).is_err() {
            break;
        }
    }
}

fn compute_loop(queue: Arc<ChunkQueue>, round: Arc<RoundState>) {
    while let Some(msg) = queue.pop() {
        let stats = msg.runtime.process_chunk(msg.pid, msg.chunk, msg.nchunks);
        round.record(msg.entry, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_crew_shuts_down() {
        let crew = ExecCrew::spawn(2, 2, 1, 1);
        assert_eq!(crew.nio, 2);
        assert_eq!(crew.window(), 1);
        drop(crew);
    }

    #[test]
    fn crew_clamps_degenerate_parameters() {
        let crew = ExecCrew::spawn(0, 0, 0, 0);
        assert_eq!(crew.nio, 1);
        assert_eq!(crew.window(), 1);
    }
}
