//! The long-lived executor crew: per-shard I/O workers and trigger
//! compute workers behind bounded channels.
//!
//! PR 1–5 *modeled* the three-stage disk→install→trigger pipeline but
//! executed it with fork-join `TaskPool` passes: every round spawned
//! scoped threads, drained them, and joined — so modeled overlap never
//! became measured overlap.  The crew replaces that with an actor-style
//! topology that lives as long as the engine:
//!
//! ```text
//!             fetch queues (bounded sync_channel, capacity k)
//!   main ──┬──────────────▶ I/O worker 0  (owns lanes 0, n, 2n, …)
//!          ├──────────────▶ I/O worker 1  (owns lanes 1, n+1, …)
//!          └──────────────▶ …
//!                               │ completed loads (bounded sync_channel)
//!                               ▼
//!   main: install stage ── ordered reorder buffer, ledger charging
//!          │ chunk tasks (shared queue, capacity reused across rounds)
//!          ▼
//!   compute workers 0..w ── process_chunk, commutative stat merge
//! ```
//!
//! Ordering guarantees (why determinism survives the concurrency):
//!
//! * **Fetch stage** — an I/O worker only *reads* (probe scans of the
//!   slot's per-job unprocessed counts).  Those counts live in each
//!   job's pending set, which the round mutates exclusively at its tail
//!   (`mark_processed` / `push_and_advance`, both on the main thread
//!   after every in-flight fetch and chunk has drained), so a probe
//!   observes the same value no matter when its worker runs it.
//! * **Install stage** — completions arrive in any order but pass
//!   through a reorder buffer and install strictly in plan order on the
//!   main thread, so the `ChargeLedger` sees the exact charge sequence
//!   of the serial executor: identical counters, identical modeled
//!   stage times.
//! * **Trigger stage** — chunk results fold into per-entry `u64`
//!   counters under one mutex; integer addition is commutative, so the
//!   totals are independent of completion order.  The conversion to
//!   `f64` stage seconds happens afterwards on the main thread in entry
//!   order — the serial executor's exact float-accumulation order.
//!
//! Deadlock freedom at any channel capacity ≥ 1: the main thread
//! dispatches fetches with `try_send` (never blocking on a full fetch
//! queue) and blocks only on the completion channel, whose producers
//! (the I/O workers) never wait on anything main holds; the chunk queue
//! is unbounded-but-recycled, so compute workers always make progress
//! and signal completion through a condvar main waits on last.
//!
//! # Worker failure
//!
//! A worker panic (user code inside `process_chunk` or a probe scan)
//! must not hang or abort the engine, so every blocking edge is
//! failure-aware:
//!
//! * Compute workers run each chunk under an unwind guard: if
//!   `process_chunk` panics, the guard settles the chunk's outstanding
//!   count, records the failure label, and wakes the round condvar, so
//!   [`ExecCrew::finish_round`] returns [`ExecError::WorkerPanic`]
//!   instead of waiting forever on a completion that will never come.
//! * The main thread never waits on the completion channel blindly:
//!   [`ExecCrew::recv_done`] polls I/O worker liveness, so a dead
//!   worker (its queued fetches lost with it) surfaces as a typed
//!   error instead of a hang, and a disconnected channel does the same
//!   in [`ExecCrew::try_dispatch`].
//! * Every mutex acquisition recovers from poisoning
//!   (`PoisonError::into_inner`): the guarded state — `u64` counters, a
//!   task deque, flags — is valid at every intermediate step, so a
//!   panicking peer cannot cascade panics into other workers or the
//!   main thread.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use cgraph_graph::PartitionId;

use crate::fault::FaultPlane;
use crate::job::{JobRuntime, ProcessStats};
use crate::obs::{EventKind, Observer, Recorder, NONE};

/// A concurrent-executor failure: a worker thread died (panicked user
/// code) or a channel it served disconnected.  Surfaced by
/// [`crate::Engine::exec_error`] after the engine shuts the crew down
/// gracefully; never a panic or a hang on the main thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A worker thread panicked; the label says which stage.
    WorkerPanic(&'static str),
    /// A channel disconnected outside shutdown; the label says which.
    Disconnected(&'static str),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::WorkerPanic(what) => write!(f, "executor worker panicked: {what}"),
            ExecError::Disconnected(what) => write!(f, "executor channel disconnected: {what}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Outcome of a non-blocking fetch dispatch.
pub(crate) enum Dispatch {
    /// Accepted by the lane's I/O worker queue.
    Sent,
    /// Queue full; the message is handed back for the caller to stash.
    Full(FetchMsg),
    /// The lane's I/O worker is gone (panicked mid-round).
    Dead(ExecError),
}

/// Locks a mutex, recovering the guard from a poisoned peer: all crew
/// state behind mutexes is valid at every intermediate step, so a
/// panicking worker must not cascade its panic into healthy threads.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One slot's fetch order: the I/O worker runs the slot's stage-one
/// probe scans and sends the message back on the completion channel
/// with `counts` filled.  Buffers travel with the message and are
/// recycled through [`RoundBuffers`](super::wavefront::RoundBuffers)'
/// fetch pool, so a steady-state round allocates no channel payloads.
#[derive(Default)]
pub(crate) struct FetchMsg {
    /// Plan-order slot index within the round (reorder-buffer key).
    pub seq: usize,
    /// The slot's structure partition.
    pub pid: PartitionId,
    /// The slot's interested jobs: engine index + runtime handle.
    pub jobs: Vec<(usize, Arc<dyn JobRuntime>)>,
    /// Probe results, aligned with `jobs` (filled by the I/O worker).
    pub counts: Vec<u64>,
}

/// One trigger-stage work unit routed to the compute workers.
struct ChunkMsg {
    /// Pooled entry index (round-local `(slot, job)` pair).
    entry: usize,
    pid: PartitionId,
    chunk: usize,
    nchunks: usize,
    runtime: Arc<dyn JobRuntime>,
}

/// The shared chunk-task queue: a mutex-guarded deque (capacity kept
/// across rounds) plus a close flag for shutdown.
struct ChunkQueue {
    state: Mutex<ChunkQueueState>,
    ready: Condvar,
}

struct ChunkQueueState {
    tasks: VecDeque<ChunkMsg>,
    closed: bool,
}

impl ChunkQueue {
    fn new() -> Self {
        ChunkQueue {
            state: Mutex::new(ChunkQueueState { tasks: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    fn pop(&self) -> Option<ChunkMsg> {
        let mut st = lock_recover(&self.state);
        loop {
            if let Some(msg) = st.tasks.pop_front() {
                return Some(msg);
            }
            if st.closed {
                return None;
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.ready.notify_all();
    }
}

/// Per-round accumulation state shared with the compute workers: one
/// `ProcessStats` cell per pooled entry plus the outstanding-task count
/// the main thread waits on.  Folding is `u64` addition under a mutex —
/// commutative, so totals are independent of completion order.
struct RoundState {
    inner: Mutex<RoundInner>,
    done: Condvar,
}

struct RoundInner {
    totals: Vec<ProcessStats>,
    remaining: usize,
    /// Set by a compute worker's unwind guard when `process_chunk`
    /// panicked; the round then fails typed instead of hanging.
    failed: Option<&'static str>,
}

impl RoundState {
    fn record(&self, entry: usize, stats: ProcessStats) {
        let mut inner = lock_recover(&self.inner);
        inner.totals[entry].vertex_ops += stats.vertex_ops;
        inner.totals[entry].edge_ops += stats.edge_ops;
        inner.remaining -= 1;
        if inner.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Settles a chunk whose worker panicked: the outstanding count
    /// still goes down (so the waiter's arithmetic stays coherent) and
    /// the failure label wakes [`ExecCrew::finish_round`] immediately —
    /// other chunks may still be queued behind a dead worker pool, so
    /// waiting for `remaining == 0` could block forever.
    fn fail(&self, what: &'static str) {
        let mut inner = lock_recover(&self.inner);
        inner.remaining = inner.remaining.saturating_sub(1);
        inner.failed.get_or_insert(what);
        self.done.notify_all();
    }
}

/// Unwind guard armed around `process_chunk`: disarmed (forgotten) on
/// normal return, it marks the round failed if the chunk panics.
struct ChunkPanicGuard<'a> {
    round: &'a RoundState,
}

impl Drop for ChunkPanicGuard<'_> {
    fn drop(&mut self) {
        self.round
            .fail("process_chunk panicked in a trigger worker");
    }
}

/// The engine's long-lived execution crew.  Spawned lazily on the first
/// concurrent round; dropped (channels closed, threads joined) with the
/// engine.
pub(crate) struct ExecCrew {
    /// One bounded fetch queue per I/O worker; lane `l` is owned by
    /// worker `l % nio`.
    fetch_txs: Vec<SyncSender<FetchMsg>>,
    /// Completed loads, any order; `None` only mid-shutdown.
    done_rx: Option<Receiver<FetchMsg>>,
    chunks: Arc<ChunkQueue>,
    round: Arc<RoundState>,
    handles: Vec<JoinHandle<()>>,
    nio: usize,
    /// Dispatch window in slots (`prefetch depth + 1`): how many fetches
    /// may be in flight beyond the slot currently installing — the
    /// modeled prefetch release constraint, enforced for real.
    window: usize,
    /// Chunk tasks enqueued but not yet drained this round.
    outstanding: usize,
}

impl ExecCrew {
    /// Spawns `nio` I/O workers and `compute` trigger workers over
    /// channels bounded at `capacity` messages, with a `window`-slot
    /// fetch dispatch window.  Each worker receives its own
    /// [`Recorder`] from `obs` (permanently off on a disabled
    /// observer), created here on the spawning thread and moved into
    /// the worker — recorders are single-writer by construction.
    /// `faults` (the engine's fault plane, if any) arms the injected
    /// worker-death drill: a trigger worker panics on the plane's
    /// configured `(partition, chunk)` exactly as crashing user code
    /// would, exercising the typed-failure path end to end.
    pub(crate) fn spawn(
        nio: usize,
        compute: usize,
        capacity: usize,
        window: usize,
        obs: &Observer,
        faults: Option<Arc<FaultPlane>>,
    ) -> Self {
        let nio = nio.max(1);
        let compute = compute.max(1);
        let capacity = capacity.max(1);
        let window = window.max(1);
        let (done_tx, done_rx) = std::sync::mpsc::sync_channel::<FetchMsg>(capacity);
        let mut fetch_txs = Vec::with_capacity(nio);
        let mut handles = Vec::with_capacity(nio + compute);
        for w in 0..nio {
            let (tx, rx) = std::sync::mpsc::sync_channel::<FetchMsg>(capacity);
            fetch_txs.push(tx);
            let done_tx = done_tx.clone();
            let rec = obs.recorder(&format!("cgraph-io-{w}"));
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cgraph-io-{w}"))
                    .spawn(move || io_loop(rx, done_tx, rec))
                    .expect("spawn I/O worker"),
            );
        }
        drop(done_tx);
        let chunks = Arc::new(ChunkQueue::new());
        let round = Arc::new(RoundState {
            inner: Mutex::new(RoundInner { totals: Vec::new(), remaining: 0, failed: None }),
            done: Condvar::new(),
        });
        for w in 0..compute {
            let queue = Arc::clone(&chunks);
            let state = Arc::clone(&round);
            let rec = obs.recorder(&format!("cgraph-trigger-{w}"));
            let plane = faults.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cgraph-trigger-{w}"))
                    .spawn(move || compute_loop(queue, state, rec, plane))
                    .expect("spawn trigger worker"),
            );
        }
        ExecCrew {
            fetch_txs,
            done_rx: Some(done_rx),
            chunks,
            round,
            handles,
            nio,
            window,
            outstanding: 0,
        }
    }

    /// Fetch dispatch window in slots.
    pub(crate) fn window(&self) -> usize {
        self.window
    }

    /// Chunk tasks enqueued and not yet drained this round (observability
    /// only — the round's trigger-queue depth at its high-water mark
    /// when read just before [`Self::finish_round`]).
    pub(crate) fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Resets the per-round accumulation state for `entries` pooled
    /// `(slot, job)` pairs.  Must only be called between rounds (no
    /// chunk in flight).
    pub(crate) fn begin_round(&mut self, entries: usize) {
        debug_assert_eq!(self.outstanding, 0, "round started with chunks in flight");
        let mut inner = lock_recover(&self.round.inner);
        debug_assert_eq!(inner.remaining, 0);
        inner.totals.clear();
        inner.totals.resize(entries, ProcessStats::default());
        inner.failed = None;
    }

    /// Non-blocking fetch dispatch to the lane's owning I/O worker; the
    /// message is handed back when the worker's queue is full so the
    /// caller can stash it and drain completions instead of blocking.
    /// A disconnected queue — the worker panicked mid-round — reports
    /// [`Dispatch::Dead`] instead of panicking the main thread.
    pub(crate) fn try_dispatch(&self, lane: usize, msg: FetchMsg) -> Dispatch {
        match self.fetch_txs[lane % self.nio].try_send(msg) {
            Ok(()) => Dispatch::Sent,
            Err(TrySendError::Full(msg)) => Dispatch::Full(msg),
            Err(TrySendError::Disconnected(_)) => Dispatch::Dead(ExecError::WorkerPanic(
                "an I/O worker's fetch queue is gone",
            )),
        }
    }

    /// Blocks for the next completed load (any plan order).  Safe to
    /// block on: completion producers never wait on the main thread.
    /// The wait polls I/O-worker liveness — a worker that panicked takes
    /// its queued fetches with it, so the completion this call waits for
    /// may never arrive; liveness polling turns that hang into a typed
    /// error.  Workers only exit outside [`Drop`] by panicking, so a
    /// finished handle mid-round is unambiguous.
    pub(crate) fn recv_done(&self) -> Result<FetchMsg, ExecError> {
        let rx = self
            .done_rx
            .as_ref()
            .ok_or(ExecError::Disconnected("completion channel closed"))?;
        loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => return Ok(msg),
                Err(RecvTimeoutError::Timeout) => {
                    if self.handles[..self.nio].iter().any(|h| h.is_finished()) {
                        return Err(ExecError::WorkerPanic("an I/O worker died mid-round"));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ExecError::Disconnected("every I/O worker is gone"));
                }
            }
        }
    }

    /// Queues one chunk task for the compute workers.
    pub(crate) fn push_chunk(
        &mut self,
        entry: usize,
        pid: PartitionId,
        chunk: usize,
        nchunks: usize,
        runtime: Arc<dyn JobRuntime>,
    ) {
        {
            let mut inner = lock_recover(&self.round.inner);
            inner.remaining += 1;
        }
        let mut st = lock_recover(&self.chunks.state);
        st.tasks
            .push_back(ChunkMsg { entry, pid, chunk, nchunks, runtime });
        drop(st);
        self.chunks.ready.notify_one();
        self.outstanding += 1;
    }

    /// Blocks until every queued chunk has been processed, then copies
    /// the per-entry totals into `out` (cleared first) in entry order.
    /// A chunk whose worker panicked fails the round with
    /// [`ExecError::WorkerPanic`] as soon as the unwind guard reports it
    /// — the remaining queue may sit behind a dead worker pool, so
    /// waiting it out could hang forever.  After an error the crew must
    /// be dropped (its bookkeeping no longer matches the queue).
    pub(crate) fn finish_round(&mut self, out: &mut Vec<ProcessStats>) -> Result<(), ExecError> {
        let mut inner = lock_recover(&self.round.inner);
        while inner.remaining > 0 && inner.failed.is_none() {
            inner = self
                .round
                .done
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if let Some(what) = inner.failed {
            return Err(ExecError::WorkerPanic(what));
        }
        out.clear();
        out.extend_from_slice(&inner.totals);
        self.outstanding = 0;
        Ok(())
    }
}

impl Drop for ExecCrew {
    fn drop(&mut self) {
        // Close every intake: fetch queues (wakes I/O workers), the
        // completion channel (unblocks any worker mid-send after a
        // panic), and the chunk queue.
        self.fetch_txs.clear();
        self.done_rx = None;
        self.chunks.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn io_loop(rx: Receiver<FetchMsg>, done_tx: SyncSender<FetchMsg>, rec: Recorder) {
    while let Ok(mut msg) = rx.recv() {
        let t0 = rec.start();
        msg.counts.clear();
        msg.counts.extend(
            msg.jobs
                .iter()
                .map(|(_, rt)| rt.unprocessed_vertices(msg.pid)),
        );
        if rec.on() {
            let total: u64 = msg.counts.iter().sum();
            rec.complete(EventKind::FetchComplete, NONE, msg.pid, NONE, t0, total);
        }
        if done_tx.send(msg).is_err() {
            break;
        }
    }
}

fn compute_loop(
    queue: Arc<ChunkQueue>,
    round: Arc<RoundState>,
    rec: Recorder,
    faults: Option<Arc<FaultPlane>>,
) {
    while let Some(msg) = queue.pop() {
        // Armed across the user-code call: a panic inside
        // `process_chunk` unwinds through the guard, which settles the
        // chunk and marks the round failed before the thread dies.
        let guard = ChunkPanicGuard { round: &round };
        if let Some(plane) = &faults {
            // The injected worker-death drill panics behind the armed
            // guard, so it travels the same path as crashing user code.
            assert!(
                !plane.should_panic_chunk(msg.pid, msg.chunk),
                "injected fault-plane chunk panic"
            );
        }
        let t0 = rec.start();
        let stats = msg.runtime.process_chunk(msg.pid, msg.chunk, msg.nchunks);
        std::mem::forget(guard);
        if rec.on() {
            rec.complete(
                EventKind::TriggerChunk,
                msg.runtime.id(),
                msg.pid,
                NONE,
                t0,
                msg.chunk as u64,
            );
        }
        round.record(msg.entry, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, PushStats};
    use cgraph_graph::GraphView;

    #[test]
    fn idle_crew_shuts_down() {
        let crew = ExecCrew::spawn(2, 2, 1, 1, &crate::obs::Observer::disabled(), None);
        assert_eq!(crew.nio, 2);
        assert_eq!(crew.window(), 1);
        drop(crew);
    }

    #[test]
    fn crew_clamps_degenerate_parameters() {
        let crew = ExecCrew::spawn(0, 0, 0, 0, &crate::obs::Observer::disabled(), None);
        assert_eq!(crew.nio, 1);
        assert_eq!(crew.window(), 1);
    }

    /// A runtime whose chunks panic on demand — only the methods the
    /// crew's trigger path touches are live.
    struct FaultyRuntime {
        panic_on: usize,
    }

    impl JobRuntime for FaultyRuntime {
        fn id(&self) -> JobId {
            0
        }
        fn name(&self) -> String {
            "faulty".into()
        }
        fn view(&self) -> &GraphView {
            unreachable!("crew tests never resolve the view")
        }
        fn iteration(&self) -> u64 {
            0
        }
        fn pending(&self) -> Vec<PartitionId> {
            Vec::new()
        }
        fn is_pending(&self, _pid: PartitionId) -> bool {
            false
        }
        fn unprocessed_vertices(&self, _pid: PartitionId) -> u64 {
            0
        }
        fn private_table_bytes(&self, _pid: PartitionId) -> u64 {
            0
        }
        fn process_chunk(&self, _pid: PartitionId, chunk: usize, _nchunks: usize) -> ProcessStats {
            assert_ne!(chunk, self.panic_on, "injected chunk fault");
            ProcessStats { vertex_ops: 1, edge_ops: 2 }
        }
        fn mark_processed(&self, _pid: PartitionId) {}
        fn reenter_partition(&self, _pid: PartitionId, _max_rounds: u64) -> ProcessStats {
            ProcessStats::default()
        }
        fn iteration_complete(&self) -> bool {
            true
        }
        fn push_and_advance(&self) -> PushStats {
            PushStats::default()
        }
        fn is_converged(&self) -> bool {
            true
        }
        fn partition_change(&self, _pid: PartitionId) -> f64 {
            0.0
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn panicking_chunk_fails_the_round_instead_of_hanging() {
        // Two compute workers, four chunks, one of which panics: the
        // round must come back with a typed error (not wedge on the
        // condvar, not abort the test process) and the crew must still
        // drop cleanly afterwards.
        let mut crew = ExecCrew::spawn(1, 2, 1, 1, &crate::obs::Observer::disabled(), None);
        crew.begin_round(1);
        let runtime: Arc<dyn JobRuntime> = Arc::new(FaultyRuntime { panic_on: 2 });
        for chunk in 0..4 {
            crew.push_chunk(0, 0, chunk, 4, Arc::clone(&runtime));
        }
        let mut out = Vec::new();
        let err = crew.finish_round(&mut out).unwrap_err();
        assert_eq!(
            err,
            ExecError::WorkerPanic("process_chunk panicked in a trigger worker")
        );
        drop(crew);
    }

    #[test]
    fn clean_chunks_still_fold_after_guard_refactor() {
        let mut crew = ExecCrew::spawn(1, 2, 1, 1, &crate::obs::Observer::disabled(), None);
        crew.begin_round(2);
        let runtime: Arc<dyn JobRuntime> = Arc::new(FaultyRuntime { panic_on: usize::MAX });
        for chunk in 0..3 {
            crew.push_chunk(chunk % 2, 0, chunk, 3, Arc::clone(&runtime));
        }
        let mut out = Vec::new();
        crew.finish_round(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], ProcessStats { vertex_ops: 2, edge_ops: 4 });
        assert_eq!(out[1], ProcessStats { vertex_ops: 1, edge_ops: 2 });
    }
}
