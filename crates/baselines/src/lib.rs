//! Baseline engines for the CGraph evaluation (paper §4).
//!
//! CLIP, Nxgraph, Seraph and Seraph-VT are closed or unavailable, so this
//! crate re-implements *models* of each system's data-access discipline —
//! the property the paper's evaluation actually measures — on top of the
//! same substrate and the same [`cgraph_core::JobRuntime`] job state.
//! Because every engine executes identical vertex programs through
//! identical runtimes, their final results are equal by construction; only
//! **when and for whom** partitions move through the simulated memory
//! hierarchy differs:
//!
//! | Engine | Structure copies | Traversal order | Extras |
//! |--------|------------------|-----------------|--------|
//! | [`BaselinePreset::Sequential`] | shared (one job at a time) | ascending | — |
//! | [`BaselinePreset::Clip`]       | per job (cache *and* memory) | per-job rotated | data re-entry |
//! | [`BaselinePreset::Nxgraph`]    | per job | per-job rotated | dst-sorted shards (partition-local sync) |
//! | [`BaselinePreset::Seraph`]     | one in-memory copy | per-job rotated, uncoordinated | full per-snapshot copies |
//! | [`BaselinePreset::SeraphVt`]   | one in-memory copy | per-job rotated, uncoordinated | incremental snapshot versions |
//!
//! The CGraph engine itself lives in `cgraph-core`; its difference from
//! Seraph is precisely the paper's thesis: one *cache-level* load serves
//! every interested job, in one common, correlations-aware order.

pub mod preset;
pub mod serve;
pub mod stream;

pub use preset::BaselinePreset;
pub use serve::FifoServe;
pub use stream::{Interleave, StreamConfig, StreamEngine, StructureSharing};
