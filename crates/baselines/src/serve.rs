//! FIFO-admission serving over the streaming baseline.
//!
//! The comparison denominator for the CGraph serving layer: arrivals
//! are admitted strictly in arrival order with no deferral, and the
//! per-job [`StreamEngine`] runs each admitted batch to convergence
//! before the next admission — the "submit as they come" regime every
//! pre-CGraph deployment runs.  Because the streaming engine has no
//! round-level stepping, a job arriving mid-batch waits for the whole
//! batch to drain (its queue wait absorbs the batch's remaining
//! execution), and completions resolve at batch granularity.

use cgraph_core::serve::{Arrival, JobLatency, JobOutcome, ServeReport};

use crate::stream::StreamEngine;

/// Drives a [`StreamEngine`] from a timed arrival stream under FIFO
/// admission, producing the same [`ServeReport`] the CGraph
/// [`ServeLoop`](cgraph_core::ServeLoop) emits.
pub struct FifoServe {
    engine: StreamEngine,
    /// Pending arrivals, ascending by arrival time.
    queue: Vec<Arrival<StreamEngine>>,
    time_scale: f64,
    clock: f64,
}

impl FifoServe {
    /// Wraps a streaming engine; `time_scale` converts modeled
    /// execution seconds to virtual seconds exactly as
    /// [`ServeConfig::time_scale`](cgraph_core::ServeConfig).
    pub fn new(engine: StreamEngine, time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time scale must be finite and > 0"
        );
        FifoServe { engine, queue: Vec::new(), time_scale, clock: 0.0 }
    }

    /// Queues one arrival.
    pub fn offer(&mut self, arrival: Arrival<StreamEngine>) {
        let pos = self
            .queue
            .iter()
            .rposition(|a| a.at <= arrival.at)
            .map_or(0, |p| p + 1);
        self.queue.insert(pos, arrival);
    }

    /// Queues a whole stream of arrivals.
    pub fn offer_all<I: IntoIterator<Item = Arrival<StreamEngine>>>(&mut self, arrivals: I) {
        for a in arrivals {
            self.offer(a);
        }
    }

    /// The wrapped engine (read access; results, metrics, store).
    pub fn engine(&self) -> &StreamEngine {
        &self.engine
    }

    /// Unwraps the engine, e.g. to extract typed results after serving.
    pub fn into_engine(self) -> StreamEngine {
        self.engine
    }

    /// Serves the stream to exhaustion under FIFO admission.
    pub fn serve(&mut self) -> ServeReport {
        let mut jobs: Vec<JobLatency> = Vec::new();
        let mut pending = std::mem::take(&mut self.queue).into_iter().peekable();
        let (mut waves, mut batches) = (0u64, 0u64);
        let (mut loads, mut modeled) = (0u64, 0.0f64);
        let mut completed = true;
        while pending.peek().is_some() {
            // Jump to the next arrival if the engine went idle earlier.
            let next_at = pending.peek().expect("peeked non-empty").at;
            self.clock = self.clock.max(next_at);
            // Admit everything due, strictly in arrival order.
            let batch_start = jobs.len();
            while pending.peek().is_some_and(|a| a.at <= self.clock) {
                let a = pending.next().expect("peeked in-range arrival");
                let (at, name, ts) = (a.at, a.name, a.bind_timestamp());
                let id = a.submit(&mut self.engine, ts);
                jobs.push(JobLatency {
                    job: id,
                    name,
                    arrival: at,
                    admitted: self.clock,
                    completed: f64::NAN, // resolved after the batch drains
                    outcome: JobOutcome::Completed,
                });
            }
            waves += 1;
            // Run the batch (plus any stragglers from earlier batches)
            // to convergence and advance the virtual clock.
            let report = self.engine.run();
            loads += report.loads;
            modeled += report.modeled_seconds;
            completed &= report.completed;
            batches += 1;
            self.clock += report.modeled_seconds * self.time_scale;
            for j in &mut jobs[batch_start..] {
                j.completed = self.clock;
            }
        }
        ServeReport::new(
            "stream-fifo",
            0.0,
            jobs,
            waves,
            batches,
            loads,
            modeled,
            completed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamConfig;
    use cgraph_core::serve::Arrival;
    use cgraph_core::JobEngine;
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Partitioner};

    // Local BFS program (same shape as the stream tests') to avoid a
    // dev-dependency cycle with cgraph-algos.
    struct Bfs;
    impl cgraph_core::VertexProgram for Bfs {
        type Value = u32;
        fn init(&self, info: &cgraph_core::VertexInfo) -> (u32, u32) {
            if info.vid == 0 {
                (u32::MAX, 0)
            } else {
                (u32::MAX, u32::MAX)
            }
        }
        fn identity(&self) -> u32 {
            u32::MAX
        }
        fn acc(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn is_active(&self, v: &u32, d: &u32) -> bool {
            d < v
        }
        fn compute(&self, _i: &cgraph_core::VertexInfo, v: u32, d: u32) -> (u32, Option<u32>) {
            if d < v {
                (d, Some(d))
            } else {
                (v, None)
            }
        }
        fn edge_contrib(&self, b: u32, _w: f32, _i: &cgraph_core::VertexInfo) -> u32 {
            b.saturating_add(1)
        }
    }

    fn bfs_arrival(at: f64) -> Arrival<StreamEngine> {
        Arrival::new(at, "BFS", |e: &mut StreamEngine, ts| {
            e.submit_program_at(Bfs, ts)
        })
    }

    fn serve_with(arrival_times: &[f64]) -> (ServeReport, StreamEngine) {
        let ps = VertexCutPartitioner::new(8).partition(&generate::cycle(32));
        let mut serve = FifoServe::new(
            StreamEngine::from_partitions(ps, StreamConfig::default()),
            1.0,
        );
        serve.offer_all(arrival_times.iter().map(|&t| bfs_arrival(t)));
        let report = serve.serve();
        (report, serve.into_engine())
    }

    #[test]
    fn fifo_serves_all_jobs_with_valid_latencies() {
        let (report, engine) = serve_with(&[0.0, 0.001, 5.0]);
        assert_eq!(report.engine, "stream-fifo");
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(engine.num_jobs(), 3);
        for j in &report.jobs {
            assert!(j.wait() >= 0.0, "{}: wait {}", j.name, j.wait());
            assert!(j.latency() > 0.0);
            assert!(j.completed.is_finite());
        }
        assert!(report.loads > 0);
        assert!(report.throughput() > 0.0);
        // Results are the real program's.
        let d = engine.results::<Bfs>(0).unwrap();
        assert_eq!(d[7], 7);
    }

    #[test]
    fn late_arrival_waits_for_running_batch() {
        // Job 2 arrives while the first batch is (virtually) running, so
        // its admission is deferred to the batch boundary.
        let (report, _) = serve_with(&[0.0, 1e-9]);
        assert_eq!(report.waves, 2);
        let late = &report.jobs[1];
        assert!(
            late.admitted > late.arrival,
            "late arrival must absorb the first batch's drain: admitted {} arrival {}",
            late.admitted,
            late.arrival
        );
        assert_eq!(late.admitted, report.jobs[0].completed);
    }

    #[test]
    fn empty_stream_serves_nothing() {
        let (report, engine) = serve_with(&[]);
        assert!(report.jobs.is_empty());
        assert_eq!(report.loads, 0);
        assert_eq!(engine.num_jobs(), 0);
    }
}
