//! Named baseline configurations matching the paper's comparison systems.

use std::sync::Arc;

use cgraph_graph::snapshot::SnapshotStore;
use cgraph_graph::PartitionSet;
use cgraph_memsim::{CostModel, HierarchyConfig};

use crate::stream::{Interleave, StreamConfig, StreamEngine, StructureSharing};

/// The comparison systems of the paper's §4, as access-discipline models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselinePreset {
    /// Jobs executed one by one (the normalization baseline of Fig. 2).
    Sequential,
    /// CLIP (Ai et al., ATC'17): out-of-core single-job engine — per-job
    /// structure copies, plus data re-entry on loaded partitions.
    Clip,
    /// Nxgraph (Chi et al., ICDE'16): destination-sorted sub-shards —
    /// per-job copies, partition-local sync, no re-entry.
    Nxgraph,
    /// Seraph (Xue et al., HPDC'14 / TC'17): one in-memory structure copy
    /// shared by jobs that still traverse in individual orders; snapshots
    /// are full copies.
    Seraph,
    /// Seraph + Version Traveler (Ju et al., ATC'16): like Seraph but
    /// snapshots switch incrementally, sharing unchanged partitions.
    SeraphVt,
}

impl BaselinePreset {
    /// All presets in the order the paper's figures list them.
    pub const ALL: [BaselinePreset; 5] = [
        BaselinePreset::Sequential,
        BaselinePreset::Clip,
        BaselinePreset::Nxgraph,
        BaselinePreset::Seraph,
        BaselinePreset::SeraphVt,
    ];

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            BaselinePreset::Sequential => "Sequential",
            BaselinePreset::Clip => "CLIP",
            BaselinePreset::Nxgraph => "Nxgraph",
            BaselinePreset::Seraph => "Seraph",
            BaselinePreset::SeraphVt => "Seraph-VT",
        }
    }

    /// The stream configuration modeling this system.
    pub fn config(self, workers: usize, hierarchy: HierarchyConfig) -> StreamConfig {
        let base = StreamConfig {
            workers,
            hierarchy,
            cost: CostModel::default(),
            ..StreamConfig::default()
        };
        match self {
            BaselinePreset::Sequential => StreamConfig {
                sharing: StructureSharing::SharedMemory,
                interleave: Interleave::Sequential,
                incremental_versions: false,
                ..base
            },
            BaselinePreset::Clip => StreamConfig {
                sharing: StructureSharing::PerJob,
                interleave: Interleave::RoundRobin,
                incremental_versions: false,
                reentry: 16,
                ..base
            },
            BaselinePreset::Nxgraph => StreamConfig {
                sharing: StructureSharing::PerJob,
                interleave: Interleave::RoundRobin,
                incremental_versions: false,
                ..base
            },
            BaselinePreset::Seraph => StreamConfig {
                sharing: StructureSharing::SharedMemory,
                interleave: Interleave::RoundRobin,
                incremental_versions: false,
                ..base
            },
            BaselinePreset::SeraphVt => StreamConfig {
                sharing: StructureSharing::SharedMemory,
                interleave: Interleave::RoundRobin,
                incremental_versions: true,
                ..base
            },
        }
    }

    /// Builds an engine over a snapshot store.
    pub fn build(
        self,
        store: Arc<SnapshotStore>,
        workers: usize,
        hierarchy: HierarchyConfig,
    ) -> StreamEngine {
        StreamEngine::new(store, self.config(workers, hierarchy))
    }

    /// Builds an engine over a static graph.
    pub fn build_static(
        self,
        parts: PartitionSet,
        workers: usize,
        hierarchy: HierarchyConfig,
    ) -> StreamEngine {
        self.build(Arc::new(SnapshotStore::new(parts)), workers, hierarchy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_disciplines() {
        let h = HierarchyConfig::default();
        let clip = BaselinePreset::Clip.config(4, h);
        let nx = BaselinePreset::Nxgraph.config(4, h);
        let seraph = BaselinePreset::Seraph.config(4, h);
        let vt = BaselinePreset::SeraphVt.config(4, h);
        assert_eq!(clip.sharing, StructureSharing::PerJob);
        assert!(clip.reentry > 0);
        assert_eq!(nx.reentry, 0);
        assert_eq!(seraph.sharing, StructureSharing::SharedMemory);
        assert!(!seraph.incremental_versions);
        assert!(vt.incremental_versions);
    }

    #[test]
    fn sequential_is_sequential() {
        let c = BaselinePreset::Sequential.config(2, HierarchyConfig::default());
        assert_eq!(c.interleave, Interleave::Sequential);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = BaselinePreset::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
