//! The generic per-job streaming executor behind every baseline.

use std::sync::Arc;

use cgraph_core::exec::ChargeLedger;
use cgraph_core::job::{JobId, JobRuntime, TypedJob};
use cgraph_core::program::VertexProgram;
use cgraph_core::workers::{plan_chunks, run_chunk_tasks};
use cgraph_core::{RunReport, SyncStrategy};
use cgraph_graph::snapshot::SnapshotStore;
use cgraph_graph::{PartitionId, PartitionSet, VersionId};
use cgraph_memsim::{CacheObject, CostModel, HierarchyConfig, JobMetrics};

/// How many copies of the structure data exist across jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructureSharing {
    /// Each job owns private copies (CLIP, Nxgraph): no residency is ever
    /// shared, in cache or memory.
    PerJob,
    /// One copy serves all jobs (Seraph): residency is shared, but each
    /// job still *accesses* it along its own order at its own time.
    SharedMemory,
}

/// How jobs take turns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interleave {
    /// Jobs run one after another to convergence (the paper's
    /// "sequential way", Fig. 2 denominator).
    Sequential,
    /// Jobs alternate partition-by-partition (concurrent execution with
    /// uncoordinated access orders — the interference regime of Fig. 2).
    RoundRobin,
}

/// Configuration of a [`StreamEngine`].
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Worker threads for the trigger stage.
    pub workers: usize,
    /// Simulated tier capacities.
    pub hierarchy: HierarchyConfig,
    /// Cost model for modeled time.
    pub cost: CostModel,
    /// Structure-copy discipline.
    pub sharing: StructureSharing,
    /// `true` = incremental snapshot versions (Seraph-VT / CGraph style);
    /// `false` = every snapshot is a full new copy (plain Seraph).
    pub incremental_versions: bool,
    /// CLIP-style data re-entry rounds per loaded partition (0 = off).
    pub reentry: u64,
    /// Job turn-taking.
    pub interleave: Interleave,
    /// Safety valve on partition loads.
    pub max_loads: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            workers: 4,
            hierarchy: HierarchyConfig::default(),
            cost: CostModel::default(),
            sharing: StructureSharing::SharedMemory,
            incremental_versions: true,
            reentry: 0,
            interleave: Interleave::RoundRobin,
            max_loads: u64::MAX,
        }
    }
}

struct JobEntry {
    runtime: Box<dyn JobRuntime>,
    done: bool,
    /// Rotation offset: this job starts each iteration's sweep here,
    /// modeling "different jobs traverse along different graph paths".
    offset: PartitionId,
}

/// A per-job streaming engine: loads partitions for one job at a time.
pub struct StreamEngine {
    config: StreamConfig,
    store: Arc<SnapshotStore>,
    /// Shared charging/attribution layer (same one the CGraph engine
    /// uses), so the engines differ only in *when and for whom* they
    /// request data — never in how work is accounted.
    ledger: ChargeLedger,
    jobs: Vec<JobEntry>,
    loads: u64,
}

impl StreamEngine {
    /// Creates an engine over a snapshot store.
    pub fn new(store: Arc<SnapshotStore>, config: StreamConfig) -> Self {
        StreamEngine {
            config,
            store,
            ledger: ChargeLedger::new(config.hierarchy),
            jobs: Vec::new(),
            loads: 0,
        }
    }

    /// Convenience constructor for a static graph.
    pub fn from_partitions(parts: PartitionSet, config: StreamConfig) -> Self {
        StreamEngine::new(Arc::new(SnapshotStore::new(parts)), config)
    }

    /// Submits a job bound to the newest snapshot.
    pub fn submit<P: VertexProgram>(&mut self, program: P) -> JobId {
        let ts = self.store.latest_timestamp();
        self.submit_at(program, ts)
    }

    /// Submits a job arriving at `ts` (binds the newest snapshot ≤ `ts`).
    pub fn submit_at<P: VertexProgram>(&mut self, program: P, ts: u64) -> JobId {
        let id = self.jobs.len() as JobId;
        let view = self.store.view_at(ts);
        let np = view.num_partitions() as PartitionId;
        let runtime = TypedJob::new(id, program, view);
        let done = runtime.is_converged();
        // Stagger starting points so concurrent jobs traverse "along
        // different graph paths" like real uncoordinated engines.
        let offset = if np == 0 {
            0
        } else {
            id.wrapping_mul(np / 4 + 1) % np
        };
        self.jobs
            .push(JobEntry { runtime: Box::new(runtime), done, offset });
        self.ledger.register_job();
        id
    }

    /// The version component of a structure cache key for job `j`'s view
    /// of `pid`: incremental versions share unchanged partitions across
    /// snapshots; full-copy mode never shares across snapshots.
    fn effective_version(&self, j: usize, pid: PartitionId) -> VersionId {
        let view = self.jobs[j].runtime.view();
        if self.config.incremental_versions {
            view.version_of(pid)
        } else {
            // Fold the snapshot timestamp in so two snapshots never alias.
            (view.timestamp() as VersionId).wrapping_mul(0x9E37_79B9)
        }
    }

    fn structure_key(&self, j: usize, pid: PartitionId) -> CacheObject {
        let version = self.effective_version(j, pid);
        match self.config.sharing {
            StructureSharing::PerJob => CacheObject::JobStructure { job: j as u32, pid, version },
            StructureSharing::SharedMemory => CacheObject::Structure { pid, version },
        }
    }

    /// The job's next pending partition in *its own* rotated order.
    fn next_partition(&self, j: usize) -> Option<PartitionId> {
        let pending = self.jobs[j].runtime.pending();
        if pending.is_empty() {
            return None;
        }
        let off = self.jobs[j].offset;
        pending
            .iter()
            .copied()
            .find(|&p| p >= off)
            .or_else(|| pending.first().copied())
    }

    /// Loads and processes one partition for one job; pushes if the job's
    /// iteration completed.  Returns `false` if the job had nothing to do.
    fn step_job(&mut self, j: usize) -> bool {
        if self.jobs[j].done {
            return false;
        }
        if self.jobs[j].runtime.is_converged() {
            self.finish_job(j);
            return false;
        }
        let Some(pid) = self.next_partition(j) else {
            return false;
        };

        // Load structure + private table through the shared ledger,
        // reading through the sharded store API: the partition resolves
        // across shard chains transparently and any disk fetch is
        // attributed to the owning shard's I/O lane, so baseline traffic
        // is directly comparable with the CGraph engine's per-lane
        // figures.
        let lane = self.store.shard_of(pid);
        let skey = self.structure_key(j, pid);
        let sbytes = self.jobs[j].runtime.view().partition(pid).structure_bytes();
        let outcome = self.ledger.charge_access_on(lane, j, skey, sbytes);
        // Capacity-spilled snapshot state: when the fetch actually
        // reaches disk and this view resolves the partition through a
        // record the store evicted, the load pays one re-fetch from
        // (modeled) spill storage on the owning lane — the same pricing
        // the CGraph engine applies; cache-resident structures never pay.
        if outcome.bytes_from_disk > 0 && self.jobs[j].runtime.view().partition_spilled(pid) {
            self.ledger.charge_spill_fetch(lane, j, sbytes);
        }
        let tbytes = self.jobs[j].runtime.private_table_bytes(pid);
        self.ledger.charge_access_on(
            lane,
            j,
            CacheObject::PrivateTable { job: j as u32, pid },
            tbytes,
        );

        // Trigger: all workers serve this one job.
        let count = self.jobs[j].runtime.unprocessed_vertices(pid);
        let tasks = plan_chunks(pid, &[count], self.config.workers, true);
        let runtimes: Vec<&dyn JobRuntime> = vec![&*self.jobs[j].runtime];
        let stats = run_chunk_tasks(self.config.workers, &runtimes, &tasks);
        drop(runtimes);
        let mut s = stats[0];
        self.jobs[j].runtime.mark_processed(pid);

        // CLIP-style re-entry while the partition is still resident.
        if self.config.reentry > 0 {
            let extra = self.jobs[j]
                .runtime
                .reenter_partition(pid, self.config.reentry);
            s.vertex_ops += extra.vertex_ops;
            s.edge_ops += extra.edge_ops;
        }

        self.ledger.charge_compute(j, s);

        if self.jobs[j].runtime.iteration_complete() {
            let stats = self.jobs[j].runtime.push_and_advance();
            // Baselines always batch their push records per partition
            // (one private-table touch each), i.e. BatchedSorted charging.
            let runtime = &*self.jobs[j].runtime;
            self.ledger
                .charge_push(j, runtime, &stats, SyncStrategy::BatchedSorted);
            self.ledger.bump_iterations(j);
            if stats.converged {
                self.finish_job(j);
            }
        }
        self.loads += 1;
        true
    }

    fn finish_job(&mut self, j: usize) {
        if !self.jobs[j].done {
            self.jobs[j].done = true;
            self.ledger.evict_job(j as u32);
        }
    }

    /// Runs all submitted jobs to convergence.
    pub fn run(&mut self) -> RunReport {
        let start_metrics = *self.ledger.metrics();
        let start_loads = self.loads;
        let mut completed = true;
        'outer: loop {
            let mut progressed = false;
            match self.config.interleave {
                Interleave::Sequential => {
                    for j in 0..self.jobs.len() {
                        while !self.jobs[j].done {
                            if self.loads - start_loads >= self.config.max_loads {
                                completed = false;
                                break 'outer;
                            }
                            if !self.step_job(j) {
                                break;
                            }
                            progressed = true;
                        }
                    }
                }
                Interleave::RoundRobin => {
                    for j in 0..self.jobs.len() {
                        if self.loads - start_loads >= self.config.max_loads {
                            completed = false;
                            break 'outer;
                        }
                        progressed |= self.step_job(j);
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        let metrics = self.ledger.metrics().since(&start_metrics);
        RunReport {
            loads: self.loads - start_loads,
            metrics,
            modeled_seconds: self
                .config
                .cost
                .total_seconds(&metrics, self.config.workers),
            completed,
        }
    }

    /// Typed results (same contract as [`cgraph_core::Engine::results`]).
    pub fn results<P: VertexProgram>(&self, job: JobId) -> Option<Vec<P::Value>> {
        let entry = self.jobs.get(job as usize)?;
        entry
            .runtime
            .as_any()
            .downcast_ref::<TypedJob<P>>()
            .map(|t| t.extract())
    }

    /// Global counters.
    pub fn metrics(&self) -> &cgraph_memsim::Metrics {
        self.ledger.metrics()
    }

    /// Per-job attributed metrics.
    pub fn job_metrics(&self, job: JobId) -> JobMetrics {
        self.ledger.job_metrics(job as usize)
    }

    /// Disk bytes fetched through each snapshot-store shard's I/O lane.
    pub fn shard_fetch_bytes(&self) -> &[u64] {
        self.ledger.shard_fetch_bytes()
    }

    /// Spill-storage re-fetch bytes per lane (capacity-eviction
    /// round-trips, a subset of the lane fetch figures).
    pub fn spill_fetch_bytes(&self) -> &[u64] {
        self.ledger.spill_fetch_bytes()
    }

    /// Disk fetch bytes jobs pulled from outside their home shards (the
    /// lane carrying most of each job's traffic).
    pub fn cross_shard_fetch_bytes(&self) -> u64 {
        self.ledger.cross_shard_fetch_bytes()
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The snapshot store.
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Number of submitted jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Modeled makespan so far.
    pub fn modeled_seconds(&self) -> f64 {
        self.config
            .cost
            .total_seconds(self.ledger.metrics(), self.config.workers)
    }

    /// Modeled CPU utilization so far.
    pub fn utilization(&self) -> f64 {
        self.config
            .cost
            .utilization(self.ledger.metrics(), self.config.workers)
    }
}

impl cgraph_core::JobEngine for StreamEngine {
    fn submit_program<P: VertexProgram>(&mut self, program: P) -> JobId {
        self.submit(program)
    }

    fn submit_program_at<P: VertexProgram>(&mut self, program: P, ts: u64) -> JobId {
        self.submit_at(program, ts)
    }

    fn run_jobs(&mut self) -> RunReport {
        self.run()
    }

    fn typed_results<P: VertexProgram>(&self, job: JobId) -> Option<Vec<P::Value>> {
        self.results::<P>(job)
    }

    fn job_metrics_of(&self, job: JobId) -> JobMetrics {
        self.job_metrics(job)
    }

    fn global_metrics(&self) -> cgraph_memsim::Metrics {
        *self.metrics()
    }

    fn cost(&self) -> CostModel {
        self.config.cost
    }

    fn workers(&self) -> usize {
        self.config.workers
    }

    fn is_concurrent(&self) -> bool {
        self.config.interleave == Interleave::RoundRobin
    }

    fn snapshot_store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Partitioner};

    // A tiny local BFS program to avoid a dev-dependency cycle with
    // cgraph-algos (which already dev-depends on this crate's presets).
    struct Bfs;
    impl VertexProgram for Bfs {
        type Value = u32;
        fn init(&self, info: &cgraph_core::VertexInfo) -> (u32, u32) {
            if info.vid == 0 {
                (u32::MAX, 0)
            } else {
                (u32::MAX, u32::MAX)
            }
        }
        fn identity(&self) -> u32 {
            u32::MAX
        }
        fn acc(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn is_active(&self, v: &u32, d: &u32) -> bool {
            d < v
        }
        fn compute(&self, _i: &cgraph_core::VertexInfo, v: u32, d: u32) -> (u32, Option<u32>) {
            if d < v {
                (d, Some(d))
            } else {
                (v, None)
            }
        }
        fn edge_contrib(&self, b: u32, _w: f32, _i: &cgraph_core::VertexInfo) -> u32 {
            b.saturating_add(1)
        }
    }

    fn engine(cfg: StreamConfig) -> StreamEngine {
        let el = generate::cycle(32);
        let ps = VertexCutPartitioner::new(8).partition(&el);
        StreamEngine::from_partitions(ps, cfg)
    }

    #[test]
    fn sequential_converges_correctly() {
        let mut e =
            engine(StreamConfig { interleave: Interleave::Sequential, ..StreamConfig::default() });
        let j = e.submit(Bfs);
        assert!(e.run().completed);
        let d = e.results::<Bfs>(j).unwrap();
        assert_eq!(d[5], 5);
        assert_eq!(d[31], 31);
    }

    #[test]
    fn round_robin_converges_correctly() {
        let mut e = engine(StreamConfig::default());
        let a = e.submit(Bfs);
        let b = e.submit(Bfs);
        assert!(e.run().completed);
        assert_eq!(e.results::<Bfs>(a).unwrap(), e.results::<Bfs>(b).unwrap());
    }

    #[test]
    fn reentry_reduces_loads() {
        let mut plain = engine(StreamConfig::default());
        let j = plain.submit(Bfs);
        let r_plain = plain.run();
        let mut clip = engine(StreamConfig { reentry: 64, ..StreamConfig::default() });
        let j2 = clip.submit(Bfs);
        let r_clip = clip.run();
        assert_eq!(
            plain.results::<Bfs>(j).unwrap(),
            clip.results::<Bfs>(j2).unwrap()
        );
        assert!(
            r_clip.loads < r_plain.loads,
            "re-entry {} vs plain {}",
            r_clip.loads,
            r_plain.loads
        );
    }

    #[test]
    fn per_job_sharing_doubles_disk_traffic() {
        let mk = |sharing| {
            let mut e = engine(StreamConfig { sharing, ..StreamConfig::default() });
            e.submit(Bfs);
            e.submit(Bfs);
            e.run().metrics
        };
        let shared = mk(StructureSharing::SharedMemory);
        let private = mk(StructureSharing::PerJob);
        assert!(
            private.bytes_disk_to_mem > shared.bytes_disk_to_mem,
            "private {} vs shared {}",
            private.bytes_disk_to_mem,
            shared.bytes_disk_to_mem
        );
    }

    #[test]
    fn max_loads_stops_early() {
        let mut e = engine(StreamConfig { max_loads: 3, ..StreamConfig::default() });
        e.submit(Bfs);
        let r = e.run();
        assert!(!r.completed);
        assert!(r.loads <= 3);
    }

    /// The sharded store is transparent to a streaming baseline: same
    /// results and identical global counters at any shard count (only
    /// the per-lane attribution of disk fetches differs).
    #[test]
    fn sharded_store_reads_transparently() {
        let run = |shards: usize| {
            let el = generate::cycle(32);
            let ps = VertexCutPartitioner::new(8).partition(&el);
            let store = std::sync::Arc::new(SnapshotStore::with_shards(ps, shards));
            let mut e = StreamEngine::new(store, StreamConfig::default());
            let j = e.submit(Bfs);
            let report = e.run();
            assert!(report.completed);
            (
                e.results::<Bfs>(j).unwrap(),
                report.metrics,
                e.shard_fetch_bytes().to_vec(),
            )
        };
        let (res1, m1, lanes1) = run(1);
        let (res4, m4, lanes4) = run(4);
        assert_eq!(res1, res4);
        assert_eq!(m1, m4, "global counters must not depend on sharding");
        assert_eq!(lanes1.iter().sum::<u64>(), lanes4.iter().sum::<u64>());
        assert!(lanes1.len() <= 1, "one lane when unsharded");
        assert!(
            lanes4.iter().filter(|&&b| b > 0).count() > 1,
            "disk fetches must spread across shard lanes: {lanes4:?}"
        );
    }

    #[test]
    fn job_offsets_differ() {
        let mut e = engine(StreamConfig::default());
        e.submit(Bfs);
        e.submit(Bfs);
        e.submit(Bfs);
        // Offsets rotate; at least one job must not start at partition 0.
        assert!(e.jobs.iter().any(|j| j.offset != 0));
    }
}
