//! Diurnal job-arrival trace generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of iterative job submitted (matching the paper's mix).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// PageRank-like: touches every partition, long-running.
    PageRank,
    /// SSSP-like: frontier-driven, medium coverage.
    Sssp,
    /// SCC-like: multi-phase, high coverage.
    Scc,
    /// BFS-like: frontier-driven, light.
    Bfs,
}

impl JobKind {
    /// The rotation order the paper's experiments submit jobs in.
    pub const ROTATION: [JobKind; 4] =
        [JobKind::PageRank, JobKind::Sssp, JobKind::Scc, JobKind::Bfs];

    /// Typical fraction of partitions a job of this kind keeps active.
    pub fn coverage(self) -> f64 {
        match self {
            JobKind::PageRank => 1.0,
            JobKind::Sssp => 0.8,
            JobKind::Scc => 0.9,
            JobKind::Bfs => 0.6,
        }
    }

    /// Relative duration scale of this kind.
    pub fn duration_scale(self) -> f64 {
        match self {
            JobKind::PageRank => 1.5,
            JobKind::Sssp => 0.8,
            JobKind::Scc => 1.2,
            JobKind::Bfs => 0.5,
        }
    }
}

/// One submitted job's lifetime in the trace.
#[derive(Clone, Copy, Debug)]
pub struct JobSpan {
    /// Submission time in hours from trace start.
    pub submit_hour: f64,
    /// Completion time in hours.
    pub end_hour: f64,
    /// Job kind.
    pub kind: JobKind,
}

impl JobSpan {
    /// Whether the job is running at hour `t`.
    pub fn active_at(&self, t: f64) -> bool {
        self.submit_hour <= t && t < self.end_hour
    }

    /// The traced duration in hours.
    pub fn duration_hours(&self) -> f64 {
        self.end_hour - self.submit_hour
    }

    /// Submission time rescaled to virtual seconds — the serving
    /// layer's clock unit.  `seconds_per_hour` compresses the trace so
    /// arrival gaps land on the same scale as modeled execution time
    /// (the real trace spans a week; a simulated run spans milliseconds).
    pub fn submit_seconds(&self, seconds_per_hour: f64) -> f64 {
        self.submit_hour * seconds_per_hour
    }
}

/// Trace-generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Trace length in hours (the paper shows ~168 h ≈ one week).
    pub hours: u32,
    /// Mean off-peak arrival rate (jobs/hour).
    pub base_rate: f64,
    /// Additional arrivals/hour at the daily peak.
    pub peak_rate: f64,
    /// Mean job duration in hours (scaled per kind).
    pub mean_duration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { hours: 168, base_rate: 1.0, peak_rate: 5.0, mean_duration: 2.5, seed: 0xFACE }
    }
}

/// Instantaneous arrival rate at hour `t`: diurnal sine-squared peak,
/// damped on weekends.
pub fn arrival_rate(cfg: &TraceConfig, t: f64) -> f64 {
    let hour_of_day = t % 24.0;
    let day = (t / 24.0) as u64 % 7;
    let weekend = day >= 5;
    let diurnal = (std::f64::consts::PI * (hour_of_day - 8.0) / 24.0)
        .sin()
        .powi(2);
    let weekday_factor = if weekend { 0.5 } else { 1.0 };
    cfg.base_rate + cfg.peak_rate * diurnal * weekday_factor
}

/// Generates the trace: non-homogeneous Poisson arrivals via thinning,
/// kinds rotating through the paper's four-job mix, exponential durations.
pub fn generate_trace(cfg: &TraceConfig) -> Vec<JobSpan> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rate_max = cfg.base_rate + cfg.peak_rate;
    let mut spans = Vec::new();
    let mut t = 0.0f64;
    let mut k = 0usize;
    loop {
        // Exponential inter-arrival at the envelope rate, thinned.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate_max;
        if t >= cfg.hours as f64 {
            break;
        }
        let accept: f64 = rng.gen();
        if accept > arrival_rate(cfg, t) / rate_max {
            continue;
        }
        let kind = JobKind::ROTATION[k % 4];
        k += 1;
        let d: f64 = rng.gen_range(f64::EPSILON..1.0);
        let duration = -d.ln() * cfg.mean_duration * kind.duration_scale();
        spans.push(JobSpan { submit_hour: t, end_hour: t + duration.max(0.05), kind });
    }
    spans
}

/// Number of concurrently-running jobs sampled at each hour —
/// the paper's Fig. 1(a).
pub fn active_jobs_per_hour(trace: &[JobSpan], hours: u32) -> Vec<u32> {
    (0..hours)
        .map(|h| {
            let t = h as f64 + 0.5;
            trace.iter().filter(|s| s.active_at(t)).count() as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let cfg = TraceConfig::default();
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(a.len(), b.len());
        assert!((a[0].submit_hour - b[0].submit_hour).abs() < 1e-12);
    }

    #[test]
    fn arrivals_within_bounds() {
        let cfg = TraceConfig::default();
        for s in generate_trace(&cfg) {
            assert!(s.submit_hour >= 0.0 && s.submit_hour < cfg.hours as f64);
            assert!(s.end_hour > s.submit_hour);
        }
    }

    #[test]
    fn peak_hours_busier_than_troughs() {
        let cfg = TraceConfig { hours: 24 * 14, ..TraceConfig::default() };
        let trace = generate_trace(&cfg);
        let counts = active_jobs_per_hour(&trace, cfg.hours);
        // Average over daily peak (hour 20) vs trough (hour 8) samples.
        let avg = |h0: u32| -> f64 {
            let xs: Vec<f64> = (0..14)
                .map(|d| counts[(d * 24 + h0) as usize] as f64)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg(20) > avg(8), "peak {} vs trough {}", avg(20), avg(8));
    }

    #[test]
    fn rate_respects_weekend_damping() {
        let cfg = TraceConfig::default();
        let weekday_peak = arrival_rate(&cfg, 20.0);
        let weekend_peak = arrival_rate(&cfg, 5.0 * 24.0 + 20.0);
        assert!(weekday_peak > weekend_peak);
    }

    #[test]
    fn concurrency_reaches_double_digits() {
        // With default parameters the peak should resemble Fig. 1(a)'s
        // "more than 20 CGP jobs at the peak time".
        let cfg = TraceConfig::default();
        let counts = active_jobs_per_hour(&generate_trace(&cfg), cfg.hours);
        let max = *counts.iter().max().unwrap();
        assert!(max >= 10, "peak concurrency {max} too low");
    }

    #[test]
    fn submit_seconds_rescales_hours() {
        let s = JobSpan { submit_hour: 2.5, end_hour: 4.0, kind: JobKind::Bfs };
        assert!((s.submit_seconds(3600.0) - 9000.0).abs() < 1e-9);
        assert!((s.submit_seconds(0.01) - 0.025).abs() < 1e-12);
        assert!((s.duration_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn kinds_rotate() {
        let cfg = TraceConfig { hours: 24, ..TraceConfig::default() };
        let trace = generate_trace(&cfg);
        assert!(trace.len() >= 4);
        assert_eq!(trace[0].kind, JobKind::PageRank);
        assert_eq!(trace[1].kind, JobKind::Sssp);
        assert_eq!(trace[2].kind, JobKind::Scc);
        assert_eq!(trace[3].kind, JobKind::Bfs);
    }
}
