//! Shared-partition ratio analysis (paper Fig. 1(b)).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::workload::JobSpan;

/// How per-job active-partition sets are sampled when measuring sharing.
#[derive(Clone, Copy, Debug)]
pub struct SharedRatioConfig {
    /// Number of graph partitions.
    pub num_partitions: usize,
    /// RNG seed for the per-job active sets.
    pub seed: u64,
}

impl Default for SharedRatioConfig {
    fn default() -> Self {
        SharedRatioConfig { num_partitions: 64, seed: 0xBEEF }
    }
}

/// Fraction of *active* partitions (needed by ≥ 1 job) that are needed by
/// **more than** `min_jobs` jobs — exactly the paper's Fig. 1(b) y-axis.
pub fn shared_ratio(job_sets: &[Vec<bool>], min_jobs: usize) -> f64 {
    if job_sets.is_empty() {
        return 0.0;
    }
    let np = job_sets[0].len();
    let mut active = 0usize;
    let mut shared = 0usize;
    for p in 0..np {
        let count = job_sets.iter().filter(|s| s[p]).count();
        if count >= 1 {
            active += 1;
            if count > min_jobs {
                shared += 1;
            }
        }
    }
    if active == 0 {
        0.0
    } else {
        shared as f64 / active as f64
    }
}

/// Samples Fig. 1(b): for each hour, the ratios of active partitions shared
/// by more than 1, 2, 4, 8 and 16 jobs.
///
/// Each running job's active set is drawn from its kind's coverage with a
/// popularity skew: low-id partitions (the core subgraph) are active for
/// every job, mirroring the skewed partition popularity the paper traces.
pub fn sample_shared_ratios(
    trace: &[JobSpan],
    hours: u32,
    cfg: &SharedRatioConfig,
) -> Vec<[f64; 5]> {
    let thresholds = [1usize, 2, 4, 8, 16];
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..hours)
        .map(|h| {
            let t = h as f64 + 0.5;
            let sets: Vec<Vec<bool>> = trace
                .iter()
                .filter(|s| s.active_at(t))
                .map(|s| {
                    let coverage = s.kind.coverage();
                    (0..cfg.num_partitions)
                        .map(|p| {
                            // Popularity decays with partition id; hot
                            // partitions are in every job's active set.
                            let popularity =
                                1.0 - 0.6 * (p as f64 / cfg.num_partitions.max(1) as f64);
                            rng.gen::<f64>() < coverage * popularity
                        })
                        .collect()
                })
                .collect();
            let mut row = [0.0f64; 5];
            for (i, &k) in thresholds.iter().enumerate() {
                row[i] = shared_ratio(&sets, k);
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_trace, TraceConfig};

    #[test]
    fn ratio_counts_strictly_more_than_k() {
        // Partition 0 used by 2 jobs, partition 1 by 1 job.
        let sets = vec![vec![true, true], vec![true, false]];
        assert!((shared_ratio(&sets, 1) - 0.5).abs() < 1e-12);
        assert_eq!(shared_ratio(&sets, 2), 0.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(shared_ratio(&[], 1), 0.0);
        let sets = vec![vec![false, false]];
        assert_eq!(shared_ratio(&sets, 0), 0.0);
    }

    #[test]
    fn ratios_monotone_in_threshold() {
        let cfg = TraceConfig::default();
        let trace = generate_trace(&cfg);
        let rows = sample_shared_ratios(&trace, 48, &SharedRatioConfig::default());
        for row in rows {
            for w in row.windows(2) {
                assert!(w[0] >= w[1], "row not monotone: {row:?}");
            }
        }
    }

    #[test]
    fn busy_hours_share_more() {
        let cfg = TraceConfig::default();
        let trace = generate_trace(&cfg);
        let rows = sample_shared_ratios(&trace, cfg.hours, &SharedRatioConfig::default());
        let counts = crate::workload::active_jobs_per_hour(&trace, cfg.hours);
        let busiest = (0..cfg.hours as usize).max_by_key(|&h| counts[h]).unwrap();
        let quietest = (0..cfg.hours as usize).min_by_key(|&h| counts[h]).unwrap();
        assert!(rows[busiest][0] >= rows[quietest][0]);
    }

    #[test]
    fn high_concurrency_reproduces_paper_headline() {
        // At hours with >= 4 jobs, >75 % of active partitions should be
        // shared by more than one job (the paper's headline observation).
        let cfg = TraceConfig::default();
        let trace = generate_trace(&cfg);
        let counts = crate::workload::active_jobs_per_hour(&trace, cfg.hours);
        let rows = sample_shared_ratios(&trace, cfg.hours, &SharedRatioConfig::default());
        let busy: Vec<f64> = (0..cfg.hours as usize)
            .filter(|&h| counts[h] >= 4)
            .map(|h| rows[h][0])
            .collect();
        assert!(!busy.is_empty());
        let avg = busy.iter().sum::<f64>() / busy.len() as f64;
        assert!(avg > 0.75, "average shared ratio {avg}");
    }
}
