//! Synthetic CGP-job workload traces (paper Fig. 1 stand-in).
//!
//! The paper motivates CGraph with a week-long trace from a large Chinese
//! social network: up to 20+ concurrent iterative jobs over the same graph
//! (Fig. 1(a)), with more than 75 % of active partitions shared by several
//! jobs at any time (Fig. 1(b)).  That trace is proprietary, so this crate
//! synthesizes one with the same structure: diurnal Poisson arrivals with a
//! weekday/weekend profile, per-job durations, and per-job active-partition
//! sets whose overlap is measured exactly as in the paper.

pub mod shared;
pub mod workload;

pub use shared::{sample_shared_ratios, shared_ratio, SharedRatioConfig};
pub use workload::{active_jobs_per_hour, generate_trace, JobKind, JobSpan, TraceConfig};
