//! Forward reachability closure from a source vertex.

use cgraph_core::{IncrementalProgram, VertexInfo, VertexProgram};
use cgraph_graph::{VertexId, Weight};

/// Reachability job: `true` for every vertex reachable from `source`.
#[derive(Clone, Copy, Debug)]
pub struct Reachability {
    /// Source vertex.
    pub source: VertexId,
}

impl Reachability {
    /// Creates a reachability job from `source`.
    pub fn new(source: VertexId) -> Self {
        Reachability { source }
    }
}

impl VertexProgram for Reachability {
    type Value = bool;

    fn name(&self) -> String {
        "Reachability".to_string()
    }

    fn init(&self, info: &VertexInfo) -> (bool, bool) {
        (false, info.vid == self.source)
    }

    fn identity(&self) -> bool {
        false
    }

    fn acc(&self, a: bool, b: bool) -> bool {
        a || b
    }

    fn is_active(&self, value: &bool, delta: &bool) -> bool {
        *delta && !*value
    }

    fn compute(&self, _info: &VertexInfo, _value: bool, _delta: bool) -> (bool, Option<bool>) {
        (true, Some(true))
    }

    fn edge_contrib(&self, basis: bool, _w: Weight, _info: &VertexInfo) -> bool {
        basis
    }
}

/// Monotone: reachability only ever flips `false -> true`, and `acc`
/// is boolean-or — added edges can only reach more vertices, so a
/// converged result seeds a resumed run on a grown graph.
impl IncrementalProgram for Reachability {}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::{Engine, EngineConfig};
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, GraphBuilder, Partitioner};

    fn run(el: &cgraph_graph::EdgeList, parts: usize, source: VertexId) -> Vec<bool> {
        let ps = VertexCutPartitioner::new(parts).partition(el);
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        let job = engine.submit(Reachability::new(source));
        assert!(engine.run().completed);
        engine.results::<Reachability>(job).unwrap()
    }

    #[test]
    fn follows_direction() {
        let el = GraphBuilder::new(4).edges([(0, 1), (1, 2), (3, 2)]).build();
        let r = run(&el, 2, 0);
        assert_eq!(r, vec![true, true, true, false]);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let el = generate::rmat(8, 4, generate::RmatParams::default(), 67);
        let got = run(&el, 6, 0);
        let csr = cgraph_graph::Csr::from_edges(&el);
        let expect: Vec<bool> = crate::reference::bfs(&csr, 0)
            .into_iter()
            .map(|d| d != u32::MAX)
            .collect();
        assert_eq!(got, expect);
    }
}
