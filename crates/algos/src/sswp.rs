//! Single-source widest paths (max-min capacity).

use cgraph_core::{IncrementalProgram, VertexInfo, VertexProgram};
use cgraph_graph::{VertexId, Weight};

/// SSWP job: the widest-path capacity from `source` to every vertex, where
/// edge weights are capacities and a path's width is its minimum edge.
#[derive(Clone, Copy, Debug)]
pub struct Sswp {
    /// Source vertex.
    pub source: VertexId,
}

impl Sswp {
    /// Creates an SSWP job from `source`.
    pub fn new(source: VertexId) -> Self {
        Sswp { source }
    }
}

impl VertexProgram for Sswp {
    type Value = f32;

    fn name(&self) -> String {
        "SSWP".to_string()
    }

    fn init(&self, info: &VertexInfo) -> (f32, f32) {
        if info.vid == self.source {
            (0.0, f32::INFINITY)
        } else {
            (0.0, 0.0)
        }
    }

    fn identity(&self) -> f32 {
        0.0
    }

    fn acc(&self, a: f32, b: f32) -> f32 {
        a.max(b)
    }

    fn is_active(&self, value: &f32, delta: &f32) -> bool {
        delta > value
    }

    fn compute(&self, _info: &VertexInfo, value: f32, delta: f32) -> (f32, Option<f32>) {
        if delta > value {
            (delta, Some(delta))
        } else {
            (value, None)
        }
    }

    fn edge_contrib(&self, basis: f32, weight: Weight, _info: &VertexInfo) -> f32 {
        basis.min(weight)
    }
}

/// Monotone: path widths only ever grow under the max `acc`, and
/// added edges can only create wider paths, so a converged width map
/// seeds a resumed run on a grown graph.
impl IncrementalProgram for Sswp {}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::{Engine, EngineConfig};
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, GraphBuilder, Partitioner};

    fn run(el: &cgraph_graph::EdgeList, parts: usize, source: VertexId) -> Vec<f32> {
        let ps = VertexCutPartitioner::new(parts).partition(el);
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        let job = engine.submit(Sswp::new(source));
        assert!(engine.run().completed);
        engine.results::<Sswp>(job).unwrap()
    }

    #[test]
    fn picks_widest_of_two_paths() {
        // 0 -(3)-> 1 -(3)-> 3 is wider than 0 -(9)-> 2 -(1)-> 3.
        let el = GraphBuilder::new(4)
            .weighted_edge(0, 1, 3.0)
            .weighted_edge(1, 3, 3.0)
            .weighted_edge(0, 2, 9.0)
            .weighted_edge(2, 3, 1.0)
            .build();
        let w = run(&el, 2, 0);
        assert_eq!(w[3], 3.0);
        assert_eq!(w[2], 9.0);
        assert!(w[0].is_infinite());
    }

    #[test]
    fn unreachable_width_zero() {
        let el = GraphBuilder::new(3).weighted_edge(0, 1, 2.0).build();
        let w = run(&el, 2, 0);
        assert_eq!(w[2], 0.0);
    }

    #[test]
    fn matches_reference_on_rmat() {
        let el = generate::rmat(8, 5, generate::RmatParams::default(), 53);
        let w = run(&el, 8, 0);
        let csr = cgraph_graph::Csr::from_edges(&el);
        let rf = crate::reference::sswp(&csr, 0);
        for v in 0..el.num_vertices() as usize {
            let (a, b) = (w[v], rf[v]);
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3,
                "v{v}: engine {a} vs reference {b}"
            );
        }
    }
}
