//! Trace → arrival-stream adapter: `cgraph_trace::JobSpan`s become
//! [`Arrival`]s carrying real vertex programs.
//!
//! The trace crate names job *kinds*; this adapter binds each kind to
//! the concrete program the serving layer submits.  [`JobKind::Scc`]
//! maps to [`Wcc`]: the multi-phase SCC driver needs host-side
//! coordination between phases that a fire-and-forget arrival stream
//! cannot carry, so its trace slot is served by the single-program
//! min-label propagation its coloring phase is built on (same
//! high-coverage access profile).

use cgraph_core::serve::Arrival;
use cgraph_core::JobEngine;
use cgraph_trace::{JobKind, JobSpan};

use crate::{Bfs, PageRank, Sssp, Wcc};

/// Builds the arrival for one trace span.  `index` is the span's
/// position in the trace (it seeds per-job source vertices, rotating
/// through `source_mod` distinct sources like the benchmark harness);
/// `seconds_per_hour` compresses trace hours onto the serving clock.
pub fn arrival_for<E: JobEngine + 'static>(
    span: &JobSpan,
    index: usize,
    seconds_per_hour: f64,
    source_mod: u32,
) -> Arrival<E> {
    let at = span.submit_seconds(seconds_per_hour);
    let src = (index as u32).wrapping_mul(17) % source_mod.max(1);
    match span.kind {
        JobKind::PageRank => Arrival::new(at, "PageRank", move |e: &mut E, ts| {
            e.submit_program_at(PageRank::default(), ts)
        }),
        JobKind::Sssp => Arrival::new(at, "SSSP", move |e: &mut E, ts| {
            e.submit_program_at(Sssp::new(src), ts)
        }),
        JobKind::Scc => Arrival::new(at, "WCC", move |e: &mut E, ts| e.submit_program_at(Wcc, ts)),
        JobKind::Bfs => Arrival::new(at, "BFS", move |e: &mut E, ts| {
            e.submit_program_at(Bfs::new(src), ts)
        }),
    }
}

/// Adapts a whole generated trace into an arrival stream, in trace
/// order.  `source_mod` should not exceed the graph's vertex count
/// (sources rotate over `0..source_mod`).
pub fn trace_arrivals<E: JobEngine + 'static>(
    trace: &[JobSpan],
    seconds_per_hour: f64,
    source_mod: u32,
) -> Vec<Arrival<E>> {
    trace
        .iter()
        .enumerate()
        .map(|(i, span)| arrival_for(span, i, seconds_per_hour, source_mod))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::{Engine, EngineConfig};
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Partitioner};

    fn span(kind: JobKind, hour: f64) -> JobSpan {
        JobSpan { submit_hour: hour, end_hour: hour + 1.0, kind }
    }

    #[test]
    fn kinds_map_to_programs_and_times_rescale() {
        let trace = [
            span(JobKind::PageRank, 0.0),
            span(JobKind::Sssp, 1.0),
            span(JobKind::Scc, 2.0),
            span(JobKind::Bfs, 3.0),
        ];
        let arrivals = trace_arrivals::<Engine>(&trace, 0.5, 16);
        let names: Vec<&str> = arrivals.iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["PageRank", "SSSP", "WCC", "BFS"]);
        let ats: Vec<f64> = arrivals.iter().map(|a| a.at).collect();
        assert_eq!(ats, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn submitted_arrivals_run_to_correct_results() {
        let ps = VertexCutPartitioner::new(4).partition(&generate::cycle(16));
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        let trace = [span(JobKind::Bfs, 0.0)];
        for a in trace_arrivals::<Engine>(&trace, 1.0, 1) {
            let ts = a.bind_timestamp();
            a.submit(&mut engine, ts);
        }
        assert!(engine.run().completed);
        let d = engine.results::<Bfs>(0).unwrap();
        assert_eq!(d[5], 5, "BFS from source 0 on a 16-cycle");
    }
}
