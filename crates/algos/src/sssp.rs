//! Single-source shortest paths (the paper's Fig. 7(b) instantiation).

use cgraph_core::{IncrementalProgram, VertexInfo, VertexProgram};
use cgraph_graph::{VertexId, Weight};

/// SSSP job: min-plus relaxation from a source vertex.
///
/// Edge weights are interpreted as non-negative distances.
#[derive(Clone, Copy, Debug)]
pub struct Sssp {
    /// Source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// Creates an SSSP job from `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }
}

impl VertexProgram for Sssp {
    type Value = f32;

    fn name(&self) -> String {
        "SSSP".to_string()
    }

    fn init(&self, info: &VertexInfo) -> (f32, f32) {
        if info.vid == self.source {
            (f32::INFINITY, 0.0)
        } else {
            (f32::INFINITY, f32::INFINITY)
        }
    }

    fn identity(&self) -> f32 {
        f32::INFINITY
    }

    fn acc(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    fn is_active(&self, value: &f32, delta: &f32) -> bool {
        delta < value
    }

    fn compute(&self, _info: &VertexInfo, value: f32, delta: f32) -> (f32, Option<f32>) {
        if delta < value {
            (delta, Some(delta))
        } else {
            (value, None)
        }
    }

    fn edge_contrib(&self, basis: f32, weight: Weight, _info: &VertexInfo) -> f32 {
        basis + weight
    }
}

/// Monotone: distances only ever shrink under the min `acc`, and
/// added edges can only create shorter paths, so a converged
/// distance map seeds a resumed run on a grown graph.
impl IncrementalProgram for Sssp {}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::{Engine, EngineConfig};
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, GraphBuilder, Partitioner};

    fn run(el: &cgraph_graph::EdgeList, parts: usize, source: VertexId) -> Vec<f32> {
        let ps = VertexCutPartitioner::new(parts).partition(el);
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        let job = engine.submit(Sssp::new(source));
        assert!(engine.run().completed);
        engine.results::<Sssp>(job).unwrap()
    }

    #[test]
    fn weighted_diamond_picks_short_side() {
        let el = GraphBuilder::new(4)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(0, 2, 5.0)
            .weighted_edge(1, 3, 1.0)
            .weighted_edge(2, 3, 1.0)
            .build();
        let d = run(&el, 2, 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 5.0);
        assert_eq!(d[3], 2.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let el = GraphBuilder::new(3).edge(0, 1).build();
        let d = run(&el, 2, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn matches_dijkstra_on_rmat() {
        let el = generate::rmat(8, 6, generate::RmatParams::default(), 23);
        let d = run(&el, 8, 0);
        let csr = cgraph_graph::Csr::from_edges(&el);
        let rf = crate::reference::sssp(&csr, 0);
        for v in 0..el.num_vertices() as usize {
            let (a, b) = (d[v], rf[v]);
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3,
                "v{v}: engine {a} vs dijkstra {b}"
            );
        }
    }
}
