//! Strongly connected components as concurrent engine phases.
//!
//! The paper benchmarks SCC (citing Hong et al.'s trim + forward/backward
//! method) as one of the four CGP jobs.  Here SCC is a *driver* that
//! repeatedly submits two vertex-program phases to the engine — so its
//! partition accesses share the cache with whatever other jobs are running,
//! exactly like any other CGP job:
//!
//! 1. [`Coloring`] — forward max-color propagation over the unassigned
//!    subgraph: `color(v) = 1 + max{u : u reaches v}`.
//! 2. [`BackwardMatch`] — from each color root (the vertex whose id names
//!    its color), propagate backward through same-colored vertices; the
//!    matched set is one SCC.
//!
//! Between rounds the driver *trims* trivially-singleton vertices (no
//! unassigned predecessors or successors) host-side, the standard
//! acceleration from the literature.

use std::sync::Arc;

use cgraph_core::{EdgeDirection, JobEngine, JobId, VertexInfo, VertexProgram};
use cgraph_graph::{EdgeList, VertexId, Weight};

/// Phase 1: forward color propagation over unassigned vertices.
///
/// Colors are `vid + 1` so that 0 can be the max-accumulator identity.
#[derive(Clone, Debug)]
pub struct Coloring {
    /// Vertices already assigned to an SCC (inert in this phase).
    pub assigned: Arc<Vec<bool>>,
}

impl VertexProgram for Coloring {
    type Value = u32;

    fn name(&self) -> String {
        "SCC/color".to_string()
    }

    fn init(&self, info: &VertexInfo) -> (u32, u32) {
        if self.assigned[info.vid as usize] {
            (u32::MAX, 0)
        } else {
            (0, info.vid + 1)
        }
    }

    fn identity(&self) -> u32 {
        0
    }

    fn acc(&self, a: u32, b: u32) -> u32 {
        a.max(b)
    }

    fn is_active(&self, value: &u32, delta: &u32) -> bool {
        delta > value
    }

    fn compute(&self, _info: &VertexInfo, value: u32, delta: u32) -> (u32, Option<u32>) {
        if delta > value {
            (delta, Some(delta))
        } else {
            (value, None)
        }
    }

    fn edge_contrib(&self, basis: u32, _w: Weight, _info: &VertexInfo) -> u32 {
        basis
    }
}

/// Phase 2: backward matching within one color class.
///
/// Value is `(color, matched)`; deltas are colors accumulated with `min`
/// (arrivals at a vertex always carry colors ≥ its own, so `min` preserves
/// the own-color arrival).
#[derive(Clone, Debug)]
pub struct BackwardMatch {
    /// Colors from the preceding [`Coloring`] phase.
    pub colors: Arc<Vec<u32>>,
    /// Vertices already assigned to an SCC (inert).
    pub assigned: Arc<Vec<bool>>,
}

impl VertexProgram for BackwardMatch {
    type Value = (u32, bool);

    fn name(&self) -> String {
        "SCC/match".to_string()
    }

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::In
    }

    fn init(&self, info: &VertexInfo) -> ((u32, bool), (u32, bool)) {
        let v = info.vid as usize;
        if self.assigned[v] {
            return ((0, true), (u32::MAX, false));
        }
        let c = self.colors[v];
        if c == info.vid + 1 {
            // Color root: seed the backward wave at itself.
            ((c, false), (c, false))
        } else {
            ((c, false), (u32::MAX, false))
        }
    }

    fn identity(&self) -> (u32, bool) {
        (u32::MAX, false)
    }

    fn acc(&self, a: (u32, bool), b: (u32, bool)) -> (u32, bool) {
        (a.0.min(b.0), false)
    }

    fn is_active(&self, value: &(u32, bool), delta: &(u32, bool)) -> bool {
        delta.0 == value.0 && !value.1
    }

    fn compute(
        &self,
        _info: &VertexInfo,
        value: (u32, bool),
        _delta: (u32, bool),
    ) -> ((u32, bool), Option<(u32, bool)>) {
        ((value.0, true), Some((value.0, false)))
    }

    fn edge_contrib(&self, basis: (u32, bool), _w: Weight, _info: &VertexInfo) -> (u32, bool) {
        basis
    }

    fn finalize(&self, _info: &VertexInfo, value: (u32, bool), delta: (u32, bool)) -> (u32, bool) {
        // Only an own-color arrival may mark a match; foreign residual
        // deltas must not (they are merely unconsumed noise).
        if delta.0 == value.0 && !value.1 {
            (value.0, true)
        } else {
            value
        }
    }
}

/// The SCC driver: trims, colors, matches, repeats.
#[derive(Debug)]
pub struct SccDriver {
    n: usize,
    out_adj: Vec<Vec<VertexId>>,
    in_adj: Vec<Vec<VertexId>>,
    scc: Vec<Option<VertexId>>,
    rounds: u64,
    phase_jobs: Vec<JobId>,
}

impl SccDriver {
    /// Builds the driver's host-side adjacency from an edge list (used only
    /// for trimming and progress bookkeeping — all propagation runs on the
    /// engine's shared partitions).
    pub fn new(edges: &EdgeList) -> Self {
        let n = edges.num_vertices() as usize;
        let mut out_adj = vec![Vec::new(); n];
        let mut in_adj = vec![Vec::new(); n];
        for e in edges.edges() {
            if e.src != e.dst {
                out_adj[e.src as usize].push(e.dst);
                in_adj[e.dst as usize].push(e.src);
            }
        }
        SccDriver { n, out_adj, in_adj, scc: vec![None; n], rounds: 0, phase_jobs: Vec::new() }
    }

    /// Number of color/match rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Ids of every phase job the driver submitted (for metric
    /// aggregation: the "SCC job" is the sum of its phases).
    pub fn phase_jobs(&self) -> &[JobId] {
        &self.phase_jobs
    }

    /// Peels unassigned vertices with no unassigned predecessors or no
    /// unassigned successors — they are singleton SCCs.
    fn trim(&mut self) {
        let mut out_cnt: Vec<u32> = vec![0; self.n];
        let mut in_cnt: Vec<u32> = vec![0; self.n];
        for v in 0..self.n {
            if self.scc[v].is_some() {
                continue;
            }
            out_cnt[v] = self.out_adj[v]
                .iter()
                .filter(|&&t| self.scc[t as usize].is_none())
                .count() as u32;
            in_cnt[v] = self.in_adj[v]
                .iter()
                .filter(|&&s| self.scc[s as usize].is_none())
                .count() as u32;
        }
        let mut queue: Vec<usize> = (0..self.n)
            .filter(|&v| self.scc[v].is_none() && (out_cnt[v] == 0 || in_cnt[v] == 0))
            .collect();
        while let Some(v) = queue.pop() {
            if self.scc[v].is_some() {
                continue;
            }
            self.scc[v] = Some(v as VertexId);
            for &t in &self.out_adj[v] {
                let t = t as usize;
                if self.scc[t].is_none() {
                    in_cnt[t] = in_cnt[t].saturating_sub(1);
                    if in_cnt[t] == 0 {
                        queue.push(t);
                    }
                }
            }
            for &s in &self.in_adj[v] {
                let s = s as usize;
                if self.scc[s].is_none() {
                    out_cnt[s] = out_cnt[s].saturating_sub(1);
                    if out_cnt[s] == 0 {
                        queue.push(s);
                    }
                }
            }
        }
    }

    /// Runs to completion on `engine`, returning each vertex's SCC id (the
    /// id of one representative member).
    ///
    /// Other jobs already submitted to the engine keep executing
    /// concurrently with each phase — that is the point.
    pub fn run<E: JobEngine>(&mut self, engine: &mut E) -> Vec<VertexId> {
        let ts = engine.snapshot_store().latest_timestamp();
        self.run_at(engine, ts)
    }

    /// Like [`run`](Self::run), but every phase job arrives at time `ts`,
    /// binding the matching snapshot (the driver must have been built from
    /// that snapshot's edges).
    pub fn run_at<E: JobEngine>(&mut self, engine: &mut E, ts: u64) -> Vec<VertexId> {
        self.trim();
        while self.scc.iter().any(|s| s.is_none()) {
            let assigned: Arc<Vec<bool>> = Arc::new(self.scc.iter().map(|s| s.is_some()).collect());
            let cjob = engine.submit_program_at(Coloring { assigned: Arc::clone(&assigned) }, ts);
            self.phase_jobs.push(cjob);
            engine.run_jobs();
            let colors = engine
                .typed_results::<Coloring>(cjob)
                .expect("coloring job typed results");
            let mjob = engine.submit_program_at(
                BackwardMatch { colors: Arc::new(colors.clone()), assigned: Arc::clone(&assigned) },
                ts,
            );
            self.phase_jobs.push(mjob);
            engine.run_jobs();
            let matched = engine
                .typed_results::<BackwardMatch>(mjob)
                .expect("match job typed results");
            let mut progress = false;
            for v in 0..self.n {
                if self.scc[v].is_none() && matched[v].1 {
                    self.scc[v] = Some(colors[v] - 1);
                    progress = true;
                }
            }
            assert!(progress, "SCC round made no progress");
            self.rounds += 1;
            self.trim();
        }
        self.scc.iter().map(|s| s.expect("all assigned")).collect()
    }
}

/// Convenience entry point: runs SCC on the engine's latest snapshot.
pub fn run_scc<E: JobEngine>(engine: &mut E) -> Vec<VertexId> {
    let edges = engine.snapshot_store().latest().edges_global();
    SccDriver::new(&edges).run(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::EngineConfig;
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, GraphBuilder, Partitioner};

    fn canonical(ids: &[VertexId]) -> Vec<VertexId> {
        // Relabel each component by its minimum member for comparison.
        let n = ids.len();
        let mut min_of = std::collections::HashMap::new();
        for (v, &id) in ids.iter().enumerate() {
            let e = min_of.entry(id).or_insert(v as VertexId);
            *e = (*e).min(v as VertexId);
        }
        (0..n).map(|v| min_of[&ids[v]]).collect()
    }

    fn run_on(el: &cgraph_graph::EdgeList, parts: usize) -> Vec<VertexId> {
        let ps = VertexCutPartitioner::new(parts).partition(el);
        let mut engine = cgraph_core::Engine::from_partitions(ps, EngineConfig::default());
        run_scc(&mut engine)
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // SCCs: {0,1,2}, {3,4}, plus 2->3 bridge.
        let el = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)])
            .build();
        let got = canonical(&run_on(&el, 2));
        assert_eq!(got, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn dag_is_all_singletons() {
        let el = generate::grid(3, 3);
        let got = canonical(&run_on(&el, 3));
        let expect: Vec<VertexId> = (0..9).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn full_cycle_is_one_component() {
        let el = generate::cycle(7);
        let got = canonical(&run_on(&el, 3));
        assert_eq!(got, vec![0; 7]);
    }

    #[test]
    fn matches_tarjan_on_rmat() {
        let el = generate::rmat(7, 4, generate::RmatParams::default(), 71);
        let got = canonical(&run_on(&el, 6));
        let expect = canonical(&crate::reference::scc(&el));
        assert_eq!(got, expect);
    }

    #[test]
    fn reverse_path_trims_in_one_shot() {
        let el = GraphBuilder::new(6)
            .edges([(5, 4), (4, 3), (3, 2), (2, 1), (1, 0)])
            .build();
        let ps = VertexCutPartitioner::new(2).partition(&el);
        let mut engine = cgraph_core::Engine::from_partitions(ps, EngineConfig::default());
        let mut driver = SccDriver::new(&el);
        let got = canonical(&driver.run(&mut engine));
        assert_eq!(got, (0..6).collect::<Vec<_>>());
        assert_eq!(driver.rounds(), 0, "trim should fully peel a DAG");
    }
}
