//! Single-threaded reference implementations.
//!
//! These are deliberately simple, textbook algorithms on the flat
//! [`Csr`]/[`EdgeList`] views.  Every engine in the workspace — CGraph and
//! all baselines — is validated against them in unit and integration tests.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cgraph_graph::{Csr, EdgeList, VertexId};

/// Reference delta-PageRank to fixpoint (`p = (1-d) + d·Σ p/deg⁺`).
pub fn pagerank(csr: &Csr, damping: f64, epsilon: f64, max_iters: u64) -> Vec<f64> {
    let n = csr.num_vertices() as usize;
    let mut value = vec![0.0f64; n];
    let mut delta = vec![1.0 - damping; n];
    for _ in 0..max_iters {
        if delta.iter().all(|d| d.abs() <= epsilon) {
            break;
        }
        let mut next = vec![0.0f64; n];
        for v in 0..n {
            if delta[v].abs() <= epsilon {
                continue;
            }
            value[v] += delta[v];
            let deg = csr.out_degree(v as VertexId).max(1) as f64;
            let share = damping * delta[v] / deg;
            for &t in csr.neighbors(v as VertexId) {
                next[t as usize] += share;
            }
            delta[v] = 0.0;
        }
        for v in 0..n {
            delta[v] += next[v];
        }
    }
    for v in 0..n {
        value[v] += delta[v];
    }
    value
}

/// Reference Dijkstra (non-negative weights).
pub fn sssp(csr: &Csr, source: VertexId) -> Vec<f32> {
    let n = csr.num_vertices() as usize;
    let mut dist = vec![f32::INFINITY; n];
    dist[source as usize] = 0.0;
    let mut heap: BinaryHeap<Reverse<(ordered::F32, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((ordered::F32(0.0), source)));
    while let Some(Reverse((ordered::F32(d), v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (t, w) in csr.edges_of(v) {
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse((ordered::F32(nd), t)));
            }
        }
    }
    dist
}

/// Reference BFS hop counts.
pub fn bfs(csr: &Csr, source: VertexId) -> Vec<u32> {
    let n = csr.num_vertices() as usize;
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &t in csr.neighbors(v) {
                if dist[t as usize] == u32::MAX {
                    dist[t as usize] = level;
                    next.push(t);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Reference weakly connected components: each vertex labeled with the
/// minimum vertex id in its component (isolated vertices label themselves).
pub fn wcc(edges: &EdgeList) -> Vec<u32> {
    let n = edges.num_vertices() as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for e in edges.edges() {
        let (a, b) = (find(&mut parent, e.src), find(&mut parent, e.dst));
        if a != b {
            // Union by smaller id so the final label is the component min.
            let (lo, hi) = (a.min(b), a.max(b));
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Reference SCC via iterative Tarjan; returns a component id per vertex
/// (ids are arbitrary but consistent).
pub fn scc(edges: &EdgeList) -> Vec<u32> {
    let csr = Csr::from_edges(edges);
    let n = csr.num_vertices() as usize;
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![u32::MAX; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    // Explicit DFS frame: (vertex, next-edge cursor).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        frames.push((start, 0));
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor == 0 {
                index[v as usize] = next_index;
                low[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            let neigh = csr.neighbors(v);
            if *cursor < neigh.len() {
                let t = neigh[*cursor];
                *cursor += 1;
                if index[t as usize] == u32::MAX {
                    frames.push((t, 0));
                } else if on_stack[t as usize] {
                    low[v as usize] = low[v as usize].min(index[t as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Reference single-source widest paths (max-min Dijkstra variant).
pub fn sswp(csr: &Csr, source: VertexId) -> Vec<f32> {
    let n = csr.num_vertices() as usize;
    let mut width = vec![0.0f32; n];
    width[source as usize] = f32::INFINITY;
    let mut heap: BinaryHeap<(ordered::F32, VertexId)> = BinaryHeap::new();
    heap.push((ordered::F32(f32::INFINITY), source));
    while let Some((ordered::F32(w), v)) = heap.pop() {
        if w < width[v as usize] {
            continue;
        }
        for (t, cap) in csr.edges_of(v) {
            let nw = w.min(cap);
            if nw > width[t as usize] {
                width[t as usize] = nw;
                heap.push((ordered::F32(nw), t));
            }
        }
    }
    width
}

/// Reference Katz centrality.
pub fn katz(csr: &Csr, alpha: f64, epsilon: f64, max_iters: u64) -> Vec<f64> {
    let n = csr.num_vertices() as usize;
    let mut value = vec![0.0f64; n];
    let mut delta = vec![1.0f64; n];
    for _ in 0..max_iters {
        if delta.iter().all(|d| d.abs() <= epsilon) {
            break;
        }
        let mut next = vec![0.0f64; n];
        for v in 0..n {
            if delta[v].abs() <= epsilon {
                continue;
            }
            value[v] += delta[v];
            for &t in csr.neighbors(v as VertexId) {
                next[t as usize] += alpha * delta[v];
            }
            delta[v] = 0.0;
        }
        for v in 0..n {
            delta[v] += next[v];
        }
    }
    for v in 0..n {
        value[v] += delta[v];
    }
    value
}

/// Total-ordering wrapper for finite-or-infinite `f32` heap keys.
mod ordered {
    /// An `f32` with total ordering (NaN-free by construction).
    #[derive(Clone, Copy, PartialEq)]
    pub struct F32(pub f32);

    impl Eq for F32 {}

    impl PartialOrd for F32 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for F32 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::{generate, GraphBuilder};

    #[test]
    fn pagerank_cycle_uniform() {
        let csr = Csr::from_edges(&generate::cycle(5));
        let pr = pagerank(&csr, 0.85, 1e-10, 10_000);
        for p in pr {
            assert!((p - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn dijkstra_diamond() {
        let el = GraphBuilder::new(4)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(0, 2, 4.0)
            .weighted_edge(1, 3, 1.0)
            .weighted_edge(2, 3, 1.0)
            .build();
        let d = sssp(&Csr::from_edges(&el), 0);
        assert_eq!(d, vec![0.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn bfs_levels() {
        let csr = Csr::from_edges(&generate::path(4));
        assert_eq!(bfs(&csr, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&csr, 2), vec![u32::MAX, u32::MAX, 0, 1]);
    }

    #[test]
    fn wcc_components() {
        let el = GraphBuilder::new(5).edges([(0, 1), (3, 2)]).build();
        assert_eq!(wcc(&el), vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn tarjan_on_two_cycles() {
        let el = GraphBuilder::new(5)
            .edges([(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (1, 2)])
            .build();
        let c = scc(&el);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[2], c[3]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[2]);
    }

    #[test]
    fn tarjan_handles_deep_paths_iteratively() {
        // A 50k-vertex path would overflow a recursive Tarjan's stack.
        let el = generate::path(50_000);
        let c = scc(&el);
        let mut sorted = c.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50_000, "all singletons");
    }

    #[test]
    fn sswp_diamond() {
        let el = GraphBuilder::new(4)
            .weighted_edge(0, 1, 3.0)
            .weighted_edge(1, 3, 3.0)
            .weighted_edge(0, 2, 9.0)
            .weighted_edge(2, 3, 1.0)
            .build();
        let w = sswp(&Csr::from_edges(&el), 0);
        assert_eq!(w[3], 3.0);
    }

    #[test]
    fn katz_path_monotone() {
        let csr = Csr::from_edges(&generate::path(4));
        let k = katz(&csr, 0.1, 1e-12, 1000);
        assert!(k[3] > k[2] && k[2] > k[1] && k[1] > k[0]);
    }
}
