//! Iterative graph algorithms for the CGraph engine.
//!
//! Each algorithm is a [`cgraph_core::VertexProgram`] — the paper's
//! three-function interface (`IsNotConvergent` / `Compute` / `Acc`,
//! Fig. 7) — so any of them can run as one of many concurrent jobs:
//!
//! * [`PageRank`] — delta-PageRank (Fig. 7(a)).
//! * [`Sssp`] — single-source shortest paths (Fig. 7(b)).
//! * [`Bfs`] — breadth-first hop counts.
//! * [`Wcc`] — weakly connected components (min-label, undirected).
//! * [`scc`] — strongly connected components via forward coloring +
//!   backward matching phases with host-side trimming.
//! * [`Sswp`] — single-source widest paths.
//! * [`Katz`] — Katz centrality.
//! * [`Reachability`] — forward reachability closure.
//!
//! [`reference`] holds simple single-threaded implementations of the same
//! algorithms used to validate every engine in the workspace, and
//! [`arrivals`] adapts `cgraph_trace` job spans into the serving layer's
//! arrival stream with these programs bound.

pub mod arrivals;
pub mod bfs;
pub mod katz;
pub mod pagerank;
pub mod reach;
pub mod reference;
pub mod scc;
pub mod sssp;
pub mod sswp;
pub mod wcc;

pub use arrivals::{arrival_for, trace_arrivals};
pub use bfs::Bfs;
pub use katz::Katz;
pub use pagerank::PageRank;
pub use reach::Reachability;
pub use scc::{run_scc, SccDriver};
pub use sssp::Sssp;
pub use sswp::Sswp;
pub use wcc::Wcc;

/// The four benchmark jobs of the paper's evaluation (§4), in submission
/// order: PageRank, SSSP, SCC, BFS.  SCC is a multi-phase driver, so the
/// harness submits its phases through [`SccDriver`]; this enum names the
/// mix for reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchmarkJob {
    /// PageRank with the default damping factor.
    PageRank,
    /// Single-source shortest paths from vertex 0.
    Sssp,
    /// Strongly connected components.
    Scc,
    /// Breadth-first search from vertex 0.
    Bfs,
}

impl BenchmarkJob {
    /// The paper's four-job mix.
    pub const ALL: [BenchmarkJob; 4] = [
        BenchmarkJob::PageRank,
        BenchmarkJob::Sssp,
        BenchmarkJob::Scc,
        BenchmarkJob::Bfs,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkJob::PageRank => "PageRank",
            BenchmarkJob::Sssp => "SSSP",
            BenchmarkJob::Scc => "SCC",
            BenchmarkJob::Bfs => "BFS",
        }
    }
}
