//! Weakly connected components via undirected min-label propagation.

use cgraph_core::{EdgeDirection, IncrementalProgram, VertexInfo, VertexProgram};
use cgraph_graph::Weight;

/// WCC job: every vertex converges to the minimum vertex id in its weakly
/// connected component.
///
/// Uses [`EdgeDirection::Both`], so labels flow across edges in both
/// orientations of the shared partitions' local CSRs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Wcc;

impl VertexProgram for Wcc {
    type Value = u32;

    fn name(&self) -> String {
        "WCC".to_string()
    }

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Both
    }

    fn init(&self, info: &VertexInfo) -> (u32, u32) {
        (u32::MAX, info.vid)
    }

    fn identity(&self) -> u32 {
        u32::MAX
    }

    fn acc(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn is_active(&self, value: &u32, delta: &u32) -> bool {
        delta < value
    }

    fn compute(&self, _info: &VertexInfo, value: u32, delta: u32) -> (u32, Option<u32>) {
        if delta < value {
            (delta, Some(delta))
        } else {
            (value, None)
        }
    }

    fn edge_contrib(&self, basis: u32, _w: Weight, _info: &VertexInfo) -> u32 {
        basis
    }
}

/// Monotone: component labels only ever shrink under the min `acc`,
/// and added edges can only merge components (shrink labels further),
/// so a converged labelling seeds a resumed run on a grown graph.
impl IncrementalProgram for Wcc {}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::{Engine, EngineConfig};
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, GraphBuilder, Partitioner};

    fn run(el: &cgraph_graph::EdgeList, parts: usize) -> Vec<u32> {
        let ps = VertexCutPartitioner::new(parts).partition(el);
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        let job = engine.submit(Wcc);
        assert!(engine.run().completed);
        engine.results::<Wcc>(job).unwrap()
    }

    #[test]
    fn two_components() {
        let el = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (4, 3), (5, 4)])
            .build();
        let labels = run(&el, 3);
        assert_eq!(&labels[0..3], &[0, 0, 0]);
        assert_eq!(&labels[3..6], &[3, 3, 3]);
    }

    #[test]
    fn direction_is_ignored_for_weak_connectivity() {
        // 2 -> 0 and 2 -> 1: all three are weakly connected.
        let el = GraphBuilder::new(3).edges([(2, 0), (2, 1)]).build();
        assert_eq!(run(&el, 2), vec![0, 0, 0]);
    }

    #[test]
    fn matches_union_find_on_rmat() {
        let el = generate::rmat(8, 3, generate::RmatParams::default(), 41);
        let got = run(&el, 8);
        let expect = crate::reference::wcc(&el);
        assert_eq!(got, expect);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let el = cgraph_graph::EdgeList::from_edges(vec![cgraph_graph::Edge::unit(0, 1)], 4);
        let labels = run(&el, 2);
        assert_eq!(labels, vec![0, 0, 2, 3]);
    }
}
