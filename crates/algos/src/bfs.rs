//! Breadth-first search: minimum hop counts from a source.

use cgraph_core::{IncrementalProgram, VertexInfo, VertexProgram};
use cgraph_graph::{VertexId, Weight};

/// BFS job: hop distance from `source` along out-edges.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// Source vertex.
    pub source: VertexId,
}

impl Bfs {
    /// Creates a BFS job from `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs { source }
    }
}

impl VertexProgram for Bfs {
    type Value = u32;

    fn name(&self) -> String {
        "BFS".to_string()
    }

    fn init(&self, info: &VertexInfo) -> (u32, u32) {
        if info.vid == self.source {
            (u32::MAX, 0)
        } else {
            (u32::MAX, u32::MAX)
        }
    }

    fn identity(&self) -> u32 {
        u32::MAX
    }

    fn acc(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn is_active(&self, value: &u32, delta: &u32) -> bool {
        delta < value
    }

    fn compute(&self, _info: &VertexInfo, value: u32, delta: u32) -> (u32, Option<u32>) {
        if delta < value {
            (delta, Some(delta))
        } else {
            (value, None)
        }
    }

    fn edge_contrib(&self, basis: u32, _w: Weight, _info: &VertexInfo) -> u32 {
        basis.saturating_add(1)
    }
}

/// Monotone: levels only ever shrink under the min `acc`, and added
/// edges can only create shorter paths, so a converged level map
/// seeds a resumed run on a grown graph.
impl IncrementalProgram for Bfs {}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::{Engine, EngineConfig};
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Partitioner};

    fn run(el: &cgraph_graph::EdgeList, parts: usize, source: VertexId) -> Vec<u32> {
        let ps = VertexCutPartitioner::new(parts).partition(el);
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        let job = engine.submit(Bfs::new(source));
        assert!(engine.run().completed);
        engine.results::<Bfs>(job).unwrap()
    }

    #[test]
    fn hops_on_grid() {
        let el = generate::grid(4, 4);
        let d = run(&el, 4, 0);
        // Manhattan distance on a right/down grid.
        for r in 0..4u32 {
            for c in 0..4u32 {
                assert_eq!(d[(r * 4 + c) as usize], r + c, "({r},{c})");
            }
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let el = generate::rmat(8, 5, generate::RmatParams::default(), 31);
        let d = run(&el, 6, 0);
        let csr = cgraph_graph::Csr::from_edges(&el);
        assert_eq!(d, crate::reference::bfs(&csr, 0));
    }

    #[test]
    fn source_outside_edges_converges_immediately() {
        // Source 5 is isolated: only itself reachable.
        let el = cgraph_graph::EdgeList::from_edges(vec![cgraph_graph::Edge::unit(0, 1)], 6);
        let d = run(&el, 2, 5);
        assert_eq!(d[5], 0);
        assert_eq!(d[0], u32::MAX);
    }
}
