//! Katz centrality via delta accumulation.

use cgraph_core::{VertexInfo, VertexProgram};
use cgraph_graph::Weight;

/// Katz centrality job: `katz(v) = Σ_k α^k · |paths of length k ending at v|`.
///
/// Converges only when `alpha` is below the reciprocal of the graph's
/// spectral radius; choose a small `alpha` for heavy-tailed graphs.
#[derive(Clone, Copy, Debug)]
pub struct Katz {
    /// Attenuation factor α.
    pub alpha: f64,
    /// Convergence threshold ε on pending deltas.
    pub epsilon: f64,
}

impl Default for Katz {
    fn default() -> Self {
        Katz { alpha: 0.005, epsilon: 1e-6 }
    }
}

impl Katz {
    /// Creates a Katz job.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1)` or `epsilon <= 0`.
    pub fn new(alpha: f64, epsilon: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        assert!(epsilon > 0.0, "epsilon must be positive");
        Katz { alpha, epsilon }
    }
}

impl VertexProgram for Katz {
    type Value = f64;

    fn name(&self) -> String {
        "Katz".to_string()
    }

    fn init(&self, _info: &VertexInfo) -> (f64, f64) {
        (0.0, 1.0)
    }

    fn identity(&self) -> f64 {
        0.0
    }

    fn acc(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn is_active(&self, _value: &f64, delta: &f64) -> bool {
        delta.abs() > self.epsilon
    }

    fn compute(&self, _info: &VertexInfo, value: f64, delta: f64) -> (f64, Option<f64>) {
        (value + delta, Some(delta))
    }

    fn edge_contrib(&self, basis: f64, _w: Weight, _info: &VertexInfo) -> f64 {
        self.alpha * basis
    }

    fn delta_magnitude(&self, delta: &f64) -> f64 {
        delta.abs()
    }

    fn finalize(&self, _info: &VertexInfo, value: f64, delta: f64) -> f64 {
        value + delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::{Engine, EngineConfig};
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Partitioner};

    fn run(el: &cgraph_graph::EdgeList, parts: usize, alpha: f64) -> Vec<f64> {
        let ps = VertexCutPartitioner::new(parts).partition(el);
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        let job = engine.submit(Katz::new(alpha, 1e-9));
        assert!(engine.run().completed);
        engine.results::<Katz>(job).unwrap()
    }

    #[test]
    fn sink_of_path_has_highest_centrality() {
        let k = run(&generate::path(5), 2, 0.1);
        for v in 0..4 {
            assert!(k[v + 1] > k[v], "centrality must grow along the path");
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let el = generate::rmat(7, 4, generate::RmatParams::default(), 61);
        let k = run(&el, 4, 0.002);
        let csr = cgraph_graph::Csr::from_edges(&el);
        let rf = crate::reference::katz(&csr, 0.002, 1e-12, 10_000);
        for v in 0..el.num_vertices() as usize {
            assert!((k[v] - rf[v]).abs() < 1e-6 * rf[v].max(1.0), "v{v}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        Katz::new(0.0, 1e-6);
    }
}
