//! Delta-PageRank (the paper's Fig. 7(a) instantiation).
//!
//! Vertices accumulate rank *deltas*; a vertex folds its pending delta into
//! its rank and forwards `d·Δ/out_degree` to each successor.  The fixpoint
//! is the unnormalized PageRank `p(v) = (1-d) + d·Σ p(u)/deg⁺(u)`.

use cgraph_core::{VertexInfo, VertexProgram};
use cgraph_graph::Weight;

/// Delta-PageRank job.
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor `d` (paper-standard 0.85).
    pub damping: f64,
    /// Convergence threshold ε on pending deltas.
    pub epsilon: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank { damping: 0.85, epsilon: 1e-3 }
    }
}

impl PageRank {
    /// Creates a PageRank job with the given damping and epsilon.
    ///
    /// # Panics
    ///
    /// Panics if `damping` is outside `(0, 1)` or `epsilon <= 0`.
    pub fn new(damping: f64, epsilon: f64) -> Self {
        assert!(damping > 0.0 && damping < 1.0, "damping must be in (0, 1)");
        assert!(epsilon > 0.0, "epsilon must be positive");
        PageRank { damping, epsilon }
    }
}

impl VertexProgram for PageRank {
    type Value = f64;

    fn name(&self) -> String {
        "PageRank".to_string()
    }

    fn init(&self, _info: &VertexInfo) -> (f64, f64) {
        (0.0, 1.0 - self.damping)
    }

    fn identity(&self) -> f64 {
        0.0
    }

    fn acc(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn is_active(&self, _value: &f64, delta: &f64) -> bool {
        delta.abs() > self.epsilon
    }

    fn compute(&self, _info: &VertexInfo, value: f64, delta: f64) -> (f64, Option<f64>) {
        (value + delta, Some(delta))
    }

    fn edge_contrib(&self, basis: f64, _w: Weight, info: &VertexInfo) -> f64 {
        self.damping * basis / info.out_degree.max(1) as f64
    }

    fn delta_magnitude(&self, delta: &f64) -> f64 {
        delta.abs()
    }

    fn finalize(&self, _info: &VertexInfo, value: f64, delta: f64) -> f64 {
        value + delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_core::{Engine, EngineConfig};
    use cgraph_graph::vertex_cut::VertexCutPartitioner;
    use cgraph_graph::{generate, Partitioner};

    fn run(el: &cgraph_graph::EdgeList, parts: usize) -> Vec<f64> {
        let ps = VertexCutPartitioner::new(parts).partition(el);
        let mut engine = Engine::from_partitions(ps, EngineConfig::default());
        let job = engine.submit(PageRank::new(0.85, 1e-7));
        let report = engine.run();
        assert!(report.completed);
        engine.results::<PageRank>(job).unwrap()
    }

    #[test]
    fn uniform_on_cycle() {
        // On a cycle every vertex has rank 1.0 (unnormalized fixpoint).
        let pr = run(&generate::cycle(8), 3);
        for (v, p) in pr.iter().enumerate() {
            assert!((p - 1.0).abs() < 1e-4, "v{v}: {p}");
        }
    }

    #[test]
    fn hub_outranks_spokes() {
        let pr = run(&generate::star(10), 4);
        for v in 1..10 {
            assert!(pr[0] > pr[v], "hub must outrank spoke {v}");
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let el = generate::rmat(8, 4, generate::RmatParams::default(), 17);
        let pr = run(&el, 8);
        let csr = cgraph_graph::Csr::from_edges(&el);
        let rf = crate::reference::pagerank(&csr, 0.85, 1e-9, 10_000);
        for v in 0..el.num_vertices() as usize {
            assert!(
                (pr[v] - rf[v]).abs() < 1e-3 * rf[v].max(1.0),
                "v{v}: engine {} vs reference {}",
                pr[v],
                rf[v]
            );
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_rejected() {
        PageRank::new(1.5, 1e-3);
    }
}
