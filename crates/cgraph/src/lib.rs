//! # CGraph: correlations-aware concurrent iterative graph processing
//!
//! A from-scratch Rust reproduction of *"CGraph: A Correlations-aware
//! Approach for Efficient Concurrent Iterative Graph Processing"*
//! (Zhang et al., USENIX ATC 2018).
//!
//! Many iterative analytics jobs (PageRank, SSSP, SCC, BFS, …) often run
//! *concurrently over the same graph*.  CGraph decouples the shared graph
//! structure from per-job vertex state and streams structure partitions
//! through the cache **once per round for all jobs** (the LTP —
//! Load-Trigger-Push — model), ordered by a correlations-aware scheduler.
//! The result is a much lower data-access-to-compute ratio and, in the
//! paper, up to 2.31× higher throughput than the best prior system.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`graph`] — CSR, vertex-cut + core-subgraph partitioning, generators,
//!   I/O, evolving-graph snapshots.
//! * [`memsim`] — the partition-granular memory-hierarchy simulator and
//!   cost model behind every reproducible "time"/"miss rate" figure.
//! * [`core`] — the LTP engine, scheduler, and vertex-program API.
//! * [`algos`] — eight algorithms expressed as vertex programs, plus
//!   single-threaded references.
//! * [`baselines`] — access-discipline models of CLIP, Nxgraph, Seraph,
//!   Seraph-VT and sequential execution.
//! * [`trace`] — synthetic CGP workload traces (the paper's Fig. 1).
//!
//! # Quickstart
//!
//! ```
//! use cgraph::core::{Engine, EngineConfig, JobEngine};
//! use cgraph::algos::{Bfs, PageRank};
//! use cgraph::graph::vertex_cut::VertexCutPartitioner;
//! use cgraph::graph::{generate, Partitioner};
//!
//! // Build and partition a graph once...
//! let edges = generate::rmat(10, 8, generate::RmatParams::default(), 42);
//! let parts = VertexCutPartitioner::new(16).partition(&edges);
//!
//! // ...then run any number of jobs concurrently over it.
//! let mut engine = Engine::from_partitions(parts, EngineConfig::default());
//! let pr = engine.submit(PageRank::default());
//! let bfs = engine.submit(Bfs::new(0));
//! let report = engine.run();
//! assert!(report.completed);
//! let ranks = engine.results::<PageRank>(pr).unwrap();
//! let hops = engine.results::<Bfs>(bfs).unwrap();
//! assert_eq!(ranks.len(), hops.len());
//! ```

pub use cgraph_algos as algos;
pub use cgraph_baselines as baselines;
pub use cgraph_core as core;
pub use cgraph_graph as graph;
pub use cgraph_memsim as memsim;
pub use cgraph_trace as trace;
