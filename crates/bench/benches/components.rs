//! Component micro-benchmarks: partitioners, push strategies, straggler
//! splitting, scheduler picking, LRU operations, and single algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgraph_algos::{Bfs, PageRank, Sssp, Wcc};
use cgraph_bench::ingest_stream;
use cgraph_core::scheduler::{OrderScheduler, PriorityScheduler, Scheduler, SlotInfo};
use cgraph_core::{Engine, EngineConfig, SyncStrategy};
use cgraph_graph::core_subgraph::{CoreSubgraphPartitioner, CoreThreshold};
use cgraph_graph::snapshot::{CompactionPolicy, SnapshotStore};
use cgraph_graph::vertex_cut::VertexCutPartitioner;
use cgraph_graph::{generate, EdgeList, Partitioner};
use cgraph_memsim::{CacheObject, LruCache};

fn graph() -> EdgeList {
    generate::rmat(12, 8, generate::RmatParams::default(), 1)
}

fn bench_partitioners(c: &mut Criterion) {
    let el = graph();
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    group.bench_function("vertex_cut/32", |b| {
        b.iter(|| VertexCutPartitioner::new(32).partition(&el))
    });
    group.bench_function("core_subgraph/32", |b| {
        b.iter(|| CoreSubgraphPartitioner::new(32, CoreThreshold::TopFraction(0.05)).partition(&el))
    });
    group.finish();
}

fn bench_push_strategies(c: &mut Criterion) {
    let el = generate::rmat(11, 6, generate::RmatParams::default(), 2);
    let ps = VertexCutPartitioner::new(24).partition(&el);
    let mut group = c.benchmark_group("push_strategy");
    group.sample_size(10);
    for (name, sync) in [
        ("batched_sorted", SyncStrategy::BatchedSorted),
        ("immediate", SyncStrategy::Immediate),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut e = Engine::from_partitions(
                    ps.clone(),
                    EngineConfig { sync, workers: 2, ..EngineConfig::default() },
                );
                e.submit(PageRank::new(0.85, 1e-4));
                e.submit(Sssp::new(0));
                e.run()
            })
        });
    }
    group.finish();
}

fn bench_straggler_split(c: &mut Criterion) {
    let el = generate::rmat(11, 6, generate::RmatParams::default(), 3);
    let ps = VertexCutPartitioner::new(24).partition(&el);
    let mut group = c.benchmark_group("straggler_split");
    group.sample_size(10);
    for (name, split) in [("on", true), ("off", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut e = Engine::from_partitions(
                    ps.clone(),
                    EngineConfig { straggler_split: split, workers: 2, ..EngineConfig::default() },
                );
                e.submit(PageRank::new(0.85, 1e-4));
                e.submit(Bfs::new(0));
                e.run()
            })
        });
    }
    group.finish();
}

fn bench_scheduler_pick(c: &mut Criterion) {
    let slots: Vec<SlotInfo> = (0..256)
        .map(|i| SlotInfo {
            pid: i,
            version: 0,
            shard: i as usize % 4,
            num_jobs: (i as usize * 7) % 9 + 1,
            avg_degree: (i as f64 * 1.37) % 40.0,
            avg_change: (i as f64 * 0.11) % 3.0,
        })
        .collect();
    let mut group = c.benchmark_group("scheduler_pick_256_slots");
    group.bench_function("priority", |b| {
        let mut s = PriorityScheduler::new(0.5);
        b.iter(|| s.pick(&slots))
    });
    group.bench_function("fixed_order", |b| {
        let mut s = OrderScheduler;
        b.iter(|| s.pick(&slots))
    });
    group.finish();
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru_access_mixed", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(1 << 16);
            for i in 0..2048u32 {
                cache.insert(CacheObject::Structure { pid: i % 96, version: 0 }, 1024);
            }
            cache.used()
        })
    });
}

fn bench_algorithms(c: &mut Criterion) {
    let el = generate::rmat(11, 8, generate::RmatParams::default(), 4);
    let ps = VertexCutPartitioner::new(24).partition(&el);
    let mut group = c.benchmark_group("single_job");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("pagerank", "rmat11"), &ps, |b, ps| {
        b.iter(|| {
            let mut e = Engine::from_partitions(ps.clone(), EngineConfig::default());
            e.submit(PageRank::new(0.85, 1e-3));
            e.run()
        })
    });
    group.bench_with_input(BenchmarkId::new("sssp", "rmat11"), &ps, |b, ps| {
        b.iter(|| {
            let mut e = Engine::from_partitions(ps.clone(), EngineConfig::default());
            e.submit(Sssp::new(0));
            e.run()
        })
    });
    group.bench_with_input(BenchmarkId::new("bfs", "rmat11"), &ps, |b, ps| {
        b.iter(|| {
            let mut e = Engine::from_partitions(ps.clone(), EngineConfig::default());
            e.submit(Bfs::new(0));
            e.run()
        })
    });
    group.bench_with_input(BenchmarkId::new("wcc", "rmat11"), &ps, |b, ps| {
        b.iter(|| {
            let mut e = Engine::from_partitions(ps.clone(), EngineConfig::default());
            e.submit(Wcc);
            e.run()
        })
    });
    group.finish();
}

fn bench_ingest_sweep(c: &mut Criterion) {
    // Layered delta-chain ingest vs the pre-layering cumulative layout
    // (EveryK(1): full state on every record) on a 48-delta stream.
    let el = generate::cycle(2048);
    let ps = VertexCutPartitioner::new(64).partition(&el);
    let stream = ingest_stream(2048, 48, 32);
    let mut group = c.benchmark_group("ingest_sweep");
    group.sample_size(10);
    for (name, policy) in [
        ("cumulative_k1", CompactionPolicy::EveryK(1)),
        ("layered_off", CompactionPolicy::Off),
        ("layered_k16", CompactionPolicy::default()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = SnapshotStore::new(ps.clone()).with_compaction(policy);
                for (i, d) in stream.iter().enumerate() {
                    s.apply((i as u64 + 1) * 10, d).unwrap();
                }
                s.num_snapshots()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioners,
    bench_push_strategies,
    bench_straggler_split,
    bench_scheduler_pick,
    bench_lru,
    bench_algorithms,
    bench_ingest_sweep
);
criterion_main!(benches);
