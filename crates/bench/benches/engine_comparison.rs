//! Wall-clock Criterion benchmarks of the engine zoo on the paper's
//! four-job mix (the real-time companion to the modeled Fig. 9).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgraph_bench::{
    hierarchy_for, out_of_core_hierarchy, paper_mix, partitions_for, run_engine, run_wavefront,
    run_wavefront_cfg, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn bench_four_job_mix(c: &mut Criterion) {
    let scale = Scale { shrink: 7 };
    let mut group = c.benchmark_group("four_job_mix");
    group.sample_size(10);
    for ds in [Dataset::TwitterSim, Dataset::Uk2007Sim] {
        let ps = partitions_for(ds, scale);
        let h = hierarchy_for(ds, &ps);
        let store = Arc::new(SnapshotStore::new(ps));
        for kind in EngineKind::COMPARISON {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), ds.name()),
                &kind,
                |b, &kind| {
                    b.iter(|| run_engine(kind, &store, 2, h, &paper_mix()));
                },
            );
        }
    }
    group.finish();
}

fn bench_scheduler_ablation(c: &mut Criterion) {
    let scale = Scale { shrink: 7 };
    let ds = Dataset::FriendsterSim;
    let ps = partitions_for(ds, scale);
    let h = hierarchy_for(ds, &ps);
    let store = Arc::new(SnapshotStore::new(ps));
    let mut group = c.benchmark_group("scheduler_ablation");
    group.sample_size(10);
    for kind in [EngineKind::CGraph, EngineKind::CGraphWithout] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| run_engine(kind, &store, 2, h, &paper_mix()));
        });
    }
    group.finish();
}

/// Wavefront-width sweep: the same four-job mix through the CGraph
/// engine at k ∈ {1, 2, 4} planned slots per round.  Wall-clock is
/// benched; the pipeline-modeled seconds (the paper-style figure, where
/// slot i+1's Load overlaps slot i's Trigger) are printed alongside so
/// the perf trajectory captures the pipelining win.
fn bench_wavefront_sweep(c: &mut Criterion) {
    let scale = Scale { shrink: 7 };
    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = hierarchy_for(ds, &ps);
    let store = Arc::new(SnapshotStore::new(ps));
    let mut group = c.benchmark_group("wavefront_sweep");
    group.sample_size(10);
    for width in [1usize, 2, 4] {
        let report = run_wavefront(&store, 2, h, width, &paper_mix());
        println!(
            "wavefront_sweep/k={width}: modeled {:.3} ms over {} loads",
            report.modeled_seconds * 1e3,
            report.loads
        );
        group.bench_with_input(BenchmarkId::new("k", width), &width, |b, &width| {
            b.iter(|| run_wavefront(&store, 2, h, width, &paper_mix()));
        });
    }
    group.finish();
}

/// Shard/prefetch sweep: k = 4 waves on an out-of-core hierarchy
/// (disk-bound loads) across `{shards} × {prefetch_depth}` — the
/// three-stage pipeline's win over the fused two-stage Load.  The same
/// grid is emitted machine-readably by the `bench_wavefront` binary.
fn bench_prefetch_sweep(c: &mut Criterion) {
    let scale = Scale { shrink: 7 };
    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = out_of_core_hierarchy(&ps);
    let store = Arc::new(SnapshotStore::new(ps));
    let mut group = c.benchmark_group("prefetch_sweep");
    group.sample_size(10);
    for (shards, depth) in [(1usize, 0usize), (4, 0), (4, 1), (4, 2)] {
        let report = run_wavefront_cfg(&store, 2, h, 4, shards, depth, &paper_mix());
        println!(
            "prefetch_sweep/s={shards}_d={depth}: modeled {:.3} ms over {} loads",
            report.modeled_seconds * 1e3,
            report.loads
        );
        group.bench_with_input(
            BenchmarkId::new("s_d", format!("{shards}_{depth}")),
            &(shards, depth),
            |b, &(shards, depth)| {
                b.iter(|| run_wavefront_cfg(&store, 2, h, 4, shards, depth, &paper_mix()));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_four_job_mix,
    bench_scheduler_ablation,
    bench_wavefront_sweep,
    bench_prefetch_sweep
);
criterion_main!(benches);
