//! The serving sweep, machine-readable.
//!
//! Generates a diurnal arrival trace (`cgraph-trace`), rescales it onto
//! the serving clock, and drives it through the CGraph `ServeLoop` over
//! an `{admission_window} × {wavefront}` grid, plus the FIFO streaming
//! baseline — printing the latency/throughput table and writing
//! `BENCH_serve.json` so CI can track the serving trajectory point by
//! point.  The `window = 0` rows are the FIFO-admission denominators
//! the spared-loads figures compare against.
//!
//! Accepts the standard `--full` / `--tiny` scale flags; `--out PATH`
//! overrides the JSON location.

use std::sync::Arc;

use cgraph_bench::{
    hierarchy_for, partitions_for, print_table, serve_sweep, serve_sweep_json,
    serve_trace_observed, serve_trace_stream, Scale, WallGate,
};
use cgraph_core::Observer;
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;
use cgraph_trace::{generate_trace, TraceConfig};

/// Virtual seconds per trace hour: compresses the diurnal trace so
/// arrival gaps land on the same scale as modeled execution time.
const SECONDS_PER_HOUR: f64 = 0.02;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_serve.json")
        .to_string();

    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = hierarchy_for(ds, &ps);
    let store = Arc::new(SnapshotStore::new(ps));

    // A short diurnal burst: enough concurrent arrivals to batch, small
    // enough for CI smoke mode.
    let hours = if scale.shrink >= 7 { 4 } else { 8 };
    let trace_cfg =
        TraceConfig { hours, base_rate: 2.0, peak_rate: 6.0, mean_duration: 1.0, seed: 0xFACE };
    let trace = generate_trace(&trace_cfg);

    // Windows in virtual seconds (0 = FIFO admission); each wavefront's
    // zero row is its spared-loads denominator.
    let grid = [
        (0.0, 1),
        (0.01, 1),
        (0.05, 1),
        (0.0, 4),
        (0.01, 4),
        (0.05, 4),
    ];
    let points = serve_sweep(&store, 2, h, &trace, SECONDS_PER_HOUR, &grid);
    let stream = serve_trace_stream(&store, 2, h, &trace, SECONDS_PER_HOUR);

    let fmt_s = |x: f64| format!("{:.2}", x * 1e3);
    let mut rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("w={:.2}ms k={}", p.admission_window * 1e3, p.wavefront),
                p.jobs.to_string(),
                format!("{:.1}", p.throughput),
                fmt_s(p.mean_wait),
                fmt_s(p.mean_latency),
                fmt_s(p.p99_latency),
                p.loads.to_string(),
                format!("{:.1}%", p.spared_vs_fifo * 100.0),
                format!("{}/{}/{}", p.rejected, p.quarantined, p.retries),
            ]
        })
        .collect();
    rows.push(vec![
        "stream-fifo".to_string(),
        stream.jobs.len().to_string(),
        format!("{:.1}", stream.throughput()),
        fmt_s(stream.mean_wait()),
        fmt_s(stream.mean_latency()),
        fmt_s(stream.latency_percentile(99.0)),
        stream.loads.to_string(),
        "-".to_string(),
        "0/0/0".to_string(),
    ]);
    print_table(
        &format!(
            "serving sweep ({} jobs over {hours} trace hours)",
            trace.len()
        ),
        &[
            "config",
            "jobs",
            "jobs/s",
            "mean wait ms",
            "mean lat ms",
            "p99 lat ms",
            "loads",
            "spared",
            "rej/quar/retry",
        ],
        &rows,
    );

    let fifo = points
        .iter()
        .find(|p| p.admission_window == 0.0 && p.wavefront == 1)
        .expect("grid holds the w=0 k=1 FIFO baseline");
    let windowed = points
        .iter()
        .filter(|p| p.wavefront == 1 && p.admission_window > 0.0)
        .max_by(|a, b| {
            a.spared_vs_fifo
                .partial_cmp(&b.spared_vs_fifo)
                .expect("finite")
        })
        .expect("grid holds a windowed k=1 point");
    println!(
        "\nadmission win at k=1: window {:.0} ms spares {:.1}% of FIFO's {} loads \
         (p99 latency {:.2} ms vs {:.2} ms)",
        windowed.admission_window * 1e3,
        windowed.spared_vs_fifo * 100.0,
        fifo.loads,
        windowed.p99_latency * 1e3,
        fifo.p99_latency * 1e3,
    );

    // Tracing overhead: the same serve run with a live Observer must
    // produce bit-identical results (asserted unconditionally) and stay
    // within 5% wall overhead (gated like the executor speedup gates —
    // enforced only on >=4-core hosts at default scale or larger, but
    // always recorded in the JSON `gates` rows).
    let best_serve = |observer: fn() -> Option<Arc<Observer>>| {
        let mut best = f64::INFINITY;
        let mut report = None;
        for _ in 0..3 {
            let start = std::time::Instant::now();
            let r =
                serve_trace_observed(&store, 2, h, &trace, SECONDS_PER_HOUR, 0.01, 4, observer());
            best = best.min(start.elapsed().as_secs_f64());
            report = Some(r);
        }
        (report.expect("three reps ran"), best)
    };
    let (plain, plain_wall) = best_serve(|| None);
    let (traced, traced_wall) = best_serve(|| Some(Observer::enabled()));
    assert_eq!(plain.loads, traced.loads, "tracing must not change loads");
    assert_eq!(
        plain.rounds, traced.rounds,
        "tracing must not change rounds"
    );
    assert_eq!(
        plain.modeled_seconds.to_bits(),
        traced.modeled_seconds.to_bits(),
        "tracing must not perturb modeled time"
    );
    assert_eq!(
        plain.per_job(),
        traced.per_job(),
        "tracing must not change per-job rows"
    );
    let ratio = plain_wall / traced_wall.max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\ntracing overhead: untraced {:.1} ms vs traced {:.1} ms (ratio {:.3}, results identical)",
        plain_wall * 1e3,
        traced_wall * 1e3,
        ratio
    );
    let gate = WallGate::resolve("tracing-overhead", 0.95, ratio, cores, scale.shrink <= 5);
    if gate.enforced() {
        assert!(
            ratio >= 0.95,
            "tracing must cost <=5% wall overhead on the serve loop, got ratio {ratio:.3}"
        );
    } else {
        println!(
            "(tracing gate {}: {cores} core(s), shrink {})",
            gate.status, scale.shrink
        );
    }

    let json = serve_sweep_json(ds.name(), scale.shrink, &points, &[gate]);
    std::fs::write(&out_path, json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
}
