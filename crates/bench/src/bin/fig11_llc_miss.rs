//! Figure 11: last-level cache miss rate of the four jobs per system.

use std::sync::Arc;

use cgraph_bench::{
    fmt_pct, hierarchy_for, paper_mix, partitions_for, print_table, run_engine, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let ps = partitions_for(ds, scale);
        let h = hierarchy_for(ds, &ps);
        let store = Arc::new(SnapshotStore::new(ps));
        let mut row = vec![ds.name().to_string()];
        for kind in EngineKind::COMPARISON {
            let out = run_engine(kind, &store, 4, h, &paper_mix());
            row.push(fmt_pct(out.metrics.cache_miss_rate()));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("dataset")
        .chain(EngineKind::COMPARISON.iter().map(|k| k.name()))
        .collect();
    print_table("Fig. 11: LLC miss rate for the four jobs", &headers, &rows);
    println!(
        "\npaper (hyperlink14): Nxgraph 89.5% vs CGraph 29.6% — one cached copy of\n\
         each structure partition serves all four jobs in CGraph."
    );
}
