//! Figure 17: average per-job execution-time breakdown on hyperlink14-sim
//! snapshots (5% change) as the number of jobs grows.

use cgraph_bench::{
    evolving_store, hierarchy_for, partition_edges, print_table, run_engine, BenchmarkJob,
    EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;

fn main() {
    let scale = Scale::from_args();
    let ds = Dataset::Hyperlink14Sim;
    let h = hierarchy_for(ds, &partition_edges(&ds.generate(scale.shrink)));

    let mut rows = Vec::new();
    for njobs in [1usize, 2, 4, 8] {
        let store = evolving_store(ds, scale, njobs, 0.05);
        let mix: Vec<(BenchmarkJob, u64)> = (0..njobs)
            .map(|i| (BenchmarkJob::ALL[i % 4], (i as u64 + 1) * 10))
            .collect();
        for kind in EngineKind::EVOLVING {
            let out = run_engine(kind, &store, 4, h, &mix);
            let avg_access =
                out.jobs.iter().map(|j| j.access_ratio).sum::<f64>() / out.jobs.len() as f64;
            rows.push(vec![
                format!("{njobs}"),
                kind.name().to_string(),
                format!("{:.1}%", (1.0 - avg_access) * 100.0),
                format!("{:.1}%", avg_access * 100.0),
            ]);
        }
    }
    print_table(
        &format!(
            "Fig. 17: avg per-job breakdown on {} snapshots (5% change)",
            ds.name()
        ),
        &["jobs", "system", "vertex processing", "data access"],
        &rows,
    );
    println!(
        "\npaper: with more jobs CGraph's access share *falls* (more jobs amortize\n\
         each load) while Seraph/Seraph-VT drown in cache interference."
    );
}
