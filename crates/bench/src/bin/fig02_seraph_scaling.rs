//! Figure 2: per-job execution time and data-access time over Seraph as
//! the number of concurrent jobs grows, normalized to running the same
//! jobs sequentially.

use std::sync::Arc;

use cgraph_baselines::BaselinePreset;
use cgraph_bench::{
    hierarchy_for, partitions_for, print_table, rotating_mix, run_mix, BenchmarkJob, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn main() {
    let scale = Scale::from_args();
    let ds = Dataset::UkUnionSim;
    let ps = partitions_for(ds, scale);
    let h = hierarchy_for(ds, &ps);
    let store = Arc::new(SnapshotStore::new(ps));
    let workers = 4;

    // Sequential single-instance reference per job kind.
    let mut seq = BaselinePreset::Sequential.build(Arc::clone(&store), workers, h);
    let seq_out = run_mix(&mut seq, &rotating_mix(4));
    let seq_time = |kind: &str| {
        seq_out
            .jobs
            .iter()
            .find(|j| j.name == kind)
            .map(|j| (j.seconds, j.access_ratio * j.seconds))
            .expect("kind present")
    };

    let mut rows = Vec::new();
    for njobs in [1usize, 2, 4, 8] {
        let mut e = BaselinePreset::Seraph.build(Arc::clone(&store), workers, h);
        let out = run_mix(&mut e, &rotating_mix(njobs));
        for kind in BenchmarkJob::ALL.iter().map(|k| k.name()) {
            let mine: Vec<_> = out.jobs.iter().filter(|j| j.name == kind).collect();
            if mine.is_empty() {
                continue;
            }
            let avg_t = mine.iter().map(|j| j.seconds).sum::<f64>() / mine.len() as f64;
            let avg_a =
                mine.iter().map(|j| j.access_ratio * j.seconds).sum::<f64>() / mine.len() as f64;
            let (st, sa) = seq_time(kind);
            rows.push(vec![
                format!("{njobs}"),
                kind.to_string(),
                format!("{:.2}", avg_t / st),
                format!("{:.2}", avg_a / sa.max(1e-12)),
            ]);
        }
    }
    print_table(
        &format!(
            "Fig. 2: per-job time over Seraph on {} (normalized to sequential)",
            ds.name()
        ),
        &["jobs", "benchmark", "exec time", "access time"],
        &rows,
    );
    println!(
        "\npaper: per-job time roughly doubles from 4 to 8 jobs as data-access cost\n\
         rises with cache interference; the same trend should appear above."
    );
}
