//! Figure 8: total execution time of the four jobs with and without the
//! correlations-aware scheduler (CGraph vs CGraph-without).

use std::sync::Arc;

use cgraph_bench::{
    hierarchy_for, paper_mix, partitions_for, print_table, run_engine, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let ps = partitions_for(ds, scale);
        let h = hierarchy_for(ds, &ps);
        let store = Arc::new(SnapshotStore::new(ps));
        let without = run_engine(EngineKind::CGraphWithout, &store, 4, h, &paper_mix());
        let with = run_engine(EngineKind::CGraph, &store, 4, h, &paper_mix());
        rows.push(vec![
            ds.name().to_string(),
            "100.0%".to_string(),
            format!("{:.1}%", 100.0 * with.seconds / without.seconds),
        ]);
    }
    print_table(
        "Fig. 8: execution time without/with the scheduler (CGraph-without = 100%)",
        &["dataset", "CGraph-without", "CGraph"],
        &rows,
    );
    println!("\npaper: CGraph reaches as low as 60.5% of CGraph-without on hyperlink14.");
}
