//! The wavefront/shard/prefetch sweep, machine-readable.
//!
//! Runs the paper's four-job mix through the CGraph engine over the
//! `{wavefront} × {shards} × {prefetch_depth} × {io_workers}` grid on
//! an out-of-core hierarchy (disk-bound loads — the regime the
//! prefetch pipeline targets), prints the table, and writes
//! `BENCH_wavefront.json` so CI can track the perf trajectory point by
//! point.  `io_workers > 0` rows route rounds through the
//! channel-staged concurrent executor; results are bit-identical to
//! the fork-join rows, only the wall clock moves.
//!
//! Two extra checks ride along:
//!
//! - **Wall gate** — the concurrent executor (4 compute workers, 4 I/O
//!   workers) must beat the serial executor (1 worker, fork-join) by
//!   ≥1.5× wall clock at `k=4 s=4 d=2`, best of 3 runs each, with
//!   identical loads/metrics/modeled time.  Enforced at default scale
//!   and above on hosts with ≥4 cores; recorded-and-skipped (JSON
//!   `gates` row set) elsewhere.
//! - **Steady-state allocation smoke** — a counting global allocator
//!   steps a concurrent-executor engine round by round and asserts the
//!   net live-byte growth across post-warmup rounds stays within a
//!   small bound: the round buffers, channel payloads, and chunk queue
//!   all recycle instead of reallocating per round.
//!
//! Accepts the standard `--full` / `--tiny` scale flags; `--out PATH`
//! overrides the JSON location.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use cgraph_algos::PageRank;
use cgraph_bench::{
    out_of_core_hierarchy, paper_mix, partitions_for, print_table, run_wavefront_observed,
    run_wavefront_placed, wavefront_sweep, wavefront_sweep_json, Scale, WallGate,
};
use cgraph_core::{Engine, EngineConfig, Observer};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::{ShardPlacement, SnapshotStore};
use cgraph_memsim::HierarchyConfig;

/// Counting wrapper around the system allocator: allocation calls and
/// net live bytes, cheap enough to leave on for the whole run.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Best-of-`reps` wall seconds for one executor configuration, plus
/// the (identical-across-reps) run report of the last rep.
fn best_wall(
    store: &Arc<SnapshotStore>,
    workers: usize,
    h: HierarchyConfig,
    io_workers: usize,
    reps: usize,
) -> (f64, cgraph_core::RunReport) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        let report = run_wavefront_placed(
            store,
            workers,
            h,
            4,
            4,
            2,
            io_workers,
            ShardPlacement::RoundRobin,
            &paper_mix(),
        );
        best = best.min(start.elapsed().as_secs_f64());
        assert!(report.completed, "gate run must converge");
        last = Some(report);
    }
    (best, last.expect("at least one rep"))
}

/// Steps a concurrent-executor engine round by round and asserts the
/// post-warmup rounds hold net live-byte growth within `bound` bytes:
/// the per-round fetch/completion payloads, reorder slots, and chunk
/// queue recycle rather than reallocate.
fn steady_state_alloc_smoke(store: &Arc<SnapshotStore>, h: HierarchyConfig, bound: i64) {
    let mut engine = Engine::new(
        Arc::clone(store),
        EngineConfig {
            workers: 2,
            wavefront: 4,
            shards: 4,
            prefetch_depth: 2,
            io_workers: 2,
            hierarchy: h,
            ..EngineConfig::default()
        },
    );
    // Four identical long-running jobs: every round is a multi-slot
    // concurrent wave and no job finishes (and frees) mid-measurement.
    for _ in 0..4 {
        engine.submit_at(PageRank::default(), 0);
    }
    // Warmup spawns the worker crew, sizes the round buffers, and
    // faults in the cache working set.
    let mut warm = 0;
    while warm < 3 && engine.step_round() {
        warm += 1;
    }
    let live0 = LIVE_BYTES.load(Ordering::Relaxed);
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut measured = 0;
    while measured < 8 && engine.step_round() {
        measured += 1;
    }
    let growth = LIVE_BYTES.load(Ordering::Relaxed) - live0;
    let calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls0;
    println!(
        "\nsteady-state allocation smoke: {measured} rounds after warmup, \
         net live bytes {growth:+}, {calls} allocation calls"
    );
    if measured >= 2 {
        assert!(
            growth <= bound,
            "steady-state rounds must not grow the heap: {growth} bytes over \
             {measured} rounds (bound {bound})"
        );
    }
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_wavefront.json")
        .to_string();

    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = out_of_core_hierarchy(&ps);
    // Lanes are driven per grid point via `EngineConfig::shards` (the
    // engine takes the finer of config and store sharding, and both
    // place round-robin), so a single-shard store keeps the `shards = 1`
    // rows honest one-lane baselines.
    let store = Arc::new(SnapshotStore::new(ps));

    let grid = [
        (1, 1, 0, 0),
        (2, 1, 0, 0),
        (4, 1, 0, 0),
        (2, 4, 0, 0),
        (4, 4, 0, 0),
        (2, 4, 1, 0),
        (4, 4, 1, 0),
        (2, 4, 2, 0),
        (4, 4, 2, 0),
        // Concurrent-executor rows: same modeled costs and loads as
        // their io=0 twins, real threads on the wall clock.
        (4, 4, 0, 4),
        (4, 4, 2, 2),
        (4, 4, 2, 4),
    ];
    let points = wavefront_sweep(&store, 2, h, &paper_mix(), &grid);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!(
                    "k={} s={} d={} io={}",
                    p.wavefront, p.shards, p.prefetch_depth, p.io_workers
                ),
                format!("{:.3}", p.modeled_ms),
                format!("{:.1}", p.wall_ms),
                format!("{:.2}", p.wall_vs_modeled()),
                p.loads.to_string(),
            ]
        })
        .collect();
    print_table(
        "wavefront sweep (out-of-core, four-job mix)",
        &["config", "modeled ms", "wall ms", "wall/model", "loads"],
        &rows,
    );

    // Concurrency is transparent to everything but the wall clock: each
    // io>0 row must reproduce its io=0 twin exactly.
    for p in points.iter().filter(|p| p.io_workers > 0) {
        let twin = points
            .iter()
            .find(|q| {
                q.io_workers == 0
                    && (q.wavefront, q.shards, q.prefetch_depth)
                        == (p.wavefront, p.shards, p.prefetch_depth)
            })
            .expect("every concurrent row has a fork-join twin");
        assert_eq!(p.loads, twin.loads, "io={} changed loads", p.io_workers);
        assert_eq!(
            p.modeled_ms.to_bits(),
            twin.modeled_ms.to_bits(),
            "io={} changed the modeled time",
            p.io_workers
        );
    }

    // The modeled-lane placement knob: the k=4 s=4 d=2 point again with
    // hash-placed lanes.  Placement is transparent to results and loads;
    // only the lane interleaving (and so the modeled overlap) may move.
    let hashed = run_wavefront_placed(&store, 2, h, 4, 4, 2, 0, ShardPlacement::Hash, &paper_mix());
    assert!(hashed.completed, "hash-placed sweep point must converge");
    println!(
        "\nhash-placed lanes at k=4 s=4 d=2: modeled {:.3} ms over {} loads",
        hashed.modeled_seconds * 1e3,
        hashed.loads
    );

    let baseline = points
        .iter()
        .find(|p| p.wavefront == 4 && p.shards == 4 && p.prefetch_depth == 0 && p.io_workers == 0)
        .expect("grid holds the k=4 s=4 d=0 baseline");
    let prefetched = points
        .iter()
        .find(|p| p.wavefront == 4 && p.shards == 4 && p.prefetch_depth == 2 && p.io_workers == 0)
        .expect("grid holds the k=4 s=4 d=2 point");
    let reduction = 1.0 - prefetched.modeled_ms / baseline.modeled_ms;
    println!(
        "\nprefetch win at k=4 s=4: d=2 models {:.3} ms vs d=0 {:.3} ms ({:.1}% reduction)",
        prefetched.modeled_ms,
        baseline.modeled_ms,
        reduction * 100.0
    );

    // --- wall gate: real threads must beat the serial executor ---
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (serial_wall, serial_report) = best_wall(&store, 1, h, 0, 3);
    let (conc_wall, conc_report) = best_wall(&store, 4, h, 4, 3);
    assert_eq!(
        serial_report.loads, conc_report.loads,
        "gate runs must perform identical loads"
    );
    assert_eq!(
        serial_report.metrics, conc_report.metrics,
        "gate runs must accumulate identical metrics"
    );
    // Modeled time varies with the *worker count* (compute parallelism
    // is part of the cost model) but never with the *executor*: the
    // concurrent gate run must model exactly what fork-join models at
    // the same 4 workers.
    let (_, forkjoin_report) = best_wall(&store, 4, h, 0, 1);
    assert_eq!(
        forkjoin_report.modeled_seconds.to_bits(),
        conc_report.modeled_seconds.to_bits(),
        "the executor must not change the modeled time at equal workers"
    );
    let speedup = serial_wall / conc_wall;
    println!(
        "\nconcurrent executor at k=4 s=4 d=2: wall {:.1} ms vs serial {:.1} ms \
         ({speedup:.2}x, best of 3, {cores} core(s) available)",
        conc_wall * 1e3,
        serial_wall * 1e3
    );
    let gate = WallGate::resolve(
        "concurrent-executor",
        1.5,
        speedup,
        cores,
        scale.shrink <= 5,
    );
    if gate.enforced() {
        assert!(
            speedup >= 1.5,
            "concurrent executor (4 compute + 4 I/O workers) must be >=1.5x the serial \
             executor at k=4 s=4 d=2, got {speedup:.2}x"
        );
    } else {
        println!(
            "(wall gate {}: {cores} core(s), shrink {})",
            gate.status, scale.shrink
        );
    }

    // --- tracing-overhead gate: a live Observer must be results-neutral
    // and cost <=5% wall at the same k=4 s=4 d=2 concurrent config ---
    let best_observed = |observer: fn() -> Option<Arc<Observer>>| {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..3 {
            let start = std::time::Instant::now();
            let report = run_wavefront_observed(
                &store,
                4,
                h,
                4,
                4,
                2,
                2,
                ShardPlacement::RoundRobin,
                &paper_mix(),
                observer(),
            );
            best = best.min(start.elapsed().as_secs_f64());
            assert!(report.completed, "tracing gate run must converge");
            last = Some(report);
        }
        (best, last.expect("three reps ran"))
    };
    let (plain_wall, plain_report) = best_observed(|| None);
    let (traced_wall, traced_report) = best_observed(|| Some(Observer::enabled()));
    assert_eq!(
        plain_report.loads, traced_report.loads,
        "tracing must not change loads"
    );
    assert_eq!(
        plain_report.metrics, traced_report.metrics,
        "tracing must not change metrics"
    );
    assert_eq!(
        plain_report.modeled_seconds.to_bits(),
        traced_report.modeled_seconds.to_bits(),
        "tracing must not perturb modeled time"
    );
    let ratio = plain_wall / traced_wall.max(1e-9);
    println!(
        "\ntracing overhead at k=4 s=4 d=2 io=2: untraced {:.1} ms vs traced {:.1} ms \
         (ratio {ratio:.3}, results identical)",
        plain_wall * 1e3,
        traced_wall * 1e3
    );
    let trace_gate = WallGate::resolve("tracing-overhead", 0.95, ratio, cores, scale.shrink <= 5);
    if trace_gate.enforced() {
        assert!(
            ratio >= 0.95,
            "tracing must cost <=5% wall overhead at default scale, got ratio {ratio:.3}"
        );
    } else {
        println!(
            "(tracing gate {}: {cores} core(s), shrink {})",
            trace_gate.status, scale.shrink
        );
    }

    steady_state_alloc_smoke(&store, h, 64 * 1024);

    let json = wavefront_sweep_json(ds.name(), scale.shrink, &points, &[gate, trace_gate]);
    std::fs::write(&out_path, json).expect("write BENCH_wavefront.json");
    println!("wrote {out_path}");
}
