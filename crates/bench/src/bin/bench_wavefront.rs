//! The wavefront/shard/prefetch sweep, machine-readable.
//!
//! Runs the paper's four-job mix through the CGraph engine over the
//! `{wavefront} × {shards} × {prefetch_depth}` grid on an out-of-core
//! hierarchy (disk-bound loads — the regime the prefetch pipeline
//! targets), prints the table, and writes `BENCH_wavefront.json` so CI
//! can track the perf trajectory point by point.
//!
//! Accepts the standard `--full` / `--tiny` scale flags; `--out PATH`
//! overrides the JSON location.

use std::sync::Arc;

use cgraph_bench::{
    out_of_core_hierarchy, paper_mix, partitions_for, print_table, run_wavefront_placed,
    wavefront_sweep, wavefront_sweep_json, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::{ShardPlacement, SnapshotStore};

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_wavefront.json")
        .to_string();

    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = out_of_core_hierarchy(&ps);
    // Lanes are driven per grid point via `EngineConfig::shards` (the
    // engine takes the finer of config and store sharding, and both
    // place round-robin), so a single-shard store keeps the `shards = 1`
    // rows honest one-lane baselines.
    let store = Arc::new(SnapshotStore::new(ps));

    let grid = [
        (1, 1, 0),
        (2, 1, 0),
        (4, 1, 0),
        (2, 4, 0),
        (4, 4, 0),
        (2, 4, 1),
        (4, 4, 1),
        (2, 4, 2),
        (4, 4, 2),
    ];
    let points = wavefront_sweep(&store, 2, h, &paper_mix(), &grid);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("k={} s={} d={}", p.wavefront, p.shards, p.prefetch_depth),
                format!("{:.3}", p.modeled_ms),
                format!("{:.1}", p.wall_ms),
                p.loads.to_string(),
            ]
        })
        .collect();
    print_table(
        "wavefront sweep (out-of-core, four-job mix)",
        &["config", "modeled ms", "wall ms", "loads"],
        &rows,
    );

    // The modeled-lane placement knob: the k=4 s=4 d=2 point again with
    // hash-placed lanes.  Placement is transparent to results and loads;
    // only the lane interleaving (and so the modeled overlap) may move.
    let hashed = run_wavefront_placed(&store, 2, h, 4, 4, 2, ShardPlacement::Hash, &paper_mix());
    assert!(hashed.completed, "hash-placed sweep point must converge");
    println!(
        "\nhash-placed lanes at k=4 s=4 d=2: modeled {:.3} ms over {} loads",
        hashed.modeled_seconds * 1e3,
        hashed.loads
    );

    let baseline = points
        .iter()
        .find(|p| p.wavefront == 4 && p.shards == 4 && p.prefetch_depth == 0)
        .expect("grid holds the k=4 s=4 d=0 baseline");
    let prefetched = points
        .iter()
        .find(|p| p.wavefront == 4 && p.shards == 4 && p.prefetch_depth == 2)
        .expect("grid holds the k=4 s=4 d=2 point");
    let reduction = 1.0 - prefetched.modeled_ms / baseline.modeled_ms;
    println!(
        "\nprefetch win at k=4 s=4: d=2 models {:.3} ms vs d=0 {:.3} ms ({:.1}% reduction)",
        prefetched.modeled_ms,
        baseline.modeled_ms,
        reduction * 100.0
    );

    let json = wavefront_sweep_json(ds.name(), scale.shrink, &points);
    std::fs::write(&out_path, json).expect("write BENCH_wavefront.json");
    println!("wrote {out_path}");
}
