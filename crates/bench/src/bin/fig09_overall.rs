//! Figure 9: total execution time of the four jobs across CLIP, Nxgraph,
//! Seraph and CGraph (normalized to CLIP per dataset).

use std::sync::Arc;

use cgraph_bench::{
    fmt_ratio, hierarchy_for, paper_mix, partitions_for, print_table, run_engine, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for ds in Dataset::ALL {
        let ps = partitions_for(ds, scale);
        let h = hierarchy_for(ds, &ps);
        let store = Arc::new(SnapshotStore::new(ps));
        let outs: Vec<_> = EngineKind::COMPARISON
            .iter()
            .map(|&k| run_engine(k, &store, 4, h, &paper_mix()))
            .collect();
        let clip = outs[0].seconds;
        let mut row = vec![ds.name().to_string()];
        row.extend(outs.iter().map(|o| fmt_ratio(o.seconds / clip)));
        rows.push(row);
        let seraph = outs[2].seconds;
        let cgraph = outs[3].seconds;
        speedups.push(seraph / cgraph);
    }
    let headers: Vec<&str> = std::iter::once("dataset")
        .chain(EngineKind::COMPARISON.iter().map(|k| k.name()))
        .collect();
    print_table(
        "Fig. 9: total execution time for the four jobs (normalized to CLIP)",
        &headers,
        &rows,
    );
    println!(
        "\nCGraph vs Seraph throughput: {:.2}x (best dataset) — paper reports up to 2.31x;\n\
         vs CLIP and Nxgraph the paper reports up to 3.29x and 4.32x.",
        speedups.iter().cloned().fold(f64::MIN, f64::max),
    );
}
