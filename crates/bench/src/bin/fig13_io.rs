//! Figure 13: disk I/O overhead of the four jobs (normalized to CLIP).

use std::sync::Arc;

use cgraph_bench::{
    hierarchy_for, paper_mix, partitions_for, print_table, run_engine, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let ps = partitions_for(ds, scale);
        let h = hierarchy_for(ds, &ps);
        let store = Arc::new(SnapshotStore::new(ps));
        let ios: Vec<u64> = EngineKind::COMPARISON
            .iter()
            .map(|&k| {
                run_engine(k, &store, 4, h, &paper_mix())
                    .metrics
                    .bytes_disk_to_mem
            })
            .collect();
        let clip = ios[0].max(1) as f64;
        let mut row = vec![ds.name().to_string()];
        row.extend(ios.iter().map(|&v| {
            if ios[0] == 0 {
                format!("{} B", v)
            } else {
                format!("{:.2}", v as f64 / clip)
            }
        }));
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("dataset")
        .chain(EngineKind::COMPARISON.iter().map(|k| k.name()))
        .collect();
    print_table(
        "Fig. 13: I/O overhead (normalized to CLIP)",
        &headers,
        &rows,
    );
    println!(
        "\npaper: the three smaller graphs fit in memory (near-zero I/O for CGraph\n\
         and Seraph, which keep one structure copy); on uk-union and hyperlink14\n\
         CGraph needs the least disk traffic by consolidating accesses."
    );
}
