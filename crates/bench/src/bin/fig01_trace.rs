//! Figure 1: (a) concurrent CGP jobs over a week-long trace;
//! (b) ratio of active partitions shared by more than k jobs.

use cgraph_bench::print_table;
use cgraph_trace::{
    active_jobs_per_hour, generate_trace, sample_shared_ratios, SharedRatioConfig, TraceConfig,
};

fn main() {
    let cfg = TraceConfig::default();
    let trace = generate_trace(&cfg);
    let counts = active_jobs_per_hour(&trace, cfg.hours);

    // (a) hourly concurrency, summarized per day.
    let mut rows = Vec::new();
    for day in 0..(cfg.hours / 24) {
        let slice = &counts[(day * 24) as usize..((day + 1) * 24) as usize];
        rows.push(vec![
            format!("day {}", day + 1),
            format!("{}", slice.iter().min().unwrap()),
            format!("{:.1}", slice.iter().map(|&c| c as f64).sum::<f64>() / 24.0),
            format!("{}", slice.iter().max().unwrap()),
        ]);
    }
    print_table(
        "Fig. 1(a): concurrent CGP jobs per day (min/avg/peak)",
        &["day", "min", "avg", "peak"],
        &rows,
    );
    println!(
        "\ntrace: {} jobs over {} h; peak concurrency {} (paper: >20 at peak)",
        trace.len(),
        cfg.hours,
        counts.iter().max().unwrap(),
    );

    // (b) shared-partition ratios at the paper's thresholds.
    let ratios = sample_shared_ratios(&trace, cfg.hours, &SharedRatioConfig::default());
    let thresholds = ["#>1", "#>2", "#>4", "#>8", "#>16"];
    let mut rows = Vec::new();
    for (h, row) in ratios.iter().enumerate().step_by(24) {
        let mut cells = vec![format!("hour {h}")];
        cells.extend(row.iter().map(|r| format!("{:.0}%", r * 100.0)));
        rows.push(cells);
    }
    let avg: Vec<f64> = (0..5)
        .map(|i| ratios.iter().map(|r| r[i]).sum::<f64>() / ratios.len() as f64)
        .collect();
    let mut cells = vec!["average".to_string()];
    cells.extend(avg.iter().map(|r| format!("{:.0}%", r * 100.0)));
    rows.push(cells);
    print_table(
        "Fig. 1(b): ratio of active partitions shared by more than k jobs",
        &[
            "sample",
            thresholds[0],
            thresholds[1],
            thresholds[2],
            thresholds[3],
            thresholds[4],
        ],
        &rows,
    );
    println!(
        "\npaper: intersections exceed 75% of active partitions on average; ours: {:.0}%",
        avg[0] * 100.0,
    );
}
