//! Table 1: dataset properties (scaled-down stand-ins vs the paper's).

use cgraph_bench::{print_table, Scale};
use cgraph_graph::generate::Dataset;
use cgraph_graph::stats::graph_stats;

fn main() {
    let scale = Scale::from_args();
    let paper: [(&str, &str, &str); 5] = [
        ("41.7 M", "1.4 B", "17.5 G"),
        ("65 M", "1.8 B", "22.7 G"),
        ("105.9 M", "3.7 B", "46.2 G"),
        ("133.6 M", "5.5 B", "68.3 G"),
        ("1.7 B", "64.4 B", "480.0 G"),
    ];
    let mut rows = Vec::new();
    for (i, ds) in Dataset::ALL.iter().enumerate() {
        let el = ds.generate(scale.shrink);
        let s = graph_stats(&el);
        rows.push(vec![
            ds.name().to_string(),
            format!("{}", s.num_vertices),
            format!("{}", s.num_edges),
            format!("{:.1} MiB", (s.num_edges * 12) as f64 / (1 << 20) as f64),
            format!("{:.2}", s.degree_gini),
            paper[i].0.to_string(),
            paper[i].1.to_string(),
            paper[i].2.to_string(),
        ]);
    }
    print_table(
        &format!("Table 1: datasets (shrink 2^{})", scale.shrink),
        &[
            "dataset",
            "vertices",
            "edges",
            "size",
            "deg-gini",
            "paper-V",
            "paper-E",
            "paper-size",
        ],
        &rows,
    );
    println!("\nRelative size ordering and power-law skew match the paper's Table 1.");
}
