//! Figure 19: ratio of total accessed data spared relative to running the
//! same jobs sequentially over Seraph.

use cgraph_baselines::BaselinePreset;
use cgraph_bench::{
    evolving_store, hierarchy_for, partition_edges, print_table, run_engine, run_mix, BenchmarkJob,
    EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;

fn main() {
    let scale = Scale::from_args();
    let ds = Dataset::Hyperlink14Sim;
    let h = hierarchy_for(ds, &partition_edges(&ds.generate(scale.shrink)));

    let mut rows = Vec::new();
    for njobs in [1usize, 2, 4, 8] {
        let store = evolving_store(ds, scale, njobs, 0.05);
        let mix: Vec<(BenchmarkJob, u64)> = (0..njobs)
            .map(|i| (BenchmarkJob::ALL[i % 4], (i as u64 + 1) * 10))
            .collect();

        // Denominator: the same jobs run one after another over Seraph.
        let mut seq = BaselinePreset::Sequential.build(store.clone(), 4, h);
        let seq_out = run_mix(&mut seq, &mix);
        let seq_bytes =
            (seq_out.metrics.bytes_mem_to_cache + seq_out.metrics.bytes_disk_to_mem) as f64;

        let mut row = vec![format!("{njobs}")];
        for kind in EngineKind::EVOLVING {
            let out = run_engine(kind, &store, 4, h, &mix);
            let bytes = (out.metrics.bytes_mem_to_cache + out.metrics.bytes_disk_to_mem) as f64;
            row.push(format!("{:.1}%", (1.0 - bytes / seq_bytes) * 100.0));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("jobs")
        .chain(EngineKind::EVOLVING.iter().map(|k| k.name()))
        .collect();
    print_table(
        &format!(
            "Fig. 19: spared accessed data vs sequential Seraph ({})",
            ds.name()
        ),
        &headers,
        &rows,
    );
    println!(
        "\npaper at 8 jobs: CGraph spares 65.9% vs Seraph-VT 39.5% and Seraph 31.3%,\n\
         and the spared ratio grows with the number of concurrent jobs."
    );
}
