//! The multi-node store sweep, machine-readable.
//!
//! Three row sets pin the store's multi-node semantics:
//!
//! 1. **placement** — the community mix (one BFS + one SSSP per
//!    disjoint R-MAT community) over a 4-shard store on an out-of-core
//!    hierarchy, swept over `{round_robin, hash, locality}`; the
//!    locality table is profiled from the round-robin run's observed
//!    job footprints.  Locality must cut cross-shard fetch bytes — the
//!    traffic that would cross the network on real nodes — by ≥15% vs
//!    round-robin (gated at default scale and above).
//! 2. **capacity** — a 200-delta ingest under `{unlimited, tight}`
//!    per-shard budgets: tight must spill checkpoint-covered records,
//!    shrink residency, and charge spill re-fetches when a
//!    historic-bound job reads the evicted state.
//! 3. **apply** — the same stream applied serially vs fanned out on 4
//!    workers across the 4 shard chains; concurrent apply is
//!    bit-identical (asserted) and must be ≥1.8× faster at default
//!    scale on hosts with ≥4 cores (elsewhere the gate is
//!    recorded-and-skipped in the JSON's `gates` row set).
//!
//! Prints the tables and writes `BENCH_store.json` so CI can track the
//! trajectory point by point.  Accepts the standard `--full` / `--tiny`
//! scale flags; `--out PATH` overrides the JSON location.

use cgraph_bench::{
    apply_sweep, capacity_sweep, community_graph, ingest_stream_spread, out_of_core_hierarchy,
    placement_sweep, print_table, store_sweep_json, Scale, WallGate,
};
use cgraph_graph::vertex_cut::VertexCutPartitioner;
use cgraph_graph::{generate, Partitioner, ShardCapacity};

const SHARDS: usize = 4;
const COMMUNITIES: usize = 4;
const DELTAS: usize = 200;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_store.json")
        .to_string();

    // --- placement: clustered community footprints, out-of-core ---
    let cscale = (14u32.saturating_sub(scale.shrink)).clamp(7, 12);
    let block = 1u32 << cscale;
    let el = community_graph(COMMUNITIES, cscale, 6, 0xC0FFEE);
    let np = (el.len() / 2048).clamp(16, 128);
    let ps = VertexCutPartitioner::new(np).partition(&el);
    let h = out_of_core_hierarchy(&ps);
    let placement = placement_sweep(&ps, SHARDS, 2, h, COMMUNITIES, block);
    print_table(
        "placement sweep (community mix, out-of-core, 4 shards)",
        &[
            "placement",
            "loads",
            "fetch MB",
            "cross MB",
            "cross %",
            "modeled ms",
            "wall ms",
        ],
        &placement
            .iter()
            .map(|p| {
                vec![
                    p.placement.clone(),
                    p.loads.to_string(),
                    format!("{:.1}", p.total_fetch_bytes as f64 / 1e6),
                    format!("{:.1}", p.cross_shard_fetch_bytes as f64 / 1e6),
                    format!("{:.1}", p.cross_fraction() * 100.0),
                    format!("{:.3}", p.modeled_ms),
                    format!("{:.1}", p.wall_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let rr = &placement[0];
    let local = &placement[2];
    let reduction = 1.0 - local.cross_shard_fetch_bytes as f64 / rr.cross_shard_fetch_bytes as f64;
    println!(
        "\nlocality cross-shard fetch bytes: {} vs round-robin {} ({:.1}% reduction)",
        local.cross_shard_fetch_bytes,
        rr.cross_shard_fetch_bytes,
        reduction * 100.0
    );
    assert_eq!(
        rr.loads, local.loads,
        "placement must not change the schedule's loads"
    );
    // The community footprints cluster at every scale, so the locality
    // gate holds unconditionally — including CI's --tiny smoke run.
    assert!(
        reduction >= 0.15,
        "locality placement must cut cross-shard fetch bytes by >=15%: got {:.1}%",
        reduction * 100.0
    );

    // --- capacity + concurrent apply: the 4-shard ingest stream ---
    let vertices: u32 = 1 << (21u32.saturating_sub(scale.shrink)).clamp(13, 17);
    let partitions = (vertices as usize / 2048).clamp(8, 64);
    let base = VertexCutPartitioner::new(partitions).partition(&generate::cycle(vertices));
    // 16 spread sources: each delta rebuilds ~16 partitions, enough
    // estimated edge work that the store's apply work-size threshold
    // lets a 4-worker fan-out engage at default scale (smaller spreads
    // would be clamped serial — correctly, but then the sweep below
    // measures nothing).
    let stream = ingest_stream_spread(vertices, DELTAS, 256, 16);

    // The tight budget derives from the unlimited run's residency, so
    // sweep unlimited first and reuse that point instead of re-running
    // the whole ingest.
    let mut capacity = capacity_sweep(
        &base,
        &stream,
        SHARDS,
        &[("unlimited", ShardCapacity::UNLIMITED)],
    );
    let tight = ShardCapacity::bytes(capacity[0].max_shard_resident * 6 / 10);
    capacity.extend(capacity_sweep(&base, &stream, SHARDS, &[("tight", tight)]));
    print_table(
        "capacity sweep (200-delta stream, 4 shards, EveryK(8))",
        &[
            "capacity",
            "budget KB",
            "override KB",
            "max shard KB",
            "spilled",
            "refetch KB",
        ],
        &capacity
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    if p.max_resident_bytes == u64::MAX {
                        "inf".to_string()
                    } else {
                        format!("{:.0}", p.max_resident_bytes as f64 / 1e3)
                    },
                    format!("{:.0}", p.override_bytes as f64 / 1e3),
                    format!("{:.0}", p.max_shard_resident as f64 / 1e3),
                    p.spilled_records.to_string(),
                    format!("{:.0}", p.spill_refetch_bytes as f64 / 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let tight_point = &capacity[1];
    assert!(tight_point.spilled_records > 0, "tight budget must spill");
    assert!(
        tight_point.override_bytes < capacity[0].override_bytes,
        "spilling must shrink residency"
    );
    assert!(
        tight_point.spill_refetch_bytes > 0,
        "historic reads of spilled state must be priced"
    );

    let apply = apply_sweep(&base, &stream, SHARDS, &[1, 2, 4]);
    print_table(
        "concurrent apply sweep (200-delta stream, 4 shards)",
        &["apply workers", "total ms", "speedup", "override KB"],
        &apply
            .iter()
            .map(|p| {
                vec![
                    p.apply_workers.to_string(),
                    format!("{:.1}", p.total_apply_us / 1e3),
                    format!("{:.2}x", apply[0].total_apply_us / p.total_apply_us),
                    format!("{:.0}", p.override_bytes as f64 / 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let speedup = apply[0].total_apply_us / apply.last().unwrap().total_apply_us;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nconcurrent apply speedup (4 workers vs serial): {speedup:.2}x over {DELTAS} deltas \
         ({cores} core(s) available)"
    );
    // Wall-clock parallelism needs physical cores: the gate is live at
    // default scale on >=4-core machines (CI's runners qualify) and
    // recorded-and-skipped where the hardware cannot express it —
    // bit-identity above is asserted unconditionally either way.  The
    // outcome lands in the JSON's `gates` row set.
    let gate = WallGate::resolve("concurrent-apply", 1.8, speedup, cores, scale.shrink <= 5);
    if gate.enforced() {
        assert!(
            speedup >= 1.8,
            "4-worker apply must be >=1.8x serial on the 4-shard stream, got {speedup:.2}x"
        );
    } else {
        println!(
            "(speedup gate {}: {cores} core(s), shrink {})",
            gate.status, scale.shrink
        );
    }

    let json = store_sweep_json(
        "community-rmat+cycle",
        scale.shrink,
        &placement,
        &capacity,
        &apply,
        &[gate],
    );
    std::fs::write(&out_path, json).expect("write BENCH_store.json");
    println!("wrote {out_path}");
}
