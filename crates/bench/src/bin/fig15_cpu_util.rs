//! Figure 15: CPU utilization of the vertex processing of the four jobs.

use std::sync::Arc;

use cgraph_bench::{
    fmt_pct, hierarchy_for, paper_mix, partitions_for, print_table, run_engine, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let ps = partitions_for(ds, scale);
        let h = hierarchy_for(ds, &ps);
        let store = Arc::new(SnapshotStore::new(ps));
        let mut row = vec![ds.name().to_string()];
        for kind in EngineKind::COMPARISON {
            let out = run_engine(kind, &store, 4, h, &paper_mix());
            row.push(fmt_pct(out.utilization));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("dataset")
        .chain(EngineKind::COMPARISON.iter().map(|k| k.name()))
        .collect();
    print_table(
        "Fig. 15: CPU utilization ratio for the four jobs",
        &headers,
        &rows,
    );
    println!(
        "\npaper: baselines waste cores waiting on data; CGraph's cores are almost\n\
         fully utilized (compute, not bandwidth, becomes its bottleneck)."
    );
}
