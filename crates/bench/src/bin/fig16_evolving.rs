//! Figure 16: eight jobs over snapshot chains of hyperlink14-sim with the
//! per-snapshot change ratio swept from 0.005% to 5% (normalized to
//! Seraph-VT at 0.005%).

use cgraph_bench::{
    evolving_store, fmt_ratio, hierarchy_for, partition_edges, print_table, run_engine,
    BenchmarkJob, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;

fn main() {
    let scale = Scale::from_args();
    let ds = Dataset::Hyperlink14Sim;
    let njobs = 8usize;
    // One snapshot per job: job i arrives at snapshot i's timestamp.
    let mix: Vec<(BenchmarkJob, u64)> = (0..njobs)
        .map(|i| (BenchmarkJob::ALL[i % 4], (i as u64 + 1) * 10))
        .collect();

    let ratios = [0.00005f64, 0.0005, 0.005, 0.05];
    let mut norm = None;
    let mut rows = Vec::new();
    for ratio in ratios {
        let store = evolving_store(ds, scale, njobs, ratio);
        let h = hierarchy_for(ds, &partition_edges(&ds.generate(scale.shrink)));
        let mut row = vec![format!("{:.3}%", ratio * 100.0)];
        for kind in EngineKind::EVOLVING {
            let out = run_engine(kind, &store, 4, h, &mix);
            let base = *norm.get_or_insert(out.seconds);
            row.push(fmt_ratio(out.seconds / base));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("changed edges")
        .chain(EngineKind::EVOLVING.iter().map(|k| k.name()))
        .collect();
    print_table(
        &format!(
            "Fig. 16: 8 jobs on {} snapshots (normalized to Seraph-VT @ 0.005%)",
            ds.name()
        ),
        &headers,
        &rows,
    );
    println!(
        "\npaper: CGraph wins at every change ratio; its edge shrinks as the ratio\n\
         grows because less structure stays shared between the snapshots."
    );
}
