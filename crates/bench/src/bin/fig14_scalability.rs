//! Figure 14: scalability of the four jobs on hyperlink14-sim as the
//! worker count grows (normalized to CLIP with one worker).

use std::sync::Arc;

use cgraph_bench::{
    fmt_ratio, hierarchy_for, paper_mix, partitions_for, print_table, run_engine, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn main() {
    let scale = Scale::from_args();
    let ds = Dataset::Hyperlink14Sim;
    let ps = partitions_for(ds, scale);
    let h = hierarchy_for(ds, &ps);
    let store = Arc::new(SnapshotStore::new(ps));

    let base = run_engine(
        EngineKind::Baseline(cgraph_baselines::BaselinePreset::Clip),
        &store,
        1,
        h,
        &paper_mix(),
    )
    .seconds;

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8, 16, 32] {
        let mut row = vec![format!("{workers}")];
        for kind in EngineKind::COMPARISON {
            let out = run_engine(kind, &store, workers, h, &paper_mix());
            row.push(fmt_ratio(out.seconds / base));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("workers")
        .chain(EngineKind::COMPARISON.iter().map(|k| k.name()))
        .collect();
    print_table(
        &format!(
            "Fig. 14: scalability on {} (normalized to CLIP @ 1 worker)",
            ds.name()
        ),
        &headers,
        &rows,
    );
    println!(
        "\npaper: CGraph scales best because shared accesses shrink the serial\n\
         bandwidth term; the baselines flatten early against the memory/disk wall."
    );
}
