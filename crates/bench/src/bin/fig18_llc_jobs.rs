//! Figure 18: LLC miss rate vs number of jobs on hyperlink14-sim
//! snapshots (5% change).

use cgraph_bench::{
    evolving_store, fmt_pct, hierarchy_for, partition_edges, print_table, run_engine, BenchmarkJob,
    EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;

fn main() {
    let scale = Scale::from_args();
    let ds = Dataset::Hyperlink14Sim;
    let h = hierarchy_for(ds, &partition_edges(&ds.generate(scale.shrink)));

    let mut rows = Vec::new();
    for njobs in [1usize, 2, 4, 8] {
        let store = evolving_store(ds, scale, njobs, 0.05);
        let mix: Vec<(BenchmarkJob, u64)> = (0..njobs)
            .map(|i| (BenchmarkJob::ALL[i % 4], (i as u64 + 1) * 10))
            .collect();
        let mut row = vec![format!("{njobs}")];
        for kind in EngineKind::EVOLVING {
            let out = run_engine(kind, &store, 4, h, &mix);
            row.push(fmt_pct(out.metrics.cache_miss_rate()));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("jobs")
        .chain(EngineKind::EVOLVING.iter().map(|k| k.name()))
        .collect();
    print_table(
        &format!(
            "Fig. 18: LLC miss rate on {} snapshots vs job count",
            ds.name()
        ),
        &headers,
        &rows,
    );
    println!(
        "\npaper: CGraph's miss rate at 8 jobs is only 32.8% of its 1-job value —\n\
         cached partitions are reused across jobs — while the baselines' rates rise."
    );
}
