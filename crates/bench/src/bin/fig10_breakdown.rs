//! Figure 10: execution-time breakdown (vertex processing vs data access)
//! per job per system on hyperlink14-sim.

use std::sync::Arc;

use cgraph_bench::{
    hierarchy_for, paper_mix, partitions_for, print_table, run_engine, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn main() {
    let scale = Scale::from_args();
    let ds = Dataset::Hyperlink14Sim;
    let ps = partitions_for(ds, scale);
    let h = hierarchy_for(ds, &ps);
    let store = Arc::new(SnapshotStore::new(ps));

    let mut rows = Vec::new();
    for kind in EngineKind::COMPARISON {
        let out = run_engine(kind, &store, 4, h, &paper_mix());
        for j in &out.jobs {
            rows.push(vec![
                kind.name().to_string(),
                j.name.to_string(),
                format!("{:.1}%", (1.0 - j.access_ratio) * 100.0),
                format!("{:.1}%", j.access_ratio * 100.0),
            ]);
        }
    }
    print_table(
        &format!("Fig. 10: execution-time breakdown on {}", ds.name()),
        &["system", "job", "vertex processing", "data access"],
        &rows,
    );
    println!(
        "\npaper: vertex processing dominates only under CGraph; under CLIP, Nxgraph\n\
         and Seraph the data-access share is by far the largest."
    );
}
