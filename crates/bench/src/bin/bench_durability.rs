//! Durable-store recovery bench, machine-readable.
//!
//! Two row sets pin the WAL's recovery economics:
//!
//! 1. **recovery** — a durable 4-shard store ingests delta chains of
//!    length {25, 100, 200, 400} under `{off, every-25}` checkpoint
//!    compaction, then reopens from disk.  Each point records durable
//!    apply time, recovery (open) time, and replay throughput.  The
//!    gate: at chain length 400, checkpointed recovery must be ≥2×
//!    faster than full-log replay — checkpoints let `open` seed the
//!    incremental index from the newest checkpoint and decode only the
//!    post-checkpoint tail eagerly, where the uncheckpointed log
//!    rebuilds everything.
//! 2. **spill** — a capacity-limited durable store evicts
//!    checkpoint-covered records to its own segment files; reading the
//!    spilled partitions through a recovered *historical* view (the
//!    latest view always answers from the resident current index)
//!    rehydrates them from real disk.  The row compares the cost
//!    model's *modeled* spill disk seconds against the *measured*
//!    rehydration time for the same bytes (recorded, not gated: the
//!    measured figure is host- and page-cache-dependent).
//!
//! Prints the tables and writes `BENCH_durability.json` so CI can
//! track the trajectory point by point.  Accepts the standard
//! `--full` / `--tiny` scale flags; `--out PATH` overrides the JSON
//! location.

use std::sync::Arc;
use std::time::Instant;

use cgraph_bench::{ingest_stream, print_table, Scale, WallGate};
use cgraph_graph::snapshot::{CompactionPolicy, ShardedSnapshotStore};
use cgraph_graph::vertex_cut::VertexCutPartitioner;
use cgraph_graph::{generate, PartitionSet, Partitioner, ShardCapacity};
use cgraph_memsim::{CostModel, Metrics};

const SHARDS: usize = 4;
const CHAINS: [usize; 4] = [25, 100, 200, 400];
const GATE_CHAIN: usize = 400;
const CP_K: usize = 25;

struct Point {
    chain: usize,
    compaction: &'static str,
    apply_ms: f64,
    recovery_ms: f64,
    replay_per_s: f64,
}

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cgraph-bench-durability-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_durability.json")
        .to_string();

    let vertices: u32 = 1 << (19u32.saturating_sub(scale.shrink)).clamp(11, 16);
    let partitions = (vertices as usize / 2048).clamp(8, 48);
    let base = || -> PartitionSet {
        VertexCutPartitioner::new(partitions).partition(&generate::cycle(vertices))
    };
    let stream = ingest_stream(vertices, *CHAINS.iter().max().unwrap(), 192);

    // --- recovery: chain length × checkpoint policy ---
    let mut points: Vec<Point> = Vec::new();
    for &chain in &CHAINS {
        for (name, policy) in [
            ("off", CompactionPolicy::Off),
            ("every25", CompactionPolicy::EveryK(CP_K)),
        ] {
            let dir = bench_dir(&format!("{chain}-{name}"));
            let mut s = ShardedSnapshotStore::with_shards(base(), SHARDS)
                .with_compaction(policy)
                .persist_to(&dir)
                .expect("persist store");
            let t0 = Instant::now();
            for (i, d) in stream[..chain].iter().enumerate() {
                s.apply((i + 1) as u64, d).expect("durable apply");
            }
            let apply_ms = ms(t0);
            drop(s);
            let t1 = Instant::now();
            let r = ShardedSnapshotStore::open(&dir).expect("recover store");
            let recovery_ms = ms(t1);
            assert_eq!(r.latest_timestamp(), chain as u64, "recovered chain head");
            drop(r);
            let _ = std::fs::remove_dir_all(&dir);
            points.push(Point {
                chain,
                compaction: name,
                apply_ms,
                recovery_ms,
                replay_per_s: chain as f64 / (recovery_ms / 1e3),
            });
        }
    }
    print_table(
        "durable recovery (4 shards, chain length x checkpoints)",
        &[
            "chain",
            "checkpoints",
            "apply ms",
            "recovery ms",
            "applies/s replayed",
        ],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.chain.to_string(),
                    p.compaction.to_string(),
                    format!("{:.2}", p.apply_ms),
                    format!("{:.2}", p.recovery_ms),
                    format!("{:.0}", p.replay_per_s),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let off = points
        .iter()
        .find(|p| p.chain == GATE_CHAIN && p.compaction == "off")
        .expect("gate point");
    let cp = points
        .iter()
        .find(|p| p.chain == GATE_CHAIN && p.compaction == "every25")
        .expect("gate point");
    let speedup = off.recovery_ms / cp.recovery_ms;
    println!(
        "\ncheckpointed recovery at chain {GATE_CHAIN}: {:.2} ms vs {:.2} ms full replay ({speedup:.2}x)",
        cp.recovery_ms, off.recovery_ms
    );
    // Recovery is single-threaded, so the gate only depends on scale:
    // at --tiny the absolute times are sub-millisecond noise.
    let at_scale = scale.shrink <= 5;
    let gate = WallGate {
        name: "checkpointed-recovery".to_string(),
        threshold: 2.0,
        measured: speedup,
        status: if at_scale {
            "enforced"
        } else {
            "skipped-scale"
        }
        .to_string(),
    };
    if gate.enforced() {
        assert!(
            speedup >= 2.0,
            "checkpointed recovery must be >=2x faster than full-log replay at chain {GATE_CHAIN}: got {speedup:.2}x"
        );
    }

    // --- spill: modeled vs measured rehydration disk time ---
    // Derive a tight per-shard budget from an unlimited probe run, then
    // ingest the same stream durably under it: checkpoint-covered
    // records spill to the shard segments and drop their resident
    // payloads, so reading them back is real file I/O.
    let spill_chain = 100.min(stream.len());
    let mut probe = ShardedSnapshotStore::with_shards(base(), SHARDS)
        .with_compaction(CompactionPolicy::EveryK(5));
    for (i, d) in stream[..spill_chain].iter().enumerate() {
        probe.apply((i + 1) as u64, d).expect("probe apply");
    }
    let max_resident = (0..SHARDS)
        .map(|s| probe.shard_resident_bytes(s))
        .max()
        .unwrap_or(0);
    drop(probe);
    let dir = bench_dir("spill");
    let mut s = ShardedSnapshotStore::with_shards(base(), SHARDS)
        .with_compaction(CompactionPolicy::EveryK(5))
        .with_capacity(ShardCapacity::bytes((max_resident / 4).max(1)))
        .persist_to(&dir)
        .expect("persist spill store");
    for (i, d) in stream[..spill_chain].iter().enumerate() {
        s.apply((i + 1) as u64, d).expect("durable apply");
    }
    assert!(s.has_spills(), "tight capacity must spill");
    drop(s);
    let r = Arc::new(ShardedSnapshotStore::open(&dir).expect("recover spill store"));
    assert!(r.has_spills(), "spill flags survive recovery");
    // Spilled payloads are reachable only through historical views —
    // the latest view resolves from the always-resident current index —
    // so probe for the timestamp exposing the most spilled partitions.
    let mut probe_ts = 0u64;
    let mut spilled: Vec<u32> = Vec::new();
    for ts in 1..=spill_chain as u64 {
        let v = r.view_at(ts);
        let at_ts: Vec<u32> = (0..v.num_partitions() as u32)
            .filter(|&p| v.partition_spilled(p))
            .collect();
        if at_ts.len() > spilled.len() {
            probe_ts = ts;
            spilled = at_ts;
        }
    }
    assert!(
        !spilled.is_empty(),
        "spilled partitions must be visible to historical views"
    );
    let view = r.view_at(probe_ts);
    let t = Instant::now();
    let mut spilled_bytes = 0u64;
    for &p in &spilled {
        // First touch rehydrates the partition from its shard segment.
        spilled_bytes += view.partition(p).structure_bytes();
    }
    let measured_ms = ms(t);
    drop(view);
    drop(r);
    let _ = std::fs::remove_dir_all(&dir);
    let modeled_ms = CostModel::default()
        .access_seconds(&Metrics { bytes_disk_to_mem: spilled_bytes, ..Metrics::default() })
        * 1e3;
    print_table(
        "spill rehydration (modeled vs measured)",
        &["spilled parts", "bytes", "modeled ms", "measured ms"],
        &[vec![
            spilled.len().to_string(),
            spilled_bytes.to_string(),
            format!("{modeled_ms:.3}"),
            format!("{measured_ms:.3}"),
        ]],
    );

    // --- machine-readable envelope ---
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale_shrink\": {},\n", scale.shrink));
    json.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!("  \"vertices\": {vertices},\n"));
    json.push_str(&format!("  \"partitions\": {partitions},\n"));
    json.push_str(&format!("  \"shards\": {SHARDS},\n"));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"chain\": {}, \"checkpoints\": \"{}\", \"apply_ms\": {:.3}, \
             \"recovery_ms\": {:.3}, \"replay_per_s\": {:.1}}}{}\n",
            p.chain,
            p.compaction,
            p.apply_ms,
            p.recovery_ms,
            p.replay_per_s,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"spill\": {{\"spilled_partitions\": {}, \"spilled_bytes\": {}, \
         \"modeled_ms\": {:.3}, \"measured_ms\": {:.3}}},\n",
        spilled.len(),
        spilled_bytes,
        modeled_ms,
        measured_ms
    ));
    json.push_str(&format!(
        "  \"gates\": [\n    {{\"gate\": \"{}\", \"threshold\": {:.2}, \"measured\": {:.3}, \
         \"status\": \"{}\"}}\n  ]\n",
        gate.name, gate.threshold, gate.measured, gate.status
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");
}
