//! The snapshot-ingest sweep, machine-readable.
//!
//! Streams 200 constant-size deltas into a [`SnapshotStore`] under three
//! chain layouts — the pre-layering cumulative representation
//! (`EveryK(1)`: full state on every record), the layered chain with
//! compaction off, and the layered chain at the default checkpoint
//! cadence — sampling cumulative apply cost, resident override bytes,
//! and latest-view lookup latency at several chain lengths.  Prints the
//! table and writes `BENCH_ingest.json` so CI can track the ingest-cost
//! trajectory point by point.
//!
//! Accepts the standard `--full` / `--tiny` scale flags; `--out PATH`
//! overrides the JSON location.

use cgraph_bench::{
    ingest_run, ingest_run_on, ingest_stream, ingest_stream_spread, ingest_sweep_json, print_table,
    IngestRun, Scale,
};
use cgraph_graph::snapshot::{CompactionPolicy, ShardedSnapshotStore};
use cgraph_graph::vertex_cut::VertexCutPartitioner;
use cgraph_graph::{generate, Partitioner};

const DELTAS: usize = 200;
const EDGES_PER_DELTA: usize = 64;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_ingest.json")
        .to_string();

    // A sparse ring sized by scale: ingest cost is about chain mechanics,
    // not graph algorithmics, so partitions stay small and numerous.
    let vertices: u32 = 1 << (18u32.saturating_sub(scale.shrink)).clamp(10, 16);
    let partitions = (vertices as usize / 32).clamp(16, 256);
    let el = generate::cycle(vertices);
    let base = VertexCutPartitioner::new(partitions).partition(&el);
    let stream = ingest_stream(vertices, DELTAS, EDGES_PER_DELTA);
    let marks = [25usize, 50, 100, 200];

    let mut runs: Vec<IngestRun> = [
        ("cumulative(k=1)", CompactionPolicy::EveryK(1)),
        ("layered(off)", CompactionPolicy::Off),
        ("layered(k=16)", CompactionPolicy::default()),
    ]
    .into_iter()
    .map(|(label, policy)| ingest_run(label, policy, &base, &stream, &marks))
    .collect();
    // Trajectory row for the concurrent-apply path: the same layered
    // policy over a 4-shard store with rebuilds fanned out on 4 workers,
    // on a source-spread stream (several partitions rebuild per delta —
    // the shape the fan-out pays on; the speedup gate itself lives in
    // bench_store, where core availability is accounted for).
    let spread = ingest_stream_spread(vertices, DELTAS, EDGES_PER_DELTA, 8);
    runs.push(ingest_run_on(
        "layered(k=16)+shards4",
        ShardedSnapshotStore::with_shards(base.clone(), 4),
        &spread,
        &marks,
    ));
    runs.push(ingest_run_on(
        "layered(k=16)+shards4+apply4",
        ShardedSnapshotStore::with_shards(base.clone(), 4).with_apply_workers(4),
        &spread,
        &marks,
    ));

    let rows: Vec<Vec<String>> = runs
        .iter()
        .flat_map(|run| {
            let n = run.apply_us.len();
            run.points.iter().map(move |p| {
                vec![
                    run.policy.clone(),
                    p.chain_len.to_string(),
                    format!("{:.0}", p.cum_apply_us),
                    format!("{:.2}", run.mean_us(0..50.min(n))),
                    format!("{:.2}", run.mean_us(n.saturating_sub(50)..n)),
                    p.override_bytes.to_string(),
                    format!("{:.0}", p.latest_lookup_ns),
                ]
            })
        })
        .collect();
    print_table(
        "ingest sweep (200 constant-size deltas)",
        &[
            "policy",
            "chain",
            "cum µs",
            "first50 µs/apply",
            "last50 µs/apply",
            "override B",
            "latest ns/lookup",
        ],
        &rows,
    );

    let cumulative = &runs[0];
    let layered = &runs[2];
    let speedup = cumulative.total_us() / layered.total_us();
    let bytes_ratio = cumulative.points.last().unwrap().override_bytes as f64
        / layered.points.last().unwrap().override_bytes as f64;
    let flatness = layered.mean_us(DELTAS - 50..DELTAS) / layered.mean_us(0..50);
    println!(
        "\ntotal ingest speedup (layered k=16 vs cumulative): {speedup:.1}x; \
         resident override bytes: {bytes_ratio:.1}x smaller; \
         layered last50/first50 per-apply ratio: {flatness:.2}"
    );
    // The layered chain must never lose to the cumulative layout; at the
    // default scale and above the win is pinned: wall speedup gated at 3x
    // (typical runs measure ~5x, ranging 4.7-24x, but shared/throttled
    // machines need headroom) and a deterministic ≥5x on resident
    // override bytes.  Tiny smoke runs are too short to pin a wall
    // multiple at all.
    assert!(
        speedup > 1.0,
        "layered ingest slower than cumulative: {speedup:.2}x"
    );
    if scale.shrink <= 5 {
        assert!(
            speedup >= 3.0,
            "expected ~5x ingest speedup at default scale, got {speedup:.2}x"
        );
        assert!(
            bytes_ratio >= 5.0,
            "expected ≥5x resident-bytes win at default scale, got {bytes_ratio:.2}x"
        );
    }

    let json = ingest_sweep_json("cycle", vertices, EDGES_PER_DELTA, &runs);
    std::fs::write(&out_path, json).expect("write BENCH_ingest.json");
    println!("wrote {out_path}");
}
