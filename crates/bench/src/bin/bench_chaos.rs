//! The chaos differential, machine-readable.
//!
//! Serves the same diurnal trace twice through the CGraph `ServeLoop`:
//! once clean and once under a seeded fault plane injecting transient
//! fetch faults and latency spikes at 5%, with retries, per-shard
//! circuit breakers, and admission shedding armed.  Asserts the
//! degradation contract — zero lost jobs (every offer completes, is
//! quarantined, or is shed), ≥99% completion at the 5% transient rate —
//! and gates the wall-clock overhead of serving through the fault
//! plane, writing `BENCH_chaos.json` so CI can track the trajectory.
//!
//! Accepts the standard `--full` / `--tiny` scale flags; `--out PATH`
//! overrides the JSON location.

use std::sync::Arc;

use cgraph_bench::{
    chaos_json, hierarchy_for, partitions_for, print_table, serve_trace_chaos, ChaosPoint, Scale,
    WallGate,
};
use cgraph_core::FaultConfig;
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;
use cgraph_trace::{generate_trace, TraceConfig};

/// Virtual seconds per trace hour (matches `bench_serve`).
const SECONDS_PER_HOUR: f64 = 0.02;

/// Deterministic fault-schedule seed: same seed, same chaos, any host.
const FAULT_SEED: u64 = 0xC0FFEE;

/// Transient fault probability per fetch attempt — the paper-style
/// "5% of I/O operations fail transiently" regime.
const FETCH_RATE: f64 = 0.05;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_chaos.json")
        .to_string();

    let ds = Dataset::TwitterSim;
    let ps = partitions_for(ds, scale);
    let h = hierarchy_for(ds, &ps);
    let store = Arc::new(SnapshotStore::new(ps));

    let hours = if scale.shrink >= 7 { 4 } else { 8 };
    let trace_cfg =
        TraceConfig { hours, base_rate: 2.0, peak_rate: 6.0, mean_duration: 1.0, seed: 0xFACE };
    let trace = generate_trace(&trace_cfg);

    // Shedding armed but slack (the trace never queues this deep): the
    // degraded run pays the admission-bound bookkeeping without losing
    // offers to it, so the completion-rate gate measures fault handling.
    let max_backlog = 256;

    let faulted_cfg = FaultConfig {
        seed: FAULT_SEED,
        fetch_rate: FETCH_RATE,
        spike_rate: FETCH_RATE,
        spike_seconds: 2e-3,
        ..FaultConfig::default()
    };

    // Best-of-3 wall clocks, like the tracing-overhead gates.
    let best_run = |cfg: FaultConfig| {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..3 {
            let start = std::time::Instant::now();
            let (report, stats) = serve_trace_chaos(
                &store,
                2,
                h,
                &trace,
                SECONDS_PER_HOUR,
                0.01,
                4,
                cfg,
                max_backlog,
            );
            best = best.min(start.elapsed().as_secs_f64());
            out = Some((report, stats));
        }
        let (report, stats) = out.expect("three reps ran");
        (report, stats, best)
    };

    let (clean, clean_stats, clean_wall) = best_run(FaultConfig::default());
    let (faulted, faulted_stats, faulted_wall) = best_run(faulted_cfg);

    let points = [
        ChaosPoint::from_report("clean", trace.len(), &clean, &clean_stats, clean_wall * 1e3),
        ChaosPoint::from_report(
            "faulted",
            trace.len(),
            &faulted,
            &faulted_stats,
            faulted_wall * 1e3,
        ),
    ];

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                p.offered.to_string(),
                p.completed.to_string(),
                p.quarantined.to_string(),
                p.rejected.to_string(),
                p.retries.to_string(),
                p.rerouted.to_string(),
                p.breaker_trips.to_string(),
                format!("{:.1}%", p.completion_rate() * 100.0),
                format!("{:.2}", p.wall_ms),
            ]
        })
        .collect();
    print_table(
        &format!(
            "chaos differential ({} jobs, {:.0}% transient fetch faults)",
            trace.len(),
            FETCH_RATE * 100.0
        ),
        &[
            "run",
            "offered",
            "done",
            "quar",
            "shed",
            "retries",
            "rerouted",
            "trips",
            "completion",
            "wall ms",
        ],
        &rows,
    );

    // The degradation contract, asserted unconditionally at every scale.
    let clean_pt = &points[0];
    let faulted_pt = &points[1];
    assert_eq!(
        clean_pt.lost_jobs(),
        0,
        "clean run must account every offer"
    );
    assert_eq!(
        faulted_pt.lost_jobs(),
        0,
        "faulted run must account every offer: {} offered, {} completed, \
         {} quarantined, {} shed",
        faulted_pt.offered,
        faulted_pt.completed,
        faulted_pt.quarantined,
        faulted_pt.rejected,
    );
    assert_eq!(
        clean_pt.completed, clean_pt.offered,
        "clean run must complete everything"
    );
    assert_eq!(clean_pt.retries, 0, "disabled plane must draw nothing");
    assert!(
        faulted_pt.completion_rate() >= 0.99,
        "must complete >=99% of jobs at a {:.0}% transient fault rate, got {:.2}%",
        FETCH_RATE * 100.0,
        faulted_pt.completion_rate() * 100.0
    );
    assert!(
        faulted_pt.retries > 0,
        "a 5% fault rate over this trace must burn at least one retry"
    );

    // Wall overhead of serving through the live fault plane: the
    // degraded run may pay for retries and bookkeeping but must stay
    // within 2x the clean wall.  Enforced only on >=4-core hosts at
    // default scale or larger; always recorded in the JSON gates row.
    let ratio = clean_wall / faulted_wall.max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nchaos overhead: clean {:.1} ms vs faulted {:.1} ms (ratio {:.3})",
        clean_wall * 1e3,
        faulted_wall * 1e3,
        ratio
    );
    let gate = WallGate::resolve("chaos-overhead", 0.5, ratio, cores, scale.shrink <= 5);
    if gate.enforced() {
        assert!(
            ratio >= 0.5,
            "faulted serve must stay within 2x clean wall, got ratio {ratio:.3}"
        );
    } else {
        println!(
            "(chaos gate {}: {cores} core(s), shrink {})",
            gate.status, scale.shrink
        );
    }

    let json = chaos_json(
        ds.name(),
        scale.shrink,
        FAULT_SEED,
        FETCH_RATE,
        &points,
        &[gate],
    );
    std::fs::write(&out_path, json).expect("write BENCH_chaos.json");
    println!("wrote {out_path}");
}
