//! Figure 12: volume of data swapped into the cache (normalized to CLIP).

use std::sync::Arc;

use cgraph_bench::{
    fmt_ratio, hierarchy_for, paper_mix, partitions_for, print_table, run_engine, EngineKind, Scale,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::SnapshotStore;

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let ps = partitions_for(ds, scale);
        let h = hierarchy_for(ds, &ps);
        let store = Arc::new(SnapshotStore::new(ps));
        let vols: Vec<u64> = EngineKind::COMPARISON
            .iter()
            .map(|&k| {
                run_engine(k, &store, 4, h, &paper_mix())
                    .metrics
                    .bytes_mem_to_cache
            })
            .collect();
        let clip = vols[0] as f64;
        let mut row = vec![ds.name().to_string()];
        row.extend(vols.iter().map(|&v| fmt_ratio(v as f64 / clip)));
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("dataset")
        .chain(EngineKind::COMPARISON.iter().map(|k| k.name()))
        .collect();
    print_table(
        "Fig. 12: volume of data swapped into the cache (normalized to CLIP)",
        &headers,
        &rows,
    );
    println!(
        "\npaper: CLIP beats Nxgraph/Seraph via data re-entry, and CGraph still moves\n\
         only ~47% of CLIP's volume on hyperlink14 by sharing one copy across jobs."
    );
}
