//! Incremental-recomputation bench: standing jobs at O(Δ).
//!
//! A 200-delta **additions-only** stream (each delta adds 4 scattered
//! edges) is driven over an R-MAT base graph two ways:
//!
//! 1. **scratch** — every snapshot version binds a fresh from-scratch
//!    BFS, the way a naive standing job would recompute.
//! 2. **resumed** — the chain bootstraps once from scratch at the base
//!    snapshot, then every later version resumes from the previous
//!    version's converged result via `Engine::submit_resumed_at`; each
//!    inter-version range is monotone-safe, so every resubmission must
//!    take the seeded O(Δ) path.
//!
//! Both passes use identical engines and are checked bit-for-bit equal
//! at the final version.  The gate: chained resume must be **≥5×**
//! faster in total wall time than per-version scratch on a small-delta
//! stream.  Wall gates are enforced only on hosts with ≥4 cores (and
//! at gate scale); elsewhere the measured ratio is recorded-and-skipped
//! in the JSON, never asserted.
//!
//! Prints the table and writes `BENCH_incremental.json`.  Accepts the
//! standard `--full` / `--tiny` scale flags; `--out PATH` overrides the
//! JSON location.

use std::sync::Arc;
use std::time::Instant;

use cgraph_algos::Bfs;
use cgraph_bench::{
    growth_stream, incremental_json, print_table, IncrementalPoint, IncrementalSummary, Scale,
    WallGate,
};
use cgraph_core::{Engine, EngineConfig};
use cgraph_graph::snapshot::SnapshotStore;
use cgraph_graph::vertex_cut::VertexCutPartitioner;
use cgraph_graph::{generate, Partitioner};

const DELTAS: usize = 200;
const PER_DELTA: usize = 4;
const SHARDS: usize = 4;
const GATE: f64 = 5.0;

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

fn config() -> EngineConfig {
    EngineConfig { workers: 2, wavefront: 4, io_workers: 2, ..EngineConfig::default() }
}

/// From-scratch run bound at `ts`; returns (results, wall ms, loads).
fn scratch(
    store: &Arc<SnapshotStore>,
    ts: u64,
) -> (Vec<<Bfs as cgraph_core::VertexProgram>::Value>, f64, u64) {
    let mut e = Engine::new(Arc::clone(store), config());
    let id = e.submit_at(Bfs::new(0), ts);
    let t = Instant::now();
    let report = e.run();
    let wall = ms(t);
    assert!(report.completed, "scratch run drains");
    (
        e.results::<Bfs>(id).expect("scratch results"),
        wall,
        report.loads,
    )
}

/// Resumed run bound at `ts` from `prior`; returns (results, wall ms,
/// loads, seeded).
fn resumed(
    store: &Arc<SnapshotStore>,
    ts: u64,
    prior_ts: u64,
    prior: &[<Bfs as cgraph_core::VertexProgram>::Value],
) -> (
    Vec<<Bfs as cgraph_core::VertexProgram>::Value>,
    f64,
    u64,
    bool,
) {
    let mut e = Engine::new(Arc::clone(store), config());
    let rs = e.submit_resumed_at(Bfs::new(0), ts, prior_ts, prior);
    let t = Instant::now();
    let report = e.run();
    let wall = ms(t);
    assert!(report.completed, "resumed run drains");
    (
        e.results::<Bfs>(rs.job).expect("resumed results"),
        wall,
        report.loads,
        rs.seeded,
    )
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_incremental.json")
        .to_string();

    let rmat_scale = 17u32.saturating_sub(scale.shrink).clamp(10, 15);
    let el = generate::rmat(rmat_scale, 8, generate::RmatParams::default(), 2026);
    let n = el.num_vertices();
    let partitions = (n as usize / 512).clamp(8, 32);
    let ps = VertexCutPartitioner::new(partitions).partition(&el);
    let mut store = SnapshotStore::with_shards(ps, SHARDS);
    for (i, d) in growth_stream(n, DELTAS, PER_DELTA).iter().enumerate() {
        store.apply((i as u64 + 1) * 10, d).expect("delta applies");
    }
    let store = Arc::new(store);

    let versions: Vec<u64> = (0..=DELTAS as u64).map(|i| i * 10).collect();

    // --- scratch pass: every version from scratch ---
    let mut scratch_wall = 0.0;
    let mut scratch_loads = 0u64;
    let mut per_version: Vec<(f64, u64)> = Vec::with_capacity(versions.len());
    let mut scratch_last = Vec::new();
    for &ts in &versions {
        let (values, wall, loads) = scratch(&store, ts);
        scratch_wall += wall;
        scratch_loads += loads;
        per_version.push((wall, loads));
        scratch_last = values;
    }

    // --- resumed pass: bootstrap once, then chain at O(Δ) ---
    let mut resumed_wall = 0.0;
    let mut resumed_loads = 0u64;
    let mut seeded = 0usize;
    let mut points: Vec<IncrementalPoint> = Vec::new();
    let (mut prior, boot_wall, boot_loads) = scratch(&store, versions[0]);
    resumed_wall += boot_wall;
    resumed_loads += boot_loads;
    points.push(IncrementalPoint {
        version: versions[0],
        scratch_ms: per_version[0].0,
        resumed_ms: boot_wall,
        scratch_loads: per_version[0].1,
        resumed_loads: boot_loads,
    });
    let mut prior_ts = versions[0];
    for (i, &ts) in versions.iter().enumerate().skip(1) {
        let (values, wall, loads, took_seed) = resumed(&store, ts, prior_ts, &prior);
        resumed_wall += wall;
        resumed_loads += loads;
        seeded += usize::from(took_seed);
        if i % 20 == 0 {
            points.push(IncrementalPoint {
                version: ts,
                scratch_ms: per_version[i].0,
                resumed_ms: wall,
                scratch_loads: per_version[i].1,
                resumed_loads: loads,
            });
        }
        prior = values;
        prior_ts = ts;
    }
    assert_eq!(
        prior, scratch_last,
        "chained resume must match scratch bit-for-bit at the head"
    );
    assert_eq!(
        seeded, DELTAS,
        "every addition-only resume must take the seeded path"
    );

    let summary = IncrementalSummary {
        vertices: n,
        deltas: DELTAS,
        per_delta: PER_DELTA,
        program: "bfs".to_string(),
        seeded,
        scratch_wall_ms: scratch_wall,
        resumed_wall_ms: resumed_wall,
        scratch_loads,
        resumed_loads,
    };

    print_table(
        &format!("incremental resume ({n} vertices, {DELTAS} deltas x {PER_DELTA} edges, bfs)"),
        &["mode", "wall ms", "loads"],
        &[
            vec![
                "scratch".to_string(),
                format!("{scratch_wall:.1}"),
                scratch_loads.to_string(),
            ],
            vec![
                "resumed".to_string(),
                format!("{resumed_wall:.1}"),
                resumed_loads.to_string(),
            ],
            vec![
                "speedup".to_string(),
                format!("{:.2}x", summary.speedup()),
                format!("{:.2}x", scratch_loads as f64 / resumed_loads.max(1) as f64),
            ],
        ],
    );

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let gate = WallGate::resolve(
        "incremental-resume",
        GATE,
        summary.speedup(),
        cores,
        scale.shrink <= 5,
    );
    println!(
        "gate {}: threshold {:.1}x, measured {:.2}x [{}]",
        gate.name, gate.threshold, gate.measured, gate.status
    );
    if gate.enforced() {
        assert!(
            gate.measured >= gate.threshold,
            "chained resume must be >={GATE}x faster than per-version scratch \
             (measured {:.2}x)",
            gate.measured
        );
    }

    let json = incremental_json("rmat-growth", scale.shrink, &summary, &points, &[gate]);
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}
