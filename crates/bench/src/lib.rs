//! Shared experiment harness for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§4).  This library holds the common machinery:
//! dataset construction, simulated-hierarchy sizing, the engine zoo, the
//! four-job benchmark mix (PageRank, SSSP, SCC, BFS), and table printing.
//!
//! All binaries accept `--full` (paper-scale graphs, slower) and `--tiny`
//! (smoke-test scale); the default is a quick scale that preserves every
//! qualitative trend.

use std::sync::Arc;

use cgraph_algos::{trace_arrivals, Bfs, PageRank, SccDriver, Sssp};
use cgraph_baselines::{BaselinePreset, FifoServe, StreamConfig, StreamEngine};
use cgraph_core::{
    Engine, EngineConfig, FaultConfig, FaultPlane, FaultStats, JobEngine, JobId, JobOutcome,
    Observer, SchedulerKind, ServeConfig, ServeLoop, ServeReport,
};
use cgraph_graph::generate::Dataset;
use cgraph_graph::snapshot::{CompactionPolicy, GraphDelta, SnapshotStore};
use cgraph_graph::vertex_cut::VertexCutPartitioner;
use cgraph_graph::{
    generate, Edge, EdgeList, PartitionSet, Partitioner, ShardCapacity, ShardPlacement,
    ShardedSnapshotStore,
};
use cgraph_memsim::{HierarchyConfig, JobMetrics, Metrics};
use cgraph_trace::JobSpan;

pub use cgraph_algos::BenchmarkJob;

/// Experiment scale parsed from the command line.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Subtracted from each dataset's R-MAT scale exponent.
    pub shrink: u32,
}

impl Scale {
    /// Parses `--full` / `--tiny` from `std::env::args`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let shrink = if args.iter().any(|a| a == "--full") {
            2
        } else if args.iter().any(|a| a == "--tiny") {
            7
        } else {
            5
        };
        Scale { shrink }
    }
}

/// Builds a dataset's partitioned form at the given scale.
pub fn partitions_for(ds: Dataset, scale: Scale) -> PartitionSet {
    let el = ds.generate(scale.shrink);
    partition_edges(&el)
}

/// Partitions an edge list with the harness's standard sizing.
pub fn partition_edges(el: &EdgeList) -> PartitionSet {
    let np = (el.len() / 8192).clamp(16, 192);
    VertexCutPartitioner::new(np).partition(el)
}

/// Total structure bytes of a partition set.
pub fn structure_bytes(ps: &PartitionSet) -> u64 {
    ps.partitions().iter().map(|p| p.structure_bytes()).sum()
}

/// Simulated hierarchy sized like the paper's testbed relative to each
/// dataset: the LLC holds a few partitions; the three smaller graphs fit in
/// memory, uk-union and hyperlink14 exceed it (out-of-core regime).
pub fn hierarchy_for(ds: Dataset, ps: &PartitionSet) -> HierarchyConfig {
    let total = structure_bytes(ps);
    let memory_bytes = match ds {
        Dataset::TwitterSim | Dataset::FriendsterSim | Dataset::Uk2007Sim => total * 3,
        Dataset::UkUnionSim => total * 95 / 100,
        Dataset::Hyperlink14Sim => total * 85 / 100,
    };
    HierarchyConfig { cache_bytes: (total / 10).max(4096), memory_bytes }
}

/// Simulated hierarchy that keeps the dataset out-of-core: memory holds
/// ~70% of the structure bytes, so partition loads keep reaching disk —
/// the bandwidth regime (0.5 GB/s disk vs 20 GB/s memory) where the
/// sharded prefetch pipeline pays.
pub fn out_of_core_hierarchy(ps: &PartitionSet) -> HierarchyConfig {
    let total = structure_bytes(ps);
    HierarchyConfig {
        cache_bytes: (total / 10).max(4096),
        memory_bytes: (total * 7 / 10).max(8192),
    }
}

/// The engines compared across the figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// CGraph with the priority scheduler (the full system).
    CGraph,
    /// CGraph with fixed-order loading (the Fig. 8 ablation).
    CGraphWithout,
    /// One of the baseline systems.
    Baseline(BaselinePreset),
}

impl EngineKind {
    /// The four systems of the overall-comparison figures (9-15).
    pub const COMPARISON: [EngineKind; 4] = [
        EngineKind::Baseline(BaselinePreset::Clip),
        EngineKind::Baseline(BaselinePreset::Nxgraph),
        EngineKind::Baseline(BaselinePreset::Seraph),
        EngineKind::CGraph,
    ];

    /// The three systems of the evolving-graph figures (16-19).
    pub const EVOLVING: [EngineKind; 3] = [
        EngineKind::Baseline(BaselinePreset::SeraphVt),
        EngineKind::Baseline(BaselinePreset::Seraph),
        EngineKind::CGraph,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::CGraph => "CGraph",
            EngineKind::CGraphWithout => "CGraph-without",
            EngineKind::Baseline(p) => p.name(),
        }
    }
}

/// Outcome of one engine run over a job mix.
#[derive(Clone, Debug)]
pub struct MixOutcome {
    /// Engine display name.
    pub engine: &'static str,
    /// Modeled makespan in seconds.
    pub seconds: f64,
    /// Counter deltas for this run.
    pub metrics: Metrics,
    /// Modeled CPU utilization.
    pub utilization: f64,
    /// Per-job reports (SCC phases aggregated into one entry).
    pub jobs: Vec<JobReport>,
}

/// One job's attributed outcome.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Job name.
    pub name: &'static str,
    /// Modeled per-job seconds (amortized access + own compute).
    pub seconds: f64,
    /// Fraction of the job's time spent on data access.
    pub access_ratio: f64,
    /// Raw attributed metrics.
    pub metrics: JobMetrics,
}

/// Submits a benchmark mix on any engine: non-SCC jobs first (each with
/// its arrival timestamp), then each SCC driver runs its phases —
/// concurrently with everything else.  Returns the tracked job ids per
/// mix entry; a final `run_jobs` drains whatever remains.
pub fn submit_mix<E: JobEngine>(
    engine: &mut E,
    mix: &[(BenchmarkJob, u64)],
) -> Vec<(&'static str, Vec<JobId>)> {
    let mut tracked: Vec<(&'static str, Vec<JobId>)> = Vec::new();
    let mut scc_requests: Vec<u64> = Vec::new();
    for (i, &(job, ts)) in mix.iter().enumerate() {
        let src = (i as u32).wrapping_mul(17) % 64;
        match job {
            BenchmarkJob::PageRank => {
                let id = engine.submit_program_at(PageRank::default(), ts);
                tracked.push(("PageRank", vec![id]));
            }
            BenchmarkJob::Sssp => {
                let id = engine.submit_program_at(Sssp::new(src), ts);
                tracked.push(("SSSP", vec![id]));
            }
            BenchmarkJob::Bfs => {
                let id = engine.submit_program_at(Bfs::new(src), ts);
                tracked.push(("BFS", vec![id]));
            }
            BenchmarkJob::Scc => scc_requests.push(ts),
        }
    }
    for ts in scc_requests {
        let edges = engine.snapshot_store().view_at(ts).edges_global();
        let mut driver = SccDriver::new(&edges);
        driver.run_at(engine, ts);
        tracked.push(("SCC", driver.phase_jobs().to_vec()));
    }
    tracked
}

/// Drives a benchmark mix on any engine (see [`submit_mix`]) and gathers
/// per-job attributed reports.
pub fn run_mix<E: JobEngine>(engine: &mut E, mix: &[(BenchmarkJob, u64)]) -> MixOutcome {
    let before = engine.global_metrics();
    let tracked = submit_mix(engine, mix);
    engine.run_jobs();

    let metrics = engine.global_metrics().since(&before);
    let cost = engine.cost();
    let workers = engine.workers();
    // Concurrent jobs contend for the shared data-access channel; jobs run
    // sequentially have it to themselves (the paper's Fig. 2 comparison).
    let sharers = if engine.is_concurrent() {
        mix.len().max(1)
    } else {
        1
    };
    let jobs = tracked
        .into_iter()
        .map(|(name, ids)| {
            let mut agg = JobMetrics::default();
            for id in ids {
                agg.add(&engine.job_metrics_of(id));
            }
            JobReport {
                name,
                seconds: cost.job_seconds(&agg, workers, sharers),
                access_ratio: cost.job_access_ratio(&agg, workers, sharers),
                metrics: agg,
            }
        })
        .collect();
    MixOutcome {
        engine: "",
        seconds: cost.total_seconds(&metrics, workers),
        metrics,
        utilization: cost.utilization(&metrics, workers),
        jobs,
    }
}

/// Builds an engine of `kind` and runs `mix` over `store`.
pub fn run_engine(
    kind: EngineKind,
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    mix: &[(BenchmarkJob, u64)],
) -> MixOutcome {
    let mut out = match kind {
        EngineKind::CGraph => {
            let mut e = Engine::new(
                Arc::clone(store),
                EngineConfig { workers, hierarchy, ..EngineConfig::default() },
            );
            run_mix(&mut e, mix)
        }
        EngineKind::CGraphWithout => {
            let mut e = Engine::new(
                Arc::clone(store),
                EngineConfig {
                    workers,
                    hierarchy,
                    scheduler: SchedulerKind::FixedOrder,
                    ..EngineConfig::default()
                },
            );
            run_mix(&mut e, mix)
        }
        EngineKind::Baseline(preset) => {
            let mut e = preset.build(Arc::clone(store), workers, hierarchy);
            run_mix(&mut e, mix)
        }
    };
    out.engine = kind.name();
    out
}

/// Runs `mix` on a CGraph engine planning `width` slots per wavefront
/// round and returns the run's report.  At `width > 1` the report's
/// `modeled_seconds` uses the pipeline model (slot `i+1`'s Load
/// overlapping slot `i`'s Trigger); at `width == 1` it is the classic
/// linear figure — the pair is the k-sweep comparison of the
/// `engine_comparison` bench.
pub fn run_wavefront(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    width: usize,
    mix: &[(BenchmarkJob, u64)],
) -> cgraph_core::RunReport {
    run_wavefront_cfg(store, workers, hierarchy, width, 1, 0, mix)
}

/// [`run_wavefront`] with the full pipeline configuration: `shards`
/// stage-one I/O lanes and a `depth`-slot prefetch window.  At
/// `shards = 1, depth = 0` this is exactly [`run_wavefront`].
pub fn run_wavefront_cfg(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    width: usize,
    shards: usize,
    depth: usize,
    mix: &[(BenchmarkJob, u64)],
) -> cgraph_core::RunReport {
    run_wavefront_placed(
        store,
        workers,
        hierarchy,
        width,
        shards,
        depth,
        0,
        ShardPlacement::RoundRobin,
        mix,
    )
}

/// [`run_wavefront_cfg`] with an explicit modeled-lane placement (the
/// `EngineConfig::placement` knob; a physically sharded store keeps
/// dictating its own) and an I/O-worker count (`io_workers > 0` routes
/// rounds through the channel-staged concurrent executor; `0` is the
/// classic fork-join path — bit-identical either way).
#[allow(clippy::too_many_arguments)]
pub fn run_wavefront_placed(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    width: usize,
    shards: usize,
    depth: usize,
    io_workers: usize,
    placement: ShardPlacement,
    mix: &[(BenchmarkJob, u64)],
) -> cgraph_core::RunReport {
    run_wavefront_observed(
        store, workers, hierarchy, width, shards, depth, io_workers, placement, mix, None,
    )
}

/// [`run_wavefront_placed`] under an explicit observer (`Some` = tracing
/// and metrics live) — the traced half of the tracing-overhead gate.
/// `None` is exactly [`run_wavefront_placed`]: the engine resolves it to
/// the disabled observer.
#[allow(clippy::too_many_arguments)]
pub fn run_wavefront_observed(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    width: usize,
    shards: usize,
    depth: usize,
    io_workers: usize,
    placement: ShardPlacement,
    mix: &[(BenchmarkJob, u64)],
    observer: Option<Arc<Observer>>,
) -> cgraph_core::RunReport {
    let mut engine = Engine::new(
        Arc::clone(store),
        EngineConfig {
            workers,
            hierarchy,
            wavefront: width,
            shards,
            placement,
            prefetch_depth: depth,
            io_workers,
            observer,
            ..EngineConfig::default()
        },
    );
    submit_mix(&mut engine, mix);
    let mut report = engine.run_jobs();
    // SCC drivers inside `submit_mix` run engine phases of their own, so
    // aggregate the whole engine lifetime rather than just the final
    // drain: every load, every counter, and the accumulated modeled time.
    report.loads = engine.total_loads();
    report.metrics = *engine.metrics();
    report.modeled_seconds = if width <= 1 {
        engine.modeled_seconds()
    } else {
        engine.pipeline_seconds()
    };
    report
}

/// One measured point of the wavefront/shard/prefetch sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Planned slots per round.
    pub wavefront: usize,
    /// Stage-one I/O lanes (snapshot-store shards).
    pub shards: usize,
    /// Prefetch window depth in wave slots.
    pub prefetch_depth: usize,
    /// Compute worker threads of the run.
    pub workers: usize,
    /// Dedicated I/O worker threads (0 = the fork-join executor).
    pub io_workers: usize,
    /// Pipeline-modeled milliseconds.
    pub modeled_ms: f64,
    /// Wall-clock milliseconds of the run.
    pub wall_ms: f64,
    /// Partition loads performed.
    pub loads: u64,
}

impl SweepPoint {
    /// Wall time over modeled time: how much real overhead (or real
    /// overlap, below 1) the executor adds on top of the cost model.
    pub fn wall_vs_modeled(&self) -> f64 {
        if self.modeled_ms == 0.0 {
            0.0
        } else {
            self.wall_ms / self.modeled_ms
        }
    }
}

/// Runs the four-job mix once per
/// `(wavefront, shards, prefetch_depth, io_workers)` grid point and
/// returns the measured sweep.
pub fn wavefront_sweep(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    mix: &[(BenchmarkJob, u64)],
    grid: &[(usize, usize, usize, usize)],
) -> Vec<SweepPoint> {
    grid.iter()
        .map(|&(wavefront, shards, prefetch_depth, io_workers)| {
            let start = std::time::Instant::now();
            let report = run_wavefront_placed(
                store,
                workers,
                hierarchy,
                wavefront,
                shards,
                prefetch_depth,
                io_workers,
                ShardPlacement::RoundRobin,
                mix,
            );
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(report.completed, "sweep point must converge");
            SweepPoint {
                wavefront,
                shards,
                prefetch_depth,
                workers,
                io_workers,
                modeled_ms: report.modeled_seconds * 1e3,
                wall_ms,
                loads: report.loads,
            }
        })
        .collect()
}

/// Outcome of one wall-clock gate: the measured ratio plus whether the
/// threshold was enforced or the gate was recorded-and-skipped (and
/// why).  Serialized into the bench JSON so CI trend tooling can tell
/// a passing gate from one the host hardware could not express.
#[derive(Clone, Debug)]
pub struct WallGate {
    /// Gate label, e.g. `concurrent-executor`.
    pub name: String,
    /// Required wall-clock speedup.
    pub threshold: f64,
    /// Measured wall-clock speedup.
    pub measured: f64,
    /// `enforced`, `skipped-cores`, or `skipped-scale`.
    pub status: String,
}

impl WallGate {
    /// Resolves a gate's status from the host and run scale: enforced
    /// only where `cores` can express the parallelism and the run is at
    /// gate scale; otherwise recorded-and-skipped with the reason.
    pub fn resolve(
        name: &str,
        threshold: f64,
        measured: f64,
        cores: usize,
        at_scale: bool,
    ) -> Self {
        let status = if cores < 4 {
            "skipped-cores"
        } else if !at_scale {
            "skipped-scale"
        } else {
            "enforced"
        };
        WallGate { name: name.to_string(), threshold, measured, status: status.to_string() }
    }

    /// Whether the threshold is live on this host/scale.
    pub fn enforced(&self) -> bool {
        self.status == "enforced"
    }
}

/// The shared `"gates": [...]` JSON fragment (two-space indent level).
fn gates_json(gates: &[WallGate]) -> String {
    let mut s = String::from("  \"gates\": [\n");
    for (i, g) in gates.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"gate\": \"{}\", \"threshold\": {:.2}, \"measured\": {:.3}, \
             \"status\": \"{}\"}}{}\n",
            g.name,
            g.threshold,
            g.measured,
            g.status,
            if i + 1 < gates.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]");
    s
}

/// Serializes a sweep as the machine-readable `BENCH_wavefront.json`
/// tracked by CI (hand-rolled writer: the workspace is offline and
/// carries no serde).  Wall-clock figures only mean something relative
/// to the host, so every row carries the worker split and its
/// wall-vs-modeled ratio, and the envelope records the cores and the
/// wall-gate outcomes.
pub fn wavefront_sweep_json(
    dataset: &str,
    scale_shrink: u32,
    points: &[SweepPoint],
    gates: &[WallGate],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!("  \"scale_shrink\": {scale_shrink},\n"));
    s.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"wavefront\": {}, \"shards\": {}, \"prefetch_depth\": {}, \
             \"workers\": {}, \"io_workers\": {}, \"modeled_ms\": {:.6}, \
             \"wall_ms\": {:.3}, \"wall_vs_modeled\": {:.4}, \"loads\": {}}}{}\n",
            p.wavefront,
            p.shards,
            p.prefetch_depth,
            p.workers,
            p.io_workers,
            p.modeled_ms,
            p.wall_ms,
            p.wall_vs_modeled(),
            p.loads,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&gates_json(gates));
    s.push_str("\n}\n");
    s
}

/// Serves a generated trace through the CGraph [`ServeLoop`]:
/// arrivals rescaled by `seconds_per_hour`, admitted under `window`
/// (virtual seconds), executed at wavefront `width`.  Sources rotate
/// over 64 vertices like [`submit_mix`].
pub fn serve_trace(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    trace: &[JobSpan],
    seconds_per_hour: f64,
    window: f64,
    width: usize,
) -> ServeReport {
    serve_trace_observed(
        store,
        workers,
        hierarchy,
        trace,
        seconds_per_hour,
        window,
        width,
        None,
    )
}

/// [`serve_trace`] under an explicit observer (`Some` = tracing and
/// metrics live, covering the executor *and* the serve loop) — the
/// traced half of the serving tracing-overhead gate.
#[allow(clippy::too_many_arguments)]
pub fn serve_trace_observed(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    trace: &[JobSpan],
    seconds_per_hour: f64,
    window: f64,
    width: usize,
    observer: Option<Arc<Observer>>,
) -> ServeReport {
    let engine = Engine::new(
        Arc::clone(store),
        EngineConfig { workers, hierarchy, wavefront: width, observer, ..EngineConfig::default() },
    );
    let mut serve = ServeLoop::new(
        engine,
        ServeConfig { admission_window: window, time_scale: 1.0, ..ServeConfig::default() },
    );
    serve.offer_all(trace_arrivals(trace, seconds_per_hour, 64));
    serve.serve()
}

/// Serves the same trace through the FIFO streaming baseline
/// ([`FifoServe`] over a [`StreamEngine`]) — the serving layer's
/// comparison denominator.
pub fn serve_trace_stream(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    trace: &[JobSpan],
    seconds_per_hour: f64,
) -> ServeReport {
    let engine = StreamEngine::new(
        Arc::clone(store),
        StreamConfig { workers, hierarchy, ..StreamConfig::default() },
    );
    let mut serve = FifoServe::new(engine, 1.0);
    serve.offer_all(trace_arrivals(trace, seconds_per_hour, 64));
    serve.serve()
}

/// Serves the trace through the CGraph [`ServeLoop`] under a seeded
/// fault plane with load shedding and brownout armed — the degraded
/// half of the `bench_chaos` differential.  Pass
/// [`FaultConfig::default()`] (all rates zero) for the clean half: the
/// engine strips a disabled plane at construction, so the clean run is
/// bit-identical to [`serve_trace`].  `max_backlog = 0` disables
/// shedding.  Returns the report plus the plane's final fault stats.
#[allow(clippy::too_many_arguments)]
pub fn serve_trace_chaos(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    trace: &[JobSpan],
    seconds_per_hour: f64,
    window: f64,
    width: usize,
    faults: FaultConfig,
    max_backlog: usize,
) -> (ServeReport, FaultStats) {
    let plane = FaultPlane::new(faults);
    let engine = Engine::new(
        Arc::clone(store),
        EngineConfig {
            workers,
            hierarchy,
            wavefront: width,
            faults: Some(Arc::clone(&plane)),
            ..EngineConfig::default()
        },
    );
    let mut serve = ServeLoop::new(
        engine,
        ServeConfig {
            admission_window: window,
            time_scale: 1.0,
            max_backlog,
            brownout_backlog: if max_backlog > 0 { max_backlog / 2 } else { 0 },
            ..ServeConfig::default()
        },
    );
    serve.offer_all(trace_arrivals(trace, seconds_per_hour, 64));
    let report = serve.serve();
    (report, plane.stats())
}

/// One half (clean or faulted) of the chaos differential.
#[derive(Clone, Debug)]
pub struct ChaosPoint {
    /// Row label (`"clean"` / `"faulted"`).
    pub label: &'static str,
    /// Jobs the trace offered.
    pub offered: usize,
    /// Jobs that ran to convergence.
    pub completed: usize,
    /// Jobs quarantined after retry/reroute exhaustion.
    pub quarantined: u64,
    /// Offers shed at admission.
    pub rejected: u64,
    /// Fetch retries burned.
    pub retries: u64,
    /// Fetches rerouted by open breakers.
    pub rerouted: u64,
    /// Breaker trips.
    pub breaker_trips: u64,
    /// Jobs per virtual second of makespan.
    pub throughput: f64,
    /// Mean end-to-end latency over completed jobs (virtual seconds).
    pub mean_latency: f64,
    /// Partition loads performed.
    pub loads: u64,
    /// Wall-clock milliseconds of the serve run.
    pub wall_ms: f64,
}

impl ChaosPoint {
    /// Distills a serve report plus fault stats into one chaos row.
    pub fn from_report(
        label: &'static str,
        offered: usize,
        report: &ServeReport,
        stats: &FaultStats,
        wall_ms: f64,
    ) -> ChaosPoint {
        let rows = report.per_job();
        let done: Vec<_> = rows
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
            .collect();
        let mean_latency = if done.is_empty() {
            0.0
        } else {
            done.iter().map(|r| r.latency).sum::<f64>() / done.len() as f64
        };
        ChaosPoint {
            label,
            offered,
            completed: done.len(),
            quarantined: report.quarantined,
            rejected: report.rejected,
            retries: report.retries,
            rerouted: stats.rerouted,
            breaker_trips: stats.breaker_trips,
            throughput: report.throughput(),
            mean_latency,
            loads: report.loads,
            wall_ms,
        }
    }

    /// Fraction of offered jobs that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Every offered job must be accounted for exactly once:
    /// completed, quarantined, or shed.  A shortfall is a lost job.
    pub fn lost_jobs(&self) -> i64 {
        self.offered as i64 - self.completed as i64 - self.quarantined as i64 - self.rejected as i64
    }
}

/// Serializes the chaos differential as the machine-readable
/// `BENCH_chaos.json` tracked by CI (hand-rolled like
/// [`serve_sweep_json`]: the workspace is offline, no serde).
pub fn chaos_json(
    dataset: &str,
    scale_shrink: u32,
    fault_seed: u64,
    fetch_rate: f64,
    points: &[ChaosPoint],
    gates: &[WallGate],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!("  \"scale_shrink\": {scale_shrink},\n"));
    s.push_str(&format!("  \"fault_seed\": {fault_seed},\n"));
    s.push_str(&format!("  \"fetch_rate\": {fetch_rate:.6},\n"));
    s.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"offered\": {}, \"completed\": {}, \
             \"quarantined\": {}, \"rejected\": {}, \"retries\": {}, \
             \"rerouted\": {}, \"breaker_trips\": {}, \
             \"completion_rate\": {:.6}, \"lost_jobs\": {}, \
             \"throughput\": {:.6}, \"mean_latency\": {:.6}, \
             \"loads\": {}, \"wall_ms\": {:.3}}}{}\n",
            p.label,
            p.offered,
            p.completed,
            p.quarantined,
            p.rejected,
            p.retries,
            p.rerouted,
            p.breaker_trips,
            p.completion_rate(),
            p.lost_jobs(),
            p.throughput,
            p.mean_latency,
            p.loads,
            p.wall_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&gates_json(gates));
    s.push_str("\n}\n");
    s
}

/// One measured point of the serving sweep.
#[derive(Clone, Copy, Debug)]
pub struct ServePoint {
    /// Admission window in virtual seconds.
    pub admission_window: f64,
    /// Wavefront width the engine executed with.
    pub wavefront: usize,
    /// Jobs served.
    pub jobs: usize,
    /// Jobs per virtual second of makespan.
    pub throughput: f64,
    /// Mean end-to-end latency (virtual seconds).
    pub mean_latency: f64,
    /// Mean admission-queue wait (virtual seconds).
    pub mean_wait: f64,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: f64,
    /// Partition loads performed.
    pub loads: u64,
    /// Fraction of the same-wavefront FIFO (window 0) run's loads spared.
    pub spared_vs_fifo: f64,
    /// Offers shed at admission (always 0 without a backlog bound).
    pub rejected: u64,
    /// Jobs quarantined by the fault plane (always 0 without faults).
    pub quarantined: u64,
    /// Fetch retries burned by the fault plane (always 0 without faults).
    pub retries: u64,
    /// Wall-clock milliseconds of the serve run.
    pub wall_ms: f64,
}

/// Serves the trace once per `(admission_window, wavefront)` grid point
/// and returns the measured sweep.  Every wavefront's `window = 0` row
/// is the FIFO denominator for that wavefront's `spared_vs_fifo`
/// figures (0.0 when the grid carries no such row).
pub fn serve_sweep(
    store: &Arc<SnapshotStore>,
    workers: usize,
    hierarchy: HierarchyConfig,
    trace: &[JobSpan],
    seconds_per_hour: f64,
    grid: &[(f64, usize)],
) -> Vec<ServePoint> {
    let reports: Vec<(f64, usize, ServeReport, f64)> = grid
        .iter()
        .map(|&(window, width)| {
            let start = std::time::Instant::now();
            let report = serve_trace(
                store,
                workers,
                hierarchy,
                trace,
                seconds_per_hour,
                window,
                width,
            );
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(report.completed, "sweep point must serve to convergence");
            (window, width, report, wall_ms)
        })
        .collect();
    reports
        .iter()
        .map(|&(window, width, ref report, wall_ms)| {
            let fifo_loads = reports
                .iter()
                .find(|&&(w, k, ..)| w == 0.0 && k == width)
                .map(|(_, _, r, _)| r.loads);
            let spared_vs_fifo = match fifo_loads {
                Some(f) if f > 0 => 1.0 - report.loads as f64 / f as f64,
                _ => 0.0,
            };
            // Per-job figures come off the report's `per_job()` rows —
            // wait/latency pre-derived, no re-deriving from raw stamps.
            let rows = report.per_job();
            let mean_of = |f: fn(&cgraph_core::JobRow) -> f64| {
                if rows.is_empty() {
                    0.0
                } else {
                    rows.iter().map(f).sum::<f64>() / rows.len() as f64
                }
            };
            ServePoint {
                admission_window: window,
                wavefront: width,
                jobs: rows.len(),
                throughput: report.throughput(),
                mean_latency: mean_of(|r| r.latency),
                mean_wait: mean_of(|r| r.wait),
                p99_latency: report.latency_percentile(99.0),
                loads: report.loads,
                spared_vs_fifo,
                rejected: report.rejected,
                quarantined: report.quarantined,
                retries: report.retries,
                wall_ms,
            }
        })
        .collect()
}

/// Serializes a serving sweep as the machine-readable
/// `BENCH_serve.json` tracked by CI (hand-rolled like
/// [`wavefront_sweep_json`]: the workspace is offline, no serde).
/// `gates` carries the wall-gate rows (e.g. the tracing-overhead gate).
pub fn serve_sweep_json(
    dataset: &str,
    scale_shrink: u32,
    points: &[ServePoint],
    gates: &[WallGate],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!("  \"scale_shrink\": {scale_shrink},\n"));
    s.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"admission_window\": {:.6}, \"wavefront\": {}, \"jobs\": {}, \
             \"throughput\": {:.6}, \"mean_latency\": {:.6}, \"mean_wait\": {:.6}, \
             \"p99_latency\": {:.6}, \
             \"loads\": {}, \"spared_vs_fifo\": {:.6}, \
             \"rejected\": {}, \"quarantined\": {}, \"retries\": {}, \
             \"wall_ms\": {:.3}}}{}\n",
            p.admission_window,
            p.wavefront,
            p.jobs,
            p.throughput,
            p.mean_latency,
            p.mean_wait,
            p.p99_latency,
            p.loads,
            p.spared_vs_fifo,
            p.rejected,
            p.quarantined,
            p.retries,
            p.wall_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&gates_json(gates));
    s.push_str("\n}\n");
    s
}

/// The paper's standard four-job mix at timestamp 0.
pub fn paper_mix() -> Vec<(BenchmarkJob, u64)> {
    BenchmarkJob::ALL.iter().map(|&j| (j, 0)).collect()
}

/// `n` jobs rotating through the paper's mix, all at timestamp 0.
pub fn rotating_mix(n: usize) -> Vec<(BenchmarkJob, u64)> {
    (0..n).map(|i| (BenchmarkJob::ALL[i % 4], 0)).collect()
}

/// Builds an evolving store: `snapshots` deltas on top of the dataset, each
/// changing `change_ratio` of the edges (half additions, half removals).
pub fn evolving_store(
    ds: Dataset,
    scale: Scale,
    snapshots: usize,
    change_ratio: f64,
) -> Arc<SnapshotStore> {
    let el = ds.generate(scale.shrink);
    let n = el.num_vertices();
    let ps = partition_edges(&el);
    let mut store = SnapshotStore::new(ps);
    // Track the live edge multiset host-side so removals always exist.
    let mut current: Vec<Edge> = el.edges().to_vec();
    let per_snapshot = ((el.len() as f64 * change_ratio).round() as usize).max(1);
    for s in 0..snapshots {
        let mut additions = Vec::new();
        let mut removals: Vec<(u32, u32)> = Vec::new();
        for i in 0..per_snapshot {
            let k = (s * per_snapshot + i) as u32;
            if i % 2 == 0 {
                let mut src = k.wrapping_mul(2654435761) % n;
                let dst = (k.wrapping_mul(97).wrapping_add(13)) % n;
                if src == dst {
                    src = (src + 1) % n;
                }
                additions.push(Edge::unit(src, dst));
            } else if !current.is_empty() {
                let e = current[(k as usize).wrapping_mul(31) % current.len()];
                removals.push((e.src, e.dst));
            }
        }
        removals.sort_unstable();
        removals.dedup();
        for &(src, dst) in &removals {
            if let Some(pos) = current.iter().position(|e| e.src == src && e.dst == dst) {
                current.swap_remove(pos);
            }
        }
        current.extend_from_slice(&additions);
        let delta = GraphDelta { additions, removals };
        store
            .apply((s as u64 + 1) * 10, &delta)
            .expect("evolving delta applies");
    }
    Arc::new(store)
}

/// A deterministic ingest stream for the O(Δ) snapshot-chain benchmarks.
///
/// Each delta adds `per_delta` edges from two fixed, well-separated
/// source vertices — so few partitions rebuild, and (because every delta
/// also removes the previous delta's edges) those partitions never grow
/// — to destinations scattered over the whole vertex range, so the
/// accumulated vertex-override state grows with every delta.  The
/// pre-layering cumulative layout recloned all of that state per apply;
/// the layered chain writes only the delta.
pub fn ingest_stream(n: u32, deltas: usize, per_delta: usize) -> Vec<GraphDelta> {
    ingest_stream_spread(n, deltas, per_delta, 2)
}

/// [`ingest_stream`] with `sources` evenly spread source vertices: each
/// delta's additions fan out from `sources` fixed points, so every
/// delta rebuilds ~`sources` partitions across several shards — the
/// stream shape the concurrent-apply benchmark fans out over.
pub fn ingest_stream_spread(
    n: u32,
    deltas: usize,
    per_delta: usize,
    sources: u32,
) -> Vec<GraphDelta> {
    let sources = sources.clamp(1, n);
    let edge = |i: usize, j: usize| -> Edge {
        let k = (i * per_delta + j) as u32;
        let src = (k % sources) * (n / sources);
        let mut dst = k.wrapping_mul(2654435761) % n;
        if dst == src {
            dst = (dst + 1) % n;
        }
        Edge::unit(src, dst)
    };
    (0..deltas)
        .map(|i| {
            let additions: Vec<Edge> = (0..per_delta).map(|j| edge(i, j)).collect();
            let removals: Vec<(u32, u32)> = if i == 0 {
                Vec::new()
            } else {
                (0..per_delta)
                    .map(|j| {
                        let e = edge(i - 1, j);
                        (e.src, e.dst)
                    })
                    .collect()
            };
            GraphDelta { additions, removals }
        })
        .collect()
}

/// An **additions-only** delta stream for the incremental-resume
/// benchmark: every delta adds `per_delta` edges and removes nothing,
/// so each inter-version range is monotone-safe and a resumed job may
/// take the seeded O(Δ) path ([`ingest_stream`] removes the previous
/// delta's edges and would force the from-scratch fallback on every
/// version).  Sources and destinations are scattered over the whole
/// vertex range so deltas touch different partitions each version.
pub fn growth_stream(n: u32, deltas: usize, per_delta: usize) -> Vec<GraphDelta> {
    let edge = |i: usize, j: usize| -> Edge {
        let k = (i * per_delta + j) as u32;
        let src = k.wrapping_mul(2246822519) % n;
        let mut dst = k.wrapping_mul(2654435761) % n;
        if dst == src {
            dst = (dst + 1) % n;
        }
        Edge::unit(src, dst)
    };
    (0..deltas)
        .map(|i| GraphDelta {
            additions: (0..per_delta).map(|j| edge(i, j)).collect(),
            removals: Vec::new(),
        })
        .collect()
}

/// One sampled version of the incremental-resume benchmark: the same
/// snapshot bound from scratch and resumed from the previous version's
/// converged result.
#[derive(Clone, Debug)]
pub struct IncrementalPoint {
    /// Snapshot timestamp this version bound.
    pub version: u64,
    /// From-scratch wall time for this version, ms.
    pub scratch_ms: f64,
    /// Resumed wall time for this version, ms.
    pub resumed_ms: f64,
    /// Partition loads the from-scratch run performed.
    pub scratch_loads: u64,
    /// Partition loads the resumed run performed.
    pub resumed_loads: u64,
}

/// Whole-stream totals of the incremental-resume benchmark.
#[derive(Clone, Debug)]
pub struct IncrementalSummary {
    /// Vertices in the base graph.
    pub vertices: u32,
    /// Deltas in the stream (versions beyond the base snapshot).
    pub deltas: usize,
    /// Edges added per delta.
    pub per_delta: usize,
    /// Program driven over the stream.
    pub program: String,
    /// Resubmissions that took the seeded O(Δ) path.
    pub seeded: usize,
    /// Total from-scratch wall across every version, ms.
    pub scratch_wall_ms: f64,
    /// Total chained-resume wall across every version, ms.
    pub resumed_wall_ms: f64,
    /// Total from-scratch partition loads.
    pub scratch_loads: u64,
    /// Total chained-resume partition loads.
    pub resumed_loads: u64,
}

impl IncrementalSummary {
    /// From-scratch wall over chained-resume wall (the gated figure).
    pub fn speedup(&self) -> f64 {
        if self.resumed_wall_ms <= 0.0 {
            return 0.0;
        }
        self.scratch_wall_ms / self.resumed_wall_ms
    }
}

/// Serializes the incremental-resume run as `BENCH_incremental.json`
/// (hand-rolled like [`wavefront_sweep_json`]: the workspace is
/// offline, no serde).
pub fn incremental_json(
    dataset: &str,
    scale_shrink: u32,
    summary: &IncrementalSummary,
    points: &[IncrementalPoint],
    gates: &[WallGate],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!("  \"scale_shrink\": {scale_shrink},\n"));
    s.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    s.push_str(&format!("  \"vertices\": {},\n", summary.vertices));
    s.push_str(&format!("  \"deltas\": {},\n", summary.deltas));
    s.push_str(&format!("  \"per_delta\": {},\n", summary.per_delta));
    s.push_str(&format!("  \"program\": \"{}\",\n", summary.program));
    s.push_str(&format!("  \"seeded\": {},\n", summary.seeded));
    s.push_str(&format!(
        "  \"scratch_wall_ms\": {:.3},\n",
        summary.scratch_wall_ms
    ));
    s.push_str(&format!(
        "  \"resumed_wall_ms\": {:.3},\n",
        summary.resumed_wall_ms
    ));
    s.push_str(&format!(
        "  \"scratch_loads\": {},\n",
        summary.scratch_loads
    ));
    s.push_str(&format!(
        "  \"resumed_loads\": {},\n",
        summary.resumed_loads
    ));
    s.push_str(&format!("  \"speedup\": {:.3},\n", summary.speedup()));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"version\": {}, \"scratch_ms\": {:.3}, \"resumed_ms\": {:.3}, \
             \"scratch_loads\": {}, \"resumed_loads\": {}}}{}\n",
            p.version,
            p.scratch_ms,
            p.resumed_ms,
            p.scratch_loads,
            p.resumed_loads,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&gates_json(gates));
    s.push_str("\n}\n");
    s
}

/// One sampled point of an ingest run: state after `chain_len` deltas.
#[derive(Clone, Debug)]
pub struct IngestPoint {
    /// Deltas applied so far.
    pub chain_len: usize,
    /// Cumulative apply wall time up to this chain length, µs.
    pub cum_apply_us: f64,
    /// Resident bytes held by the delta chains beyond the base graph.
    pub override_bytes: u64,
    /// Mean latest-view partition+version lookup cost, ns (must stay
    /// flat in chain length: the current-state index answers in O(1)).
    pub latest_lookup_ns: f64,
}

/// One compaction policy's full pass over an ingest stream.
#[derive(Clone, Debug)]
pub struct IngestRun {
    /// Human-readable policy label.
    pub policy: String,
    /// Samples at each requested chain length.
    pub points: Vec<IngestPoint>,
    /// Per-apply wall time, µs, for every delta in order.
    pub apply_us: Vec<f64>,
}

impl IngestRun {
    /// Total ingest wall time, µs.
    pub fn total_us(&self) -> f64 {
        self.apply_us.iter().sum()
    }

    /// Mean per-apply wall time over `range`, µs.
    pub fn mean_us(&self, range: std::ops::Range<usize>) -> f64 {
        let s = &self.apply_us[range];
        s.iter().sum::<f64>() / s.len() as f64
    }
}

/// Applies `stream` to a fresh store under `policy`, sampling cost,
/// resident bytes, and latest-view lookup time at each chain length in
/// `marks`.
pub fn ingest_run(
    policy_label: &str,
    policy: CompactionPolicy,
    base: &PartitionSet,
    stream: &[GraphDelta],
    marks: &[usize],
) -> IngestRun {
    ingest_run_on(
        policy_label,
        SnapshotStore::new(base.clone()).with_compaction(policy),
        stream,
        marks,
    )
}

/// [`ingest_run`] over a caller-configured store — the hook the
/// sharded / concurrent-apply / capacity-limited rows use.
pub fn ingest_run_on(
    policy_label: &str,
    mut store: ShardedSnapshotStore,
    stream: &[GraphDelta],
    marks: &[usize],
) -> IngestRun {
    let np = store.base().num_partitions() as u32;
    let mut apply_us = Vec::with_capacity(stream.len());
    let mut points = Vec::new();
    for (i, d) in stream.iter().enumerate() {
        let start = std::time::Instant::now();
        store
            .apply((i as u64 + 1) * 10, d)
            .expect("ingest delta applies");
        apply_us.push(start.elapsed().as_secs_f64() * 1e6);
        if marks.contains(&(i + 1)) {
            let override_bytes = store.override_bytes();
            // Probe the latest view (GraphView needs the Arc spelling;
            // nothing else holds a reference, so unwrap round-trips).
            let arc = Arc::new(store);
            let view = arc.latest();
            let rounds = 64usize;
            let start = std::time::Instant::now();
            let mut acc = 0u64;
            for _ in 0..rounds {
                for pid in 0..np {
                    acc += view.version_of(pid) as u64;
                    acc += view.partition(pid).num_edges() as u64;
                }
            }
            let latest_lookup_ns =
                start.elapsed().as_secs_f64() * 1e9 / (rounds as f64 * np as f64);
            std::hint::black_box(acc);
            drop(view);
            store = Arc::try_unwrap(arc).expect("probe view dropped");
            points.push(IngestPoint {
                chain_len: i + 1,
                cum_apply_us: apply_us.iter().sum(),
                override_bytes,
                latest_lookup_ns,
            });
        }
    }
    IngestRun { policy: policy_label.to_string(), points, apply_us }
}

/// Serializes ingest runs as the machine-readable `BENCH_ingest.json`
/// tracked by CI (hand-rolled writer: the workspace is offline and
/// carries no serde).
pub fn ingest_sweep_json(
    dataset: &str,
    vertices: u32,
    per_delta: usize,
    runs: &[IngestRun],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!("  \"vertices\": {vertices},\n"));
    s.push_str(&format!("  \"edges_per_delta\": {per_delta},\n"));
    s.push_str("  \"runs\": [\n");
    for (r, run) in runs.iter().enumerate() {
        let n = run.apply_us.len();
        s.push_str(&format!(
            "    {{\"policy\": \"{}\", \"total_apply_us\": {:.1}, \
             \"mean_first50_us\": {:.2}, \"mean_last50_us\": {:.2}, \"points\": [\n",
            run.policy,
            run.total_us(),
            run.mean_us(0..50.min(n)),
            run.mean_us(n.saturating_sub(50)..n),
        ));
        for (i, p) in run.points.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"chain_len\": {}, \"cum_apply_us\": {:.1}, \
                 \"override_bytes\": {}, \"latest_lookup_ns\": {:.1}}}{}\n",
                p.chain_len,
                p.cum_apply_us,
                p.override_bytes,
                p.latest_lookup_ns,
                if i + 1 < run.points.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "    ]}}{}\n",
            if r + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

// ---- multi-node store sweeps (placement / capacity / concurrent apply) ----

/// A graph of `communities` disjoint R-MAT communities laid out over
/// consecutive vertex ranges: community `c` occupies
/// `[c * 2^scale, (c+1) * 2^scale)` and no edge crosses communities.
/// Partitioned in order, each partition's edges belong to (almost
/// always exactly) one community — the clustered-footprint workload the
/// locality placer exists for: a frontier job started inside one
/// community only ever touches that community's partitions.
pub fn community_graph(communities: usize, scale: u32, edge_factor: u32, seed: u64) -> EdgeList {
    let block = 1u32 << scale;
    let n = block * communities as u32;
    let mut edges: Vec<Edge> = Vec::new();
    for c in 0..communities as u32 {
        let el = generate::rmat(
            scale,
            edge_factor,
            generate::RmatParams::default(),
            seed.wrapping_add(c as u64),
        );
        edges.extend(el.edges().iter().map(|e| Edge {
            src: e.src + c * block,
            dst: e.dst + c * block,
            ..*e
        }));
    }
    EdgeList::from_edges(edges, n)
}

/// Submits one BFS and one SSSP per community, sourced at each
/// community's base vertex — `2 * communities` jobs whose partition
/// footprints are disjoint community blocks.
pub fn submit_community_jobs<E: JobEngine>(engine: &mut E, communities: usize, block: u32) {
    for c in 0..communities as u32 {
        engine.submit_program(Bfs::new(c * block));
        engine.submit_program(Sssp::new(c * block + 1));
    }
}

/// One measured point of the placement sweep.
#[derive(Clone, Debug)]
pub struct PlacementPoint {
    /// Placement label (`round_robin`, `hash`, `locality`).
    pub placement: String,
    /// Partition loads performed.
    pub loads: u64,
    /// Total disk bytes fetched across all shard lanes.
    pub total_fetch_bytes: u64,
    /// Disk bytes jobs pulled from outside their home shards.
    pub cross_shard_fetch_bytes: u64,
    /// Pipeline-modeled milliseconds.
    pub modeled_ms: f64,
    /// Wall-clock milliseconds of the run.
    pub wall_ms: f64,
    /// Compute worker threads of the run.
    pub workers: usize,
}

impl PlacementPoint {
    /// Cross-shard share of all fetched bytes (0 when nothing fetched).
    pub fn cross_fraction(&self) -> f64 {
        if self.total_fetch_bytes == 0 {
            0.0
        } else {
            self.cross_shard_fetch_bytes as f64 / self.total_fetch_bytes as f64
        }
    }

    /// Wall time over modeled time (0 when nothing was modeled).
    pub fn wall_vs_modeled(&self) -> f64 {
        if self.modeled_ms == 0.0 {
            0.0
        } else {
            self.wall_ms / self.modeled_ms
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_placed_community(
    ps: &PartitionSet,
    shards: usize,
    placement: ShardPlacement,
    label: &str,
    workers: usize,
    hierarchy: HierarchyConfig,
    communities: usize,
    block: u32,
) -> (PlacementPoint, Engine) {
    let store = Arc::new(ShardedSnapshotStore::with_placement(
        ps.clone(),
        shards,
        placement,
    ));
    let mut engine = Engine::new(
        store,
        EngineConfig {
            workers,
            hierarchy,
            wavefront: 4,
            prefetch_depth: 2,
            ..EngineConfig::default()
        },
    );
    let start = std::time::Instant::now();
    submit_community_jobs(&mut engine, communities, block);
    let report = engine.run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(report.completed, "placement sweep point must converge");
    let point = PlacementPoint {
        placement: label.to_string(),
        loads: report.loads,
        total_fetch_bytes: engine.shard_fetch_bytes().iter().sum(),
        cross_shard_fetch_bytes: engine.cross_shard_fetch_bytes(),
        modeled_ms: report.modeled_seconds * 1e3,
        wall_ms,
        workers,
    };
    (point, engine)
}

/// Runs the community mix over `{round_robin, hash, locality}` stores
/// of `shards` shards on an out-of-core hierarchy — the bench_wavefront
/// regime, swept over placements.  The locality table is profiled from
/// the round-robin run's observed job footprints
/// ([`Engine::footprint_profile`]), exactly how a deployment would feed
/// the placer.  Returns the three points in that order.
pub fn placement_sweep(
    ps: &PartitionSet,
    shards: usize,
    workers: usize,
    hierarchy: HierarchyConfig,
    communities: usize,
    block: u32,
) -> Vec<PlacementPoint> {
    let (rr, profiled) = run_placed_community(
        ps,
        shards,
        ShardPlacement::RoundRobin,
        "round_robin",
        workers,
        hierarchy,
        communities,
        block,
    );
    let profile = profiled.footprint_profile();
    let locality = ShardPlacement::locality(&profile, ps.num_partitions(), shards);
    let (hash, _) = run_placed_community(
        ps,
        shards,
        ShardPlacement::Hash,
        "hash",
        workers,
        hierarchy,
        communities,
        block,
    );
    let (local, _) = run_placed_community(
        ps,
        shards,
        locality,
        "locality",
        workers,
        hierarchy,
        communities,
        block,
    );
    vec![rr, hash, local]
}

/// One measured point of the concurrent-apply sweep.
#[derive(Clone, Debug)]
pub struct ApplyPoint {
    /// Worker threads `apply` fanned out on.
    pub apply_workers: usize,
    /// Shards of the store.
    pub shards: usize,
    /// Total wall time of the whole stream, µs.
    pub total_apply_us: f64,
    /// Resident override bytes after the stream (must be identical at
    /// every worker count — concurrency never changes the result).
    pub override_bytes: u64,
}

/// Applies `stream` once per worker count in `workers_list` over a
/// fresh `shards`-shard store and measures the wall time.  Asserts the
/// bit-identity invariant: every run ends with identical resident
/// bytes and identical latest-view partition versions.
pub fn apply_sweep(
    base: &PartitionSet,
    stream: &[GraphDelta],
    shards: usize,
    workers_list: &[usize],
) -> Vec<ApplyPoint> {
    let mut points: Vec<ApplyPoint> = Vec::new();
    let mut reference: Option<Vec<cgraph_graph::VersionId>> = None;
    for &w in workers_list {
        let mut store =
            ShardedSnapshotStore::with_shards(base.clone(), shards).with_apply_workers(w);
        let start = std::time::Instant::now();
        for (i, d) in stream.iter().enumerate() {
            store.apply((i as u64 + 1) * 10, d).expect("stream applies");
        }
        let total_apply_us = start.elapsed().as_secs_f64() * 1e6;
        let override_bytes = store.override_bytes();
        let store = Arc::new(store);
        let view = store.latest();
        let versions: Vec<cgraph_graph::VersionId> = (0..base.num_partitions() as u32)
            .map(|pid| view.version_of(pid))
            .collect();
        match &reference {
            None => reference = Some(versions),
            Some(r) => assert_eq!(r, &versions, "apply_workers={w} diverged"),
        }
        points.push(ApplyPoint { apply_workers: w, shards, total_apply_us, override_bytes });
    }
    let bytes: Vec<u64> = points.iter().map(|p| p.override_bytes).collect();
    assert!(
        bytes.windows(2).all(|w| w[0] == w[1]),
        "override bytes must not depend on apply workers: {bytes:?}"
    );
    points
}

/// One measured point of the capacity sweep.
#[derive(Clone, Debug)]
pub struct CapacityPoint {
    /// Capacity label (`unlimited`, `tight`).
    pub label: String,
    /// The per-shard budget (`u64::MAX` = unlimited).
    pub max_resident_bytes: u64,
    /// Resident override bytes after the stream.
    pub override_bytes: u64,
    /// Largest per-shard resident chain.
    pub max_shard_resident: u64,
    /// Records whose payloads were spilled.
    pub spilled_records: usize,
    /// Spill re-fetch bytes charged by a historic-view engine pass.
    pub spill_refetch_bytes: u64,
}

/// Ingests `stream` under each capacity, then prices one
/// historic-bound BFS (arriving at the first snapshot) through the
/// engine so spilled records get re-fetched on their owning lanes.
pub fn capacity_sweep(
    base: &PartitionSet,
    stream: &[GraphDelta],
    shards: usize,
    caps: &[(&str, ShardCapacity)],
) -> Vec<CapacityPoint> {
    caps.iter()
        .map(|&(label, cap)| {
            let mut store = ShardedSnapshotStore::with_shards(base.clone(), shards)
                .with_compaction(CompactionPolicy::EveryK(8))
                .with_capacity(cap);
            for (i, d) in stream.iter().enumerate() {
                store.apply((i as u64 + 1) * 10, d).expect("stream applies");
            }
            let override_bytes = store.override_bytes();
            let max_shard_resident = (0..store.num_shards())
                .map(|s| store.shard_resident_bytes(s))
                .max()
                .unwrap_or(0);
            let spilled_records = (0..store.num_shards())
                .map(|s| store.shard(s).num_spilled())
                .sum();
            let store = Arc::new(store);
            let mut engine = Engine::new(Arc::clone(&store), EngineConfig::default());
            engine.submit_program_at(Bfs::new(0), 10);
            assert!(engine.run().completed);
            CapacityPoint {
                label: label.to_string(),
                max_resident_bytes: cap.max_resident_bytes,
                override_bytes,
                max_shard_resident,
                spilled_records,
                spill_refetch_bytes: engine.spill_fetch_bytes().iter().sum(),
            }
        })
        .collect()
}

/// Serializes the store sweeps as the machine-readable
/// `BENCH_store.json` tracked by CI (hand-rolled like its siblings:
/// the workspace is offline, no serde).
pub fn store_sweep_json(
    dataset: &str,
    scale_shrink: u32,
    placement: &[PlacementPoint],
    capacity: &[CapacityPoint],
    apply: &[ApplyPoint],
    gates: &[WallGate],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!("  \"scale_shrink\": {scale_shrink},\n"));
    // Apply speedups are wall-clock: they only express themselves on
    // machines with real parallelism, so the row set records the cores.
    s.push_str(&format!(
        "  \"cores\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    s.push_str("  \"placement\": [\n");
    for (i, p) in placement.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"placement\": \"{}\", \"loads\": {}, \"total_fetch_bytes\": {}, \
             \"cross_shard_fetch_bytes\": {}, \"cross_fraction\": {:.6}, \
             \"modeled_ms\": {:.6}, \"wall_ms\": {:.3}, \"wall_vs_modeled\": {:.4}, \
             \"workers\": {}}}{}\n",
            p.placement,
            p.loads,
            p.total_fetch_bytes,
            p.cross_shard_fetch_bytes,
            p.cross_fraction(),
            p.modeled_ms,
            p.wall_ms,
            p.wall_vs_modeled(),
            p.workers,
            if i + 1 < placement.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"capacity\": [\n");
    for (i, p) in capacity.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"max_resident_bytes\": {}, \"override_bytes\": {}, \
             \"max_shard_resident\": {}, \"spilled_records\": {}, \
             \"spill_refetch_bytes\": {}}}{}\n",
            p.label,
            // `null` = unlimited: a numeric sentinel would read as a
            // zero-byte budget to trend tooling.
            if p.max_resident_bytes == u64::MAX {
                "null".to_string()
            } else {
                p.max_resident_bytes.to_string()
            },
            p.override_bytes,
            p.max_shard_resident,
            p.spilled_records,
            p.spill_refetch_bytes,
            if i + 1 < capacity.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"apply\": [\n");
    for (i, p) in apply.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"apply_workers\": {}, \"shards\": {}, \"total_apply_us\": {:.1}, \
             \"override_bytes\": {}}}{}\n",
            p.apply_workers,
            p.shards,
            p.total_apply_us,
            p.override_bytes,
            if i + 1 < apply.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&gates_json(gates));
    s.push_str("\n}\n");
    s
}

/// Prints an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:<w$}", c, w = widths[i]));
            } else {
                s.push_str(&format!("  {:>w$}", c, w = widths[i]));
            }
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats a ratio as `x.xx`.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds as milliseconds.
pub fn fmt_ms(x: f64) -> String {
    format!("{:.2} ms", x * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_quick() {
        // from_args reads real argv; just check the constructor logic via
        // the documented default used when no flag is present.
        let s = Scale { shrink: 5 };
        let ps = partitions_for(Dataset::TwitterSim, s);
        assert!(ps.num_edges() > 0);
        assert!(ps.num_partitions() >= 16);
    }

    #[test]
    fn paper_mix_is_four_jobs() {
        let mix = paper_mix();
        assert_eq!(mix.len(), 4);
        assert_eq!(rotating_mix(8).len(), 8);
    }

    #[test]
    fn run_mix_produces_reports_for_all_engines() {
        let s = Scale { shrink: 7 };
        let ps = partitions_for(Dataset::TwitterSim, s);
        let h = hierarchy_for(Dataset::TwitterSim, &ps);
        let store = Arc::new(SnapshotStore::new(ps));
        for kind in [
            EngineKind::CGraph,
            EngineKind::CGraphWithout,
            EngineKind::Baseline(BaselinePreset::Seraph),
        ] {
            let out = run_engine(kind, &store, 2, h, &paper_mix());
            assert_eq!(out.jobs.len(), 4, "{}", kind.name());
            assert!(out.seconds > 0.0);
            for j in &out.jobs {
                assert!((0.0..=1.0).contains(&j.access_ratio), "{}", j.name);
            }
        }
    }

    #[test]
    fn sweep_measures_and_serializes() {
        let s = Scale { shrink: 7 };
        let ps = partitions_for(Dataset::TwitterSim, s);
        let h = out_of_core_hierarchy(&ps);
        assert!(
            h.memory_bytes < structure_bytes(&ps),
            "must stay out-of-core"
        );
        let store = Arc::new(SnapshotStore::new(ps));
        let grid = [(1, 1, 0, 0), (4, 4, 2, 0), (4, 4, 2, 2)];
        let points = wavefront_sweep(&store, 2, h, &paper_mix(), &grid);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.modeled_ms > 0.0 && p.loads > 0);
        }
        // The channel-staged executor row is transparent to everything
        // but the wall clock.
        assert_eq!(points[2].loads, points[1].loads);
        assert_eq!(
            points[2].modeled_ms.to_bits(),
            points[1].modeled_ms.to_bits()
        );
        let gate = WallGate::resolve("concurrent-executor", 1.5, 2.0, 2, true);
        assert_eq!(gate.status, "skipped-cores");
        assert!(!gate.enforced());
        assert!(WallGate::resolve("g", 1.5, 2.0, 8, true).enforced());
        assert_eq!(
            WallGate::resolve("g", 1.5, 2.0, 8, false).status,
            "skipped-scale"
        );
        let json = wavefront_sweep_json("twitter-sim", s.shrink, &points, &[gate]);
        assert!(json.contains("\"points\": ["));
        assert!(json.contains("\"prefetch_depth\": 2"));
        assert!(json.contains("\"io_workers\": 2"));
        assert!(json.contains("\"cores\": "));
        assert!(json.contains("\"gate\": \"concurrent-executor\""));
        assert!(json.contains("\"status\": \"skipped-cores\""));
        assert_eq!(json.matches("wavefront").count(), 3);
        assert!(!json.contains("},\n  ]"), "no trailing comma");
    }

    #[test]
    fn evolving_store_builds_snapshots() {
        let store = evolving_store(Dataset::TwitterSim, Scale { shrink: 7 }, 3, 0.001);
        assert_eq!(store.num_snapshots(), 3);
        let base = store.base_view();
        let latest = store.latest();
        assert!(base.shared_fraction(&latest) < 1.0);
    }
}
