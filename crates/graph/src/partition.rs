//! Vertex-cut partitioned graph representation (paper §3.2.1, Fig. 4).
//!
//! The shared graph `G = ∪ᵢ Gᵢ` is split into partitions holding an equal
//! number of edges.  A vertex incident to edges in several partitions has a
//! replica in each; exactly one replica is the *master*, the rest are
//! *mirrors*.  Computation on a loaded partition touches only local state —
//! cross-partition synchronization happens in the engine's Push stage by
//! routing mirror deltas to masters and master state back to mirrors.

use std::sync::Arc;

use crate::edge::Edge;
use crate::types::{LocalId, PartitionId, VertexId, Weight, NO_PARTITION};
use crate::wal;

/// Per-replica metadata stored inside a [`Partition`]
/// (the "Flag" and "Master Location" columns of the paper's Fig. 4(b)).
#[derive(Clone, Copy, Debug)]
pub struct VertexMeta {
    /// The global vertex id of this replica.
    pub vid: VertexId,
    /// Whether this replica is the master.
    pub is_master: bool,
    /// Partition holding the master replica.
    pub master_partition: PartitionId,
    /// Out-degree of the vertex in the *whole* graph (PageRank divides
    /// contributions by this, not by the partition-local degree).
    pub global_out_degree: u32,
    /// In-degree of the vertex in the whole graph.
    pub global_in_degree: u32,
}

/// One graph-structure partition: a bidirectional local CSR over its edge
/// share, plus replica metadata.
#[derive(Clone, Debug)]
pub struct Partition {
    id: PartitionId,
    /// Sorted global ids of all replicas (masters and mirrors) present here.
    vertices: Vec<VertexId>,
    meta: Vec<VertexMeta>,
    out_offsets: Vec<u32>,
    out_targets: Vec<LocalId>,
    out_weights: Vec<Weight>,
    in_offsets: Vec<u32>,
    in_sources: Vec<LocalId>,
    in_weights: Vec<Weight>,
    avg_degree: f64,
}

impl Partition {
    /// Builds a partition from its share of edges.
    ///
    /// `global_out`/`global_in` are whole-graph degree tables indexed by
    /// global vertex id; master assignment is patched in later by
    /// [`PartitionSet::assemble`].
    fn from_edges(id: PartitionId, edges: &[Edge], global_out: &[u32], global_in: &[u32]) -> Self {
        Partition::from_edges_with(id, edges, &|vid| {
            (global_out[vid as usize], global_in[vid as usize])
        })
    }

    /// Builds a partition with a caller-supplied global-degree lookup.
    ///
    /// Used when the snapshot store rebuilds individual partitions after a
    /// [`crate::snapshot::GraphDelta`], where degrees come from the
    /// snapshot's override chain instead of flat tables.
    pub(crate) fn from_edges_with(
        id: PartitionId,
        edges: &[Edge],
        degree_of: &dyn Fn(VertexId) -> (u32, u32),
    ) -> Self {
        // Collect the replica set: every endpoint of a local edge.
        let mut vertices: Vec<VertexId> = Vec::with_capacity(edges.len() * 2);
        for e in edges {
            vertices.push(e.src);
            vertices.push(e.dst);
        }
        vertices.sort_unstable();
        vertices.dedup();

        let nv = vertices.len();
        let local = |vid: VertexId| -> LocalId {
            vertices
                .binary_search(&vid)
                .expect("endpoint must be a replica") as LocalId
        };
        // Localize each edge once; the CSR passes below reuse the pair.
        let localized: Vec<(LocalId, LocalId)> =
            edges.iter().map(|e| (local(e.src), local(e.dst))).collect();

        // Out CSR.
        let mut out_counts = vec![0u32; nv + 1];
        for &(s, _) in &localized {
            out_counts[s as usize + 1] += 1;
        }
        for i in 0..nv {
            out_counts[i + 1] += out_counts[i];
        }
        let out_offsets = out_counts.clone();
        let mut cursor = out_counts;
        let mut out_targets = vec![0 as LocalId; edges.len()];
        let mut out_weights = vec![0.0 as Weight; edges.len()];
        for (e, &(s, d)) in edges.iter().zip(&localized) {
            let slot = cursor[s as usize] as usize;
            out_targets[slot] = d;
            out_weights[slot] = e.weight;
            cursor[s as usize] += 1;
        }

        // In CSR over the same edge set.
        let mut in_counts = vec![0u32; nv + 1];
        for &(_, d) in &localized {
            in_counts[d as usize + 1] += 1;
        }
        for i in 0..nv {
            in_counts[i + 1] += in_counts[i];
        }
        let in_offsets = in_counts.clone();
        let mut cursor = in_counts;
        let mut in_sources = vec![0 as LocalId; edges.len()];
        let mut in_weights = vec![0.0 as Weight; edges.len()];
        for (e, &(s, d)) in edges.iter().zip(&localized) {
            let slot = cursor[d as usize] as usize;
            in_sources[slot] = s;
            in_weights[slot] = e.weight;
            cursor[d as usize] += 1;
        }

        let mut degree_sum = 0u64;
        let meta = vertices
            .iter()
            .map(|&vid| {
                let (od, id_) = degree_of(vid);
                degree_sum += (od + id_) as u64;
                VertexMeta {
                    vid,
                    is_master: false,
                    master_partition: NO_PARTITION,
                    global_out_degree: od,
                    global_in_degree: id_,
                }
            })
            .collect();
        let avg_degree = if nv == 0 {
            0.0
        } else {
            degree_sum as f64 / nv as f64
        };

        Partition {
            id,
            vertices,
            meta,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            avg_degree,
        }
    }

    /// The partition id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Number of replicas (local vertices).
    pub fn num_local_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges assigned to this partition.
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Sorted global ids of all replicas.
    pub fn vertex_ids(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Replica metadata, parallel to [`vertex_ids`](Self::vertex_ids).
    pub fn meta(&self) -> &[VertexMeta] {
        &self.meta
    }

    /// Local index of a global vertex id, if it has a replica here.
    pub fn local_of(&self, vid: VertexId) -> Option<LocalId> {
        self.vertices.binary_search(&vid).ok().map(|i| i as LocalId)
    }

    /// Global id of a local vertex.
    pub fn global_of(&self, local: LocalId) -> VertexId {
        self.vertices[local as usize]
    }

    /// Local out-degree of a local vertex.
    pub fn local_out_degree(&self, local: LocalId) -> u32 {
        self.out_offsets[local as usize + 1] - self.out_offsets[local as usize]
    }

    /// Local out-edges of `local`: `(target local id, weight)` pairs.
    pub fn out_edges(&self, local: LocalId) -> impl Iterator<Item = (LocalId, Weight)> + '_ {
        let lo = self.out_offsets[local as usize] as usize;
        let hi = self.out_offsets[local as usize + 1] as usize;
        self.out_targets[lo..hi]
            .iter()
            .copied()
            .zip(self.out_weights[lo..hi].iter().copied())
    }

    /// Local in-edges of `local`: `(source local id, weight)` pairs.
    ///
    /// The in-CSR covers the same edge set as the out-CSR; it exists so
    /// backward-traversing programs (SCC phases) run on the same shared
    /// structure partitions instead of a second reversed graph.
    pub fn in_edges(&self, local: LocalId) -> impl Iterator<Item = (LocalId, Weight)> + '_ {
        let lo = self.in_offsets[local as usize] as usize;
        let hi = self.in_offsets[local as usize + 1] as usize;
        self.in_sources[lo..hi]
            .iter()
            .copied()
            .zip(self.in_weights[lo..hi].iter().copied())
    }

    /// Average whole-graph degree (in + out) of the replicas here —
    /// the `D(P)` term of the paper's Eq. 1.
    pub fn avg_degree(&self) -> f64 {
        self.avg_degree
    }

    /// Materializes this partition's edge share with global vertex ids
    /// (used by the snapshot store to rebuild a partition after a delta,
    /// and by callers needing a flat view of one partition).
    pub fn edges_global(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges());
        for li in 0..self.vertices.len() as LocalId {
            let src = self.global_of(li);
            for (t, w) in self.out_edges(li) {
                out.push(Edge::weighted(src, self.global_of(t), w));
            }
        }
        out
    }

    /// Re-stamps every replica's master location from a lookup.
    pub(crate) fn patch_masters(&mut self, master_of: &dyn Fn(VertexId) -> PartitionId) {
        let pid = self.id;
        for meta in &mut self.meta {
            let mp = master_of(meta.vid);
            meta.master_partition = mp;
            meta.is_master = mp == pid;
        }
    }

    /// Approximate in-memory footprint of the *structure* data in bytes
    /// (what the memory simulator charges when the partition is loaded).
    pub fn structure_bytes(&self) -> u64 {
        let per_vertex = std::mem::size_of::<VertexMeta>() + std::mem::size_of::<VertexId>();
        let per_edge = 2 * (std::mem::size_of::<LocalId>() + std::mem::size_of::<Weight>());
        (self.vertices.len() * per_vertex + self.num_edges() * per_edge + 64) as u64
    }

    /// Serializes the partition as an exact field dump.
    ///
    /// The raw CSR arrays are dumped rather than an edge list because the
    /// in-CSR's source ordering depends on original edge insertion order:
    /// rebuilding from edges could permute it, and float accumulation over
    /// in-edges would then diverge bit-for-bit.  The dump round-trips
    /// exactly (and decodes faster than a rebuild).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        wal::put_u32(out, self.id);
        wal::put_u32(out, self.vertices.len() as u32);
        for &v in &self.vertices {
            wal::put_u32(out, v);
        }
        // `vid` and `is_master` are derivable (vid = vertices[i],
        // is_master = master_partition == id), so only the rest is dumped.
        for m in &self.meta {
            wal::put_u32(out, m.master_partition);
            wal::put_u32(out, m.global_out_degree);
            wal::put_u32(out, m.global_in_degree);
        }
        for &o in &self.out_offsets {
            wal::put_u32(out, o);
        }
        wal::put_u32(out, self.out_targets.len() as u32);
        for &t in &self.out_targets {
            wal::put_u32(out, t);
        }
        for &w in &self.out_weights {
            wal::put_u32(out, w.to_bits());
        }
        for &o in &self.in_offsets {
            wal::put_u32(out, o);
        }
        for &s in &self.in_sources {
            wal::put_u32(out, s);
        }
        for &w in &self.in_weights {
            wal::put_u32(out, w.to_bits());
        }
        wal::put_f64(out, self.avg_degree);
    }

    /// Decodes a partition written by [`encode`](Self::encode), validating
    /// CSR shape invariants so a corrupt-but-checksummed payload surfaces as
    /// a typed error rather than a later index panic.
    pub(crate) fn decode(r: &mut wal::WireReader<'_>) -> Result<Partition, wal::StoreError> {
        let id = r.u32()?;
        let nv = r.len(4)?;
        let mut vertices = Vec::with_capacity(nv);
        for _ in 0..nv {
            vertices.push(r.u32()?);
        }
        let mut meta = Vec::with_capacity(nv);
        for &vid in &vertices {
            let master_partition = r.u32()?;
            let global_out_degree = r.u32()?;
            let global_in_degree = r.u32()?;
            meta.push(VertexMeta {
                vid,
                is_master: master_partition == id,
                master_partition,
                global_out_degree,
                global_in_degree,
            });
        }
        let read_offsets = |r: &mut wal::WireReader<'_>| -> Result<Vec<u32>, wal::StoreError> {
            let mut offs = Vec::with_capacity(nv + 1);
            for _ in 0..nv + 1 {
                offs.push(r.u32()?);
            }
            Ok(offs)
        };
        let out_offsets = read_offsets(r)?;
        let ne = r.len(4)?;
        if out_offsets.last().copied().unwrap_or(0) as usize != ne {
            return Err(r.corrupt("out-CSR offsets disagree with edge count"));
        }
        let read_locals = |r: &mut wal::WireReader<'_>| -> Result<Vec<LocalId>, wal::StoreError> {
            let mut v = Vec::with_capacity(ne);
            for _ in 0..ne {
                let l = r.u32()?;
                if l as usize >= nv {
                    return Err(r.corrupt("CSR entry references a local id out of range"));
                }
                v.push(l);
            }
            Ok(v)
        };
        let read_weights = |r: &mut wal::WireReader<'_>| -> Result<Vec<Weight>, wal::StoreError> {
            let mut v = Vec::with_capacity(ne);
            for _ in 0..ne {
                v.push(f32::from_bits(r.u32()?));
            }
            Ok(v)
        };
        let out_targets = read_locals(r)?;
        let out_weights = read_weights(r)?;
        let in_offsets = read_offsets(r)?;
        if in_offsets.last().copied().unwrap_or(0) as usize != ne {
            return Err(r.corrupt("in-CSR offsets disagree with edge count"));
        }
        let in_sources = read_locals(r)?;
        let in_weights = read_weights(r)?;
        let avg_degree = r.f64()?;
        Ok(Partition {
            id,
            vertices,
            meta,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            avg_degree,
        })
    }
}

/// The complete partitioned graph: partitions plus global replica tables.
#[derive(Clone, Debug)]
pub struct PartitionSet {
    partitions: Vec<Arc<Partition>>,
    num_vertices: VertexId,
    num_edges: u64,
    /// Master partition per global vertex (`NO_PARTITION` for isolated
    /// vertices, which have no replicas anywhere).
    master_of: Vec<PartitionId>,
    /// CSR map vertex -> replica partitions.
    replica_offsets: Vec<u32>,
    replica_parts: Vec<PartitionId>,
}

impl PartitionSet {
    /// Assembles a partition set from per-partition edge shares.
    ///
    /// This is the common back-end of both partitioners: it builds each
    /// partition's local CSRs, elects masters (the replica in the partition
    /// with the most incident local edges; ties go to the lowest partition
    /// id), and records replica locations.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a vertex `>= num_vertices`.
    pub fn assemble(chunks: Vec<Vec<Edge>>, num_vertices: VertexId) -> Self {
        let mut global_out = vec![0u32; num_vertices as usize];
        let mut global_in = vec![0u32; num_vertices as usize];
        let mut num_edges = 0u64;
        for chunk in &chunks {
            for e in chunk {
                assert!(
                    e.src < num_vertices && e.dst < num_vertices,
                    "edge ({}, {}) outside vertex universe of {}",
                    e.src,
                    e.dst,
                    num_vertices
                );
                global_out[e.src as usize] += 1;
                global_in[e.dst as usize] += 1;
                num_edges += 1;
            }
        }

        let mut partitions: Vec<Partition> = chunks
            .iter()
            .enumerate()
            .map(|(i, chunk)| {
                Partition::from_edges(i as PartitionId, chunk, &global_out, &global_in)
            })
            .collect();

        // Elect masters: replica with the most incident local edges.
        let n = num_vertices as usize;
        let mut best_count = vec![0u32; n];
        let mut master_of = vec![NO_PARTITION; n];
        let mut replica_count = vec![0u32; n];
        for p in &partitions {
            for (li, &vid) in p.vertices.iter().enumerate() {
                let li = li as LocalId;
                let incident = p.local_out_degree(li)
                    + (p.in_offsets[li as usize + 1] - p.in_offsets[li as usize]);
                replica_count[vid as usize] += 1;
                let better = incident > best_count[vid as usize]
                    || (incident == best_count[vid as usize] && p.id < master_of[vid as usize]);
                if master_of[vid as usize] == NO_PARTITION || better {
                    best_count[vid as usize] = incident;
                    master_of[vid as usize] = p.id;
                }
            }
        }

        // Patch replica metadata and build the replica CSR.
        let mut replica_offsets = vec![0u32; n + 1];
        for v in 0..n {
            replica_offsets[v + 1] = replica_offsets[v] + replica_count[v];
        }
        let mut cursor = replica_offsets.clone();
        let mut replica_parts = vec![0 as PartitionId; replica_offsets[n] as usize];
        for p in partitions.iter_mut() {
            let pid = p.id;
            for (li, meta) in p.meta.iter_mut().enumerate() {
                let vid = p.vertices[li] as usize;
                meta.master_partition = master_of[vid];
                meta.is_master = master_of[vid] == pid;
                replica_parts[cursor[vid] as usize] = pid;
                cursor[vid] += 1;
            }
        }

        PartitionSet {
            partitions: partitions.into_iter().map(Arc::new).collect(),
            num_vertices,
            num_edges,
            master_of,
            replica_offsets,
            replica_parts,
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Size of the vertex universe.
    pub fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    /// Total edge count across all partitions.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Shared handle to partition `pid`.
    pub fn partition(&self, pid: PartitionId) -> &Arc<Partition> {
        &self.partitions[pid as usize]
    }

    /// All partitions in id order.
    pub fn partitions(&self) -> &[Arc<Partition>] {
        &self.partitions
    }

    /// The master partition of `vid` (`NO_PARTITION` if isolated).
    pub fn master_of(&self, vid: VertexId) -> PartitionId {
        self.master_of[vid as usize]
    }

    /// Partitions holding a replica of `vid`.
    pub fn replicas_of(&self, vid: VertexId) -> &[PartitionId] {
        let lo = self.replica_offsets[vid as usize] as usize;
        let hi = self.replica_offsets[vid as usize + 1] as usize;
        &self.replica_parts[lo..hi]
    }

    /// Serializes the global replica tables (everything except the
    /// partitions themselves, which are framed individually).
    pub(crate) fn encode_meta(&self, out: &mut Vec<u8>) {
        wal::put_u32(out, self.num_vertices);
        wal::put_u64(out, self.num_edges);
        wal::put_u32(out, self.partitions.len() as u32);
        for &m in &self.master_of {
            wal::put_u32(out, m);
        }
        for &o in &self.replica_offsets {
            wal::put_u32(out, o);
        }
        wal::put_u32(out, self.replica_parts.len() as u32);
        for &p in &self.replica_parts {
            wal::put_u32(out, p);
        }
    }

    /// Reassembles a partition set from decoded tables plus its decoded
    /// partitions (which must be in id order, one per partition slot).
    pub(crate) fn decode_meta(
        r: &mut wal::WireReader<'_>,
        partitions: Vec<Arc<Partition>>,
    ) -> Result<PartitionSet, wal::StoreError> {
        let num_vertices = r.u32()?;
        let num_edges = r.u64()?;
        let np = r.u32()? as usize;
        if partitions.len() != np {
            return Err(r.corrupt("base segment partition count disagrees with meta"));
        }
        for (i, p) in partitions.iter().enumerate() {
            if p.id() as usize != i {
                return Err(r.corrupt("base partitions out of id order"));
            }
        }
        let n = num_vertices as usize;
        let mut master_of = Vec::with_capacity(n);
        for _ in 0..n {
            master_of.push(r.u32()?);
        }
        let mut replica_offsets = Vec::with_capacity(n + 1);
        for _ in 0..n + 1 {
            replica_offsets.push(r.u32()?);
        }
        let nr = r.len(4)?;
        if replica_offsets.last().copied().unwrap_or(0) as usize != nr {
            return Err(r.corrupt("replica offsets disagree with replica count"));
        }
        let mut replica_parts = Vec::with_capacity(nr);
        for _ in 0..nr {
            replica_parts.push(r.u32()?);
        }
        Ok(PartitionSet {
            partitions,
            num_vertices,
            num_edges,
            master_of,
            replica_offsets,
            replica_parts,
        })
    }

    /// Average number of replicas per non-isolated vertex
    /// (the vertex-cut "replication factor").
    pub fn replication_factor(&self) -> f64 {
        let replicas = self.replica_parts.len() as f64;
        let covered = self
            .master_of
            .iter()
            .filter(|&&p| p != NO_PARTITION)
            .count() as f64;
        if covered == 0.0 {
            0.0
        } else {
            replicas / covered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn two_chunk_set() -> PartitionSet {
        // Partition 0: 0->1, 1->2 ; Partition 1: 2->3, 3->0.
        PartitionSet::assemble(
            vec![
                vec![Edge::unit(0, 1), Edge::unit(1, 2)],
                vec![Edge::unit(2, 3), Edge::unit(3, 0)],
            ],
            4,
        )
    }

    #[test]
    fn every_edge_in_exactly_one_partition() {
        let ps = two_chunk_set();
        assert_eq!(ps.num_edges(), 4);
        let total: usize = ps.partitions().iter().map(|p| p.num_edges()).sum();
        assert_eq!(total as u64, ps.num_edges());
    }

    #[test]
    fn replicas_cover_both_partitions_for_cut_vertices() {
        let ps = two_chunk_set();
        // Vertices 0 and 2 appear in both partitions.
        assert_eq!(ps.replicas_of(0), &[0, 1]);
        assert_eq!(ps.replicas_of(2), &[0, 1]);
        assert_eq!(ps.replicas_of(1), &[0]);
        assert_eq!(ps.replicas_of(3), &[1]);
    }

    #[test]
    fn exactly_one_master_per_vertex() {
        let ps = two_chunk_set();
        for v in 0..4 {
            let masters: usize = ps
                .partitions()
                .iter()
                .filter_map(|p| p.local_of(v).map(|l| p.meta()[l as usize]))
                .filter(|m| m.is_master)
                .count();
            assert_eq!(masters, 1, "vertex {v}");
            let mp = ps.master_of(v);
            let p = ps.partition(mp);
            let l = p.local_of(v).unwrap();
            assert!(p.meta()[l as usize].is_master);
        }
    }

    #[test]
    fn master_location_consistent_across_replicas() {
        let ps = two_chunk_set();
        for v in 0..4u32 {
            for &pid in ps.replicas_of(v) {
                let p = ps.partition(pid);
                let l = p.local_of(v).unwrap();
                assert_eq!(p.meta()[l as usize].master_partition, ps.master_of(v));
            }
        }
    }

    #[test]
    fn local_csr_matches_edges() {
        let ps = two_chunk_set();
        let p0 = ps.partition(0);
        let l0 = p0.local_of(0).unwrap();
        let outs: Vec<VertexId> = p0.out_edges(l0).map(|(t, _)| p0.global_of(t)).collect();
        assert_eq!(outs, vec![1]);
        // In-CSR: vertex 2's in-edge inside partition 0 comes from 1.
        let l2 = p0.local_of(2).unwrap();
        let ins: Vec<VertexId> = p0.in_edges(l2).map(|(s, _)| p0.global_of(s)).collect();
        assert_eq!(ins, vec![1]);
    }

    #[test]
    fn global_degrees_span_partitions() {
        let ps = two_chunk_set();
        // Vertex 2 has one out-edge (in partition 1) and one in-edge (p0).
        for &pid in ps.replicas_of(2) {
            let p = ps.partition(pid);
            let l = p.local_of(2).unwrap();
            assert_eq!(p.meta()[l as usize].global_out_degree, 1);
            assert_eq!(p.meta()[l as usize].global_in_degree, 1);
        }
    }

    #[test]
    fn isolated_vertices_have_no_replicas() {
        let ps = PartitionSet::assemble(vec![vec![Edge::unit(0, 1)]], 5);
        assert_eq!(ps.master_of(4), NO_PARTITION);
        assert!(ps.replicas_of(4).is_empty());
    }

    #[test]
    fn replication_factor_counts_average_replicas() {
        let ps = two_chunk_set();
        // 4 vertices, 6 replicas total -> 1.5.
        assert!((ps.replication_factor() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn structure_bytes_scale_with_size() {
        let ps = two_chunk_set();
        let small = ps.partition(0).structure_bytes();
        let big =
            PartitionSet::assemble(vec![(0..100).map(|i| Edge::unit(i, i + 1)).collect()], 200);
        assert!(big.partition(0).structure_bytes() > small);
    }

    #[test]
    #[should_panic(expected = "outside vertex universe")]
    fn out_of_universe_edge_panics() {
        PartitionSet::assemble(vec![vec![Edge::unit(0, 9)]], 4);
    }
}
